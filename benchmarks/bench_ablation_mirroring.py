"""Ablation A6 — mirroring left-oriented trees for RD (Section 5).

"RD does not work too well for trees that contain left-deep segments.
However, it is possible without cost penalty to mirror (parts of) a
query to make it more right-oriented, so that in practice RD is
expected to work quite well."

Checked by running RD on the left-oriented bushy tree and on its
mirror image: the mirror must be substantially faster for RD, equally
costly in total work, and close to RD's performance on the natively
right-oriented tree.
"""

import pytest

from repro import api
from repro.core import Catalog, CostModel, make_shape, mirror, paper_relation_names

NAMES = paper_relation_names(10)
CATALOG = Catalog.regular(NAMES, 40000)
PROCESSORS = 80


def test_ablation_mirroring(benchmark, results_dir):
    left_tree = make_shape("left_bushy", NAMES)
    mirrored = mirror(left_tree)
    right_tree = make_shape("right_bushy", NAMES)

    # Mirroring is free: identical total cost.
    model = CostModel()
    assert model.total_cost(left_tree, CATALOG) == model.total_cost(
        mirrored, CATALOG
    )

    rd_left = api.run(left_tree, "RD", PROCESSORS, catalog=CATALOG)
    rd_mirrored = api.run(mirrored, "RD", PROCESSORS, catalog=CATALOG)
    rd_right = api.run(right_tree, "RD", PROCESSORS, catalog=CATALOG)

    lines = [
        "tree                      RD response (s)",
        f"left-oriented bushy       {rd_left.response_time:8.2f}",
        f"mirrored (right-oriented) {rd_mirrored.response_time:8.2f}",
        f"native right-oriented     {rd_right.response_time:8.2f}",
    ]
    (results_dir / "ablation_mirroring.txt").write_text("\n".join(lines) + "\n")

    assert rd_mirrored.response_time < rd_left.response_time * 0.95
    assert rd_mirrored.response_time == pytest.approx(
        rd_right.response_time, rel=0.15
    )

    benchmark(api.run, mirrored, "RD", PROCESSORS, catalog=CATALOG)
