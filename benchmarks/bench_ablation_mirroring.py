"""Ablation A6 — mirroring left-oriented trees for RD (Section 5).

"RD does not work too well for trees that contain left-deep segments.
However, it is possible without cost penalty to mirror (parts of) a
query to make it more right-oriented, so that in practice RD is
expected to work quite well."

Checked by running RD on the left-oriented bushy tree and on its
mirror image: the mirror must be substantially faster for RD, equally
costly in total work, and close to RD's performance on the natively
right-oriented tree.
"""

import pytest

from repro.core import Catalog, CostModel, make_shape, mirror, paper_relation_names
from repro.engine import simulate_strategy

NAMES = paper_relation_names(10)
CATALOG = Catalog.regular(NAMES, 40000)
PROCESSORS = 80


def test_ablation_mirroring(benchmark, results_dir):
    left_tree = make_shape("left_bushy", NAMES)
    mirrored = mirror(left_tree)
    right_tree = make_shape("right_bushy", NAMES)

    # Mirroring is free: identical total cost.
    model = CostModel()
    assert model.total_cost(left_tree, CATALOG) == model.total_cost(
        mirrored, CATALOG
    )

    rd_left = simulate_strategy(left_tree, CATALOG, "RD", PROCESSORS)
    rd_mirrored = simulate_strategy(mirrored, CATALOG, "RD", PROCESSORS)
    rd_right = simulate_strategy(right_tree, CATALOG, "RD", PROCESSORS)

    lines = [
        "tree                      RD response (s)",
        f"left-oriented bushy       {rd_left.response_time:8.2f}",
        f"mirrored (right-oriented) {rd_mirrored.response_time:8.2f}",
        f"native right-oriented     {rd_right.response_time:8.2f}",
    ]
    (results_dir / "ablation_mirroring.txt").write_text("\n".join(lines) + "\n")

    assert rd_mirrored.response_time < rd_left.response_time * 0.95
    assert rd_mirrored.response_time == pytest.approx(
        rd_right.response_time, rel=0.15
    )

    benchmark(
        simulate_strategy, mirrored, CATALOG, "RD", PROCESSORS
    )
