"""Extension E1 — scaling beyond the paper's 80 processors.

Section 5's closing prediction: "FP is mainly prohibited by pipeline
delay.  For bushy trees this overhead decreases with an increasing
number of processors.  SP, and to a lesser extent RD and SE, are
prohibited by startup and coordination overhead, which increases with
an increasing number of processors.  Therefore, FP is expected to
eventually yield the best performance on bushy trees if more
processors are added... we expect FP to do the best job in scaling up
to even larger numbers of processors than used in this paper."

PRISMA had 100 nodes; the simulation extrapolates the 40K wide-bushy
experiment to 320 processors and checks the prediction: FP overtakes
every other strategy and keeps the flattest curve.
"""


from repro import api
from repro.bench.runner import sweep as cached_sweep
from repro.bench.workloads import Experiment
from repro.core import Catalog, make_shape, paper_relation_names

EXPERIMENT = Experiment("wide_bushy", 40_000, (80, 120, 160, 240, 320))


def test_extension_scaleup(benchmark, results_dir):
    sweep = cached_sweep(EXPERIMENT)
    (results_dir / "extension_scaleup.txt").write_text(sweep.table() + "\n")

    at_320 = {name: series.at(320) for name, series in sweep.series.items()}
    at_80 = {name: series.at(80) for name, series in sweep.series.items()}

    # FP is the best strategy at the largest machine.
    assert at_320["FP"] == min(at_320.values())

    # FP keeps improving past 80 processors; SP has turned around.
    assert at_320["FP"] < at_80["FP"]
    assert at_320["SP"] > min(sweep.series["SP"].response_times)

    # FP's winning margin grows with machine size (the "best job in
    # scaling up" claim): compare against the best non-FP strategy.
    def margin(processors: int) -> float:
        others = min(
            series.at(processors)
            for name, series in sweep.series.items()
            if name != "FP"
        )
        return others / sweep.series["FP"].at(processors)

    assert margin(320) > margin(80)

    names = paper_relation_names(10)
    benchmark(
        api.run,
        make_shape("wide_bushy", names),
        "FP",
        120,
        catalog=Catalog.regular(names, 40_000),
    )
