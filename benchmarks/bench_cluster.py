"""The BENCH cluster gate: sharded serving under a 2x load surge.

One surge trace — Poisson at a base rate, doubling for a middle
window, then back — is replayed through the same 2-shard cluster under
four capacity plans:

* ``static@base`` — every shard pinned at the base machine size (what
  you provisioned for the average load);
* ``static@peak`` — every shard pinned at the elastic ceiling (what
  you would have to provision statically to absorb the surge);
* ``reactive`` / ``predictive`` — elastic shards starting at the base
  size with the ceiling as ``scale_max``.

The claims this benchmark institutionalizes:

* the surge degrades ``static@base`` p99 latency to at least
  ``P99_DEGRADATION`` (2x) of the provisioned-peak p99;
* reactive or predictive autoscaling retains at least ``RETENTION``
  (80%) of the provisioned-peak goodput through the surge;
* the house invariants hold: a 1-shard static cluster is row-identical
  to ``run_workload``, and the 4-shard trace replay is JSONL-identical
  at ``workers=1`` vs ``workers=4``.

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster.py            # full
    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_cluster.py --check    # gate

Writes ``BENCH_cluster.json`` (override with ``--output``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile

from repro import api
from repro.cluster import Trace
from repro.sim import MachineConfig
from repro.workload import QuerySpec
from repro.workload.arrivals import poisson_arrivals
from repro.workload.mix import QueryMix, sample_specs

#: Coarse batches keep each cluster cell to a fraction of a second.
FAST = MachineConfig(
    tuple_unit=0.001, process_startup=0.008, handshake=0.012,
    network_latency=0.05, batches=8,
)

#: The surge must cost static@base at least this much p99 latency,
#: relative to the provisioned-peak p99.
P99_DEGRADATION = 2.0
#: Elastic goodput must retain at least this fraction of the
#: provisioned-peak goodput.
RETENTION = 0.80

SHARDS = 2
BASE_SIZE = 10          # per-shard processors (the average-load plan)
PEAK_SIZE = 30          # per-shard elastic ceiling (the surge plan)
SHARE = 10              # exclusive per-query share (FP needs >= 9)
STRATEGY = "FP"
SEED = 7

#: Full-run surge: base-rate windows around a 2x middle window.
FULL = dict(cardinality=1_000, rate=0.3, window=90.0, cooldown=5.0)
#: Smoke surge: same shape, shorter windows.
SMOKE = dict(cardinality=1_000, rate=0.3, window=45.0, cooldown=5.0)


def surge_trace(params) -> Trace:
    """Poisson arrivals at ``rate`` for one window, ``2*rate`` for the
    next, then ``rate`` again — each window its own seeded stream, so
    the trace is deterministic and the surge boundary exact."""
    window = params["window"]
    pairs = []
    for index, (rate, start) in enumerate([
        (params["rate"], 0.0),
        (2 * params["rate"], window),
        (params["rate"], 2 * window),
    ]):
        times = poisson_arrivals(rate, window, SEED + 31 * index, start=start)
        mix = QueryMix.single(
            QuerySpec("wide_bushy", params["cardinality"], STRATEGY)
        )
        specs = sample_specs(mix, len(times), SEED + 31 * index)
        pairs.extend(zip(times, specs))
    return Trace.from_arrivals(pairs, seed=SEED)


def run_plan(trace, plan, params):
    """Replay the surge trace under one capacity plan."""
    shared = dict(
        trace=trace,
        shards=SHARDS,
        placement="round_robin",
        seed=SEED,
        policy="exclusive",
        share=SHARE,
        config=FAST,
    )
    if plan == "static@base":
        return api.run_cluster(machine_size=BASE_SIZE, **shared)
    if plan == "static@peak":
        return api.run_cluster(machine_size=PEAK_SIZE, **shared)
    return api.run_cluster(
        machine_size=BASE_SIZE,
        autoscale=plan,
        scale_max=PEAK_SIZE,
        scale_cooldown=params["cooldown"],
        **shared,
    )


def plan_row(plan, result):
    stats = result.latency_stats()
    return {
        "plan": plan,
        "completed": result.completed_count(),
        "submitted": result.submitted_count(),
        "makespan": result.makespan,
        "goodput": result.goodput(),
        "latency_p50": stats["p50"],
        "latency_p95": stats["p95"],
        "latency_p99": stats["p99"],
        "scale_ups": result.scale_ups(),
        "scale_downs": result.scale_downs(),
    }


def identity_gate(params):
    """The 1-shard static cluster must be row-identical to
    run_workload (same knobs, same bytes)."""
    knobs = dict(
        arrivals="poisson", rate=0.4, duration=40.0, seed=SEED,
        machine_size=BASE_SIZE, policy="exclusive", share=SHARE,
        strategy=STRATEGY, cardinality=params["cardinality"], config=FAST,
    )
    single = api.run_workload("wide_bushy", **knobs)
    cluster = api.run_cluster(
        "wide_bushy", shards=1, placement="hash", autoscale="static",
        **knobs,
    )
    return single.rows() == cluster.rows()


def replay_gate(trace):
    """The 4-shard replay must emit identical JSONL at workers=1 and
    workers=4 (compared as written bytes, not just parsed rows)."""
    knobs = dict(
        trace=trace, shards=4, placement="hash", seed=SEED,
        machine_size=BASE_SIZE, policy="exclusive", share=SHARE,
        config=FAST,
    )
    serial = api.run_cluster(workers=1, **knobs)
    pooled = api.run_cluster(workers=4, **knobs)
    with tempfile.TemporaryDirectory() as tmp:
        a = pathlib.Path(tmp) / "serial.jsonl"
        b = pathlib.Path(tmp) / "pooled.jsonl"
        serial.write_jsonl(a)
        pooled.write_jsonl(b)
        return a.read_bytes() == b.read_bytes()


def check(rows, identity_ok, replay_ok):
    """The cluster gate; returns a list of failure messages."""
    failures = []
    if not identity_ok:
        failures.append("1-shard static cluster diverged from run_workload")
    if not replay_ok:
        failures.append("trace replay JSONL differs at workers=1 vs workers=4")
    by_plan = {row["plan"]: row for row in rows}
    peak = by_plan["static@peak"]
    base = by_plan["static@base"]
    if peak["latency_p99"] and base["latency_p99"]:
        degradation = base["latency_p99"] / peak["latency_p99"]
    else:
        degradation = 0.0
    if degradation < P99_DEGRADATION:
        failures.append(
            f"surge did not hurt static@base enough: p99 degradation "
            f"{degradation:.1f}x < {P99_DEGRADATION:g}x (the scenario is "
            f"not a real overload)"
        )
    retention = {
        plan: (
            by_plan[plan]["goodput"] / peak["goodput"]
            if peak["goodput"] else 0.0
        )
        for plan in ("reactive", "predictive")
    }
    if max(retention.values()) < RETENTION:
        failures.append(
            f"no elastic plan retained {RETENTION:.0%} of provisioned-peak "
            f"goodput: reactive {retention['reactive']:.0%}, "
            f"predictive {retention['predictive']:.0%}"
        )
    return failures, {"p99_degradation": degradation, "retention": retention}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (shorter surge windows)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when the cluster gate fails")
    parser.add_argument("--output", default=None, help="result JSON path")
    args = parser.parse_args(argv)

    params = SMOKE if args.smoke else FULL
    trace = surge_trace(params)
    print(f"surge trace: {len(trace)} queries over {trace.horizon():.0f}s "
          f"({params['rate']:g} -> {2 * params['rate']:g} -> "
          f"{params['rate']:g} q/s)")

    identity_ok = identity_gate(params)
    print(f"1-shard identity vs run_workload: "
          f"{'ok' if identity_ok else 'DIVERGED'}")
    replay_ok = replay_gate(trace)
    print(f"4-shard replay determinism (workers 1 vs 4): "
          f"{'ok' if replay_ok else 'DIVERGED'}")

    rows = []
    for plan in ("static@base", "static@peak", "reactive", "predictive"):
        result = run_plan(trace, plan, params)
        row = plan_row(plan, result)
        rows.append(row)
        scale = (
            f" ups={row['scale_ups']} downs={row['scale_downs']}"
            if row["scale_ups"] or row["scale_downs"] else ""
        )
        print(f"  {plan:12s} done={row['completed']:3d}/{row['submitted']:3d} "
              f"makespan={row['makespan']:7.1f}s goodput={row['goodput']:.3f} "
              f"p99={row['latency_p99']:.1f}s{scale}")

    failures, ratios = check(rows, identity_ok, replay_ok)
    verdict = "PASS" if not failures else "FAIL"
    print(f"surge gate: static@base p99 {ratios['p99_degradation']:.1f}x "
          f"peak; elastic retention reactive "
          f"{ratios['retention']['reactive']:.0%} / predictive "
          f"{ratios['retention']['predictive']:.0%} -> {verdict}")
    for failure in failures:
        print(f"  {failure}", file=sys.stderr)

    out = pathlib.Path(
        args.output
        or pathlib.Path(__file__).resolve().parent
        / "results" / "BENCH_cluster.json"
    )
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps({
        "mode": "smoke" if args.smoke else "full",
        "params": params,
        "shards": SHARDS,
        "base_size": BASE_SIZE,
        "peak_size": PEAK_SIZE,
        "trace_queries": len(trace),
        "identity_ok": identity_ok,
        "replay_ok": replay_ok,
        "ratios": ratios,
        "thresholds": {
            "p99_degradation": P99_DEGRADATION, "retention": RETENTION,
        },
        "plans": rows,
        "pass": not failures,
    }, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out}")

    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
