"""Fault injection — overhead and resilience curves.

Beyond the paper: two questions about the fault subsystem itself.
First, the tax — an armed-but-empty injector must cost essentially
nothing, so fault-free sweeps can keep the hooks compiled in (asserted
under 5% on min-of-repeats wall clock).  Second, the payoff — goodput
versus crash rate for each strategy under the restart and reassign
policies, written to ``results/faults_resilience.txt``.  One
representative faulted workload run is registered with pytest-benchmark.

    PYTHONPATH=src python -m pytest benchmarks/bench_faults.py
"""

from __future__ import annotations

import time

from repro import api
from repro.faults import FaultSchedule, fault_rate_sweep
from repro.sim import MachineConfig

from conftest import write_result

#: Coarse batches keep every workload cell in the tens of milliseconds.
FAST = MachineConfig(
    tuple_unit=0.001, process_startup=0.008, handshake=0.012,
    network_latency=0.05, batches=8,
)
MACHINE_SIZE = 40
STRATEGIES = ("SP", "SE", "RD", "FP")
CRASH_RATES = (0.0, 0.005, 0.02)
DURATION = 120.0
RATE = 0.1
CARDINALITY = 1_000


def min_wall_seconds(fn, repeats: int = 5) -> float:
    """Best-of-N wall clock: the minimum is the least noisy estimator
    for a short deterministic computation."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_empty_injector_overhead_under_five_percent():
    """Arming an empty schedule must not slow the simulator: the None
    checks on the hot paths are the entire cost."""
    def fault_free():
        return api.run(
            "wide_bushy", "FP", 40, "sim",
            cardinality=CARDINALITY, config=FAST,
        )

    def armed_empty():
        return api.run(
            "wide_bushy", "FP", 40, "sim",
            cardinality=CARDINALITY, config=FAST,
            faults=FaultSchedule.empty(),
        )

    assert armed_empty() == fault_free()  # identity before timing
    base = min_wall_seconds(fault_free)
    armed = min_wall_seconds(armed_empty)
    overhead = (armed - base) / base
    assert overhead < 0.05, f"empty injector costs {overhead:.1%}"


def resilience_table(points) -> str:
    header = (
        f"{'strategy':>8}  {'recovery':>8}  {'crash/s':>8}  {'done':>5}  "
        f"{'fail':>5}  {'retry':>5}  {'goodput':>8}  {'wasted':>7}  "
        f"{'mttr':>7}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        mttr = "n/a" if p.mttr is None else f"{p.mttr:6.1f}s"
        lines.append(
            f"{p.strategy:>8}  {p.recovery:>8}  {p.crash_rate:8.3f}  "
            f"{p.completed:5d}  {p.failed:5d}  {p.retries:5d}  "
            f"{p.goodput:8.4f}  {p.wasted_fraction:7.1%}  {mttr:>7}"
        )
    return "\n".join(lines)


def test_goodput_versus_fault_rate(benchmark, results_dir):
    points = []
    for recovery in ("restart", "reassign"):
        points.extend(fault_rate_sweep(
            strategies=STRATEGIES,
            crash_rates=CRASH_RATES,
            recovery=recovery,
            duration=DURATION,
            rate=RATE,
            machine_size=MACHINE_SIZE,
            seed=7,
            repair_time=20.0,
            cardinality=CARDINALITY,
            config=FAST,
        ))
    write_result(results_dir, "faults_resilience.txt",
                 resilience_table(points))

    # Crashes can only hurt: per strategy and policy, goodput at the
    # highest crash rate must not beat the fault-free cell.
    by_cell = {(p.strategy, p.recovery, p.crash_rate): p for p in points}
    for strategy in STRATEGIES:
        for recovery in ("restart", "reassign"):
            clean = by_cell[(strategy, recovery, 0.0)]
            worst = by_cell[(strategy, recovery, CRASH_RATES[-1])]
            assert worst.goodput <= clean.goodput + 1e-9
            assert clean.faults_injected == 0

    # Time one representative faulted run (RD under restart).
    faults = FaultSchedule.generate(
        machine_size=MACHINE_SIZE, horizon=30.0, seed=7,
        crash_rate=0.02, repair_time=10.0,
    )

    def run_faulted():
        return api.run_workload(
            "wide_bushy", arrivals="poisson", rate=RATE, duration=30.0,
            seed=7, machine_size=MACHINE_SIZE, strategy="RD",
            cardinality=CARDINALITY, config=FAST,
            faults=faults, recovery="restart",
        )

    result = benchmark(run_faulted)
    assert len(result.records) > 0
