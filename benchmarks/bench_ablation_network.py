"""Ablation A8 — interconnect bandwidth (extension beyond the paper).

The paper treats the network as latency, never as a bottleneck (each
PRISMA node had its own communication processor).  This ablation makes
that assumption explicit and quantifies it: batch transfers are
serialized through a shared link of finite bandwidth, swept from
"effectively infinite" down to clearly saturated.

The grid (4 strategies × 6 bandwidths) is one :class:`SweepSpec` over
a ``configs`` axis on the parallel runner — the disk cache keys on
every machine constant, so the six configs never collide.

Expected outcome: response times are flat until the aggregate demand
(about 8 redistributed operands plus 9 results for the ten-way query)
approaches the link capacity, then grow; conservation of tuples holds
throughout (no batch may be lost or reordered past its EOS).
"""

import pytest

from repro import api
from repro.runner import SweepSpec, run_sweep
from repro.sim import MachineConfig

SHAPE = "wide_bushy"
CARDINALITY = 5000
PROCESSORS = 40
STRATEGIES = ("SP", "SE", "RD", "FP")

#: Link capacities in tuples/second, from paper-regime to saturated.
#: The ten-way 5K query moves ~85 000 tuples over the interconnect, so
#: saturation sets in once capacity drops toward a few thousand t/s.
BANDWIDTHS = (float("inf"), 1e6, 1e5, 1e4, 3e3, 1e3)


def test_ablation_network(benchmark, results_dir):
    spec = SweepSpec(
        shapes=(SHAPE,),
        strategies=STRATEGIES,
        processors=(PROCESSORS,),
        cardinalities=(CARDINALITY,),
        configs=tuple(
            MachineConfig.paper().scaled(network_bandwidth=bw)
            for bw in BANDWIDTHS
        ),
    )
    run = run_sweep(spec)
    metrics = {
        (row["strategy"], row["config"]["network_bandwidth"]): row["metrics"]
        for row in run.rows()
    }
    table = {
        strategy: [metrics[(strategy, bw)] for bw in BANDWIDTHS]
        for strategy in STRATEGIES
    }

    lines = ["bandwidth(t/s)  " + "  ".join(f"{s:>8}" for s in table)]
    for i, bandwidth in enumerate(BANDWIDTHS):
        label = "inf" if bandwidth == float("inf") else f"{bandwidth:.0e}"
        cells = "  ".join(
            f"{table[s][i]['response_time']:8.2f}" for s in table
        )
        lines.append(f"{label:>14}  {cells}")
    (results_dir / "ablation_network.txt").write_text("\n".join(lines) + "\n")

    for strategy, results in table.items():
        # Tuples conserved at every bandwidth (EOS ordering guard).
        for result in results:
            assert result["result_tuples"] == pytest.approx(
                CARDINALITY, rel=1e-6
            ), f"{strategy} lost tuples under contention"
        # The paper regime: a fast link behaves like an infinite one.
        assert results[1]["response_time"] == pytest.approx(
            results[0]["response_time"], rel=0.05
        )
        # Saturation: the slowest link clearly dominates response time.
        assert results[-1]["response_time"] > results[0]["response_time"] * 1.5

    benchmark(
        api.run, SHAPE, "FP", PROCESSORS,
        config=MachineConfig.paper().scaled(network_bandwidth=1e5),
    )
