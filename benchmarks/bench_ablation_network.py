"""Ablation A8 — interconnect bandwidth (extension beyond the paper).

The paper treats the network as latency, never as a bottleneck (each
PRISMA node had its own communication processor).  This ablation makes
that assumption explicit and quantifies it: batch transfers are
serialized through a shared link of finite bandwidth, swept from
"effectively infinite" down to clearly saturated.

Expected outcome: response times are flat until the aggregate demand
(about 8 redistributed operands plus 9 results for the ten-way query)
approaches the link capacity, then grow; conservation of tuples holds
throughout (no batch may be lost or reordered past its EOS).
"""

import pytest

from repro.core import Catalog, make_shape, paper_relation_names
from repro.core.strategies import get_strategy
from repro.sim import MachineConfig
from repro.sim.run import simulate

NAMES = paper_relation_names(10)
CARDINALITY = 5000
CATALOG = Catalog.regular(NAMES, CARDINALITY)
TREE = make_shape("wide_bushy", NAMES)
PROCESSORS = 40

#: Link capacities in tuples/second, from paper-regime to saturated.
#: The ten-way 5K query moves ~85 000 tuples over the interconnect, so
#: saturation sets in once capacity drops toward a few thousand t/s.
BANDWIDTHS = (float("inf"), 1e6, 1e5, 1e4, 3e3, 1e3)


def response(strategy: str, bandwidth: float):
    config = MachineConfig.paper().scaled(network_bandwidth=bandwidth)
    schedule = get_strategy(strategy).schedule(TREE, CATALOG, PROCESSORS)
    return simulate(schedule, CATALOG, config)


def test_ablation_network(benchmark, results_dir):
    table = {}
    for strategy in ("SP", "SE", "RD", "FP"):
        table[strategy] = [response(strategy, bw) for bw in BANDWIDTHS]

    lines = ["bandwidth(t/s)  " + "  ".join(f"{s:>8}" for s in table)]
    for i, bandwidth in enumerate(BANDWIDTHS):
        label = "inf" if bandwidth == float("inf") else f"{bandwidth:.0e}"
        cells = "  ".join(f"{table[s][i].response_time:8.2f}" for s in table)
        lines.append(f"{label:>14}  {cells}")
    (results_dir / "ablation_network.txt").write_text("\n".join(lines) + "\n")

    for strategy, results in table.items():
        # Tuples conserved at every bandwidth (EOS ordering guard).
        for result in results:
            assert result.result_tuples == pytest.approx(
                CARDINALITY, rel=1e-6
            ), f"{strategy} lost tuples under contention"
        # The paper regime: a fast link behaves like an infinite one.
        assert results[1].response_time == pytest.approx(
            results[0].response_time, rel=0.05
        )
        # Saturation: the slowest link clearly dominates response time.
        assert results[-1].response_time > results[0].response_time * 1.5

    benchmark(response, "FP", 1e5)
