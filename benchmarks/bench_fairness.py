"""The BENCH fairness gate: tenant isolation under an abusive tenant.

Two open-loop tenants share one simulated 40-processor machine: a
well-behaved tenant offering a steady rate well inside its fair share,
and an abusive tenant ramping to ``--abuse-factor`` times its fair
rate.  Every query carries the same deadline, so *useful* completions
(in-deadline) are what goodput counts.

The isolation claim this benchmark institutionalizes:

* under ``wfq`` the well-behaved tenant keeps at least
  ``WFQ_RETENTION`` (85%) of the useful completions it gets when
  running **solo** on the same machine, even at 3x abuse;
* under ``fifo`` the same abuse collapses the well-behaved tenant
  below ``FIFO_COLLAPSE`` (50%) of its solo baseline — the queue is
  shared, so the abuser's backlog pushes everyone past the deadline.

Usage::

    PYTHONPATH=src python benchmarks/bench_fairness.py            # full
    PYTHONPATH=src python benchmarks/bench_fairness.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_fairness.py --check    # gate

Writes ``BENCH_fairness.json`` (override with ``--output``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro import api
from repro.sim import MachineConfig
from repro.workload import TenantSpec, fairness_points

#: Coarse batches keep each workload cell to a fraction of a second.
FAST = MachineConfig(
    tuple_unit=0.001, process_startup=0.008, handshake=0.012,
    network_latency=0.05, batches=8,
)

#: wfq must retain at least this fraction of the solo baseline.
WFQ_RETENTION = 0.85
#: fifo must fall below this fraction (demonstrating the collapse).
FIFO_COLLAPSE = 0.50

#: Full-run shape: ~2.1 s service time (FP, 1000 tuples, FAST machine)
#: means capacity ~0.48 q/s, so a tenant's *fair rate* (half the
#: machine) is ~0.24 q/s.  The good tenant offers 0.15 q/s — inside
#: its fair share — while abuse at 3x its fair rate (0.72 q/s) drives
#: the machine deep into overload.
FULL = dict(
    cardinality=1_000, good_rate=0.15, fair_rate=0.24, deadline=30.0,
    duration=600.0,
)
#: Smoke shape: smaller queries (~1.0 s service, capacity ~0.97 q/s,
#: fair rate ~0.48 q/s), shorter horizon.
SMOKE = dict(
    cardinality=400, good_rate=0.30, fair_rate=0.48, deadline=15.0,
    duration=200.0,
)

MACHINE_SIZE = 40
STRATEGY = "FP"
ABUSE_FACTORS = (1.0, 2.0, 3.0)
SEED = 7


def run_cell(scheduler, tenants, *, cardinality, duration):
    """One workload run; returns the WorkloadResult."""
    return api.run_workload(
        "wide_bushy",
        arrivals="poisson",
        duration=duration,
        seed=SEED,
        machine_size=MACHINE_SIZE,
        policy="exclusive",
        strategy=STRATEGY,
        cardinality=cardinality,
        config=FAST,
        scheduler=scheduler,
        tenants=tenants,
    )


def solo_baseline(params):
    """Useful completions of the well-behaved tenant running alone."""
    tenants = (
        TenantSpec("good", deadline=params["deadline"],
                   rate=params["good_rate"]),
    )
    result = run_cell(
        "fifo", tenants,
        cardinality=params["cardinality"], duration=params["duration"],
    )
    return result.useful_count("good")


def abuse_cells(params, abuse_factors, schedulers=("fifo", "wfq")):
    """Per-(scheduler, factor) fairness points, keyed rows."""
    points = []
    for scheduler in schedulers:
        for factor in abuse_factors:
            tenants = (
                TenantSpec("good", deadline=params["deadline"],
                           rate=params["good_rate"]),
                TenantSpec("abuse", deadline=params["deadline"],
                           rate=params["fair_rate"] * factor),
            )
            result = run_cell(
                scheduler, tenants,
                cardinality=params["cardinality"],
                duration=params["duration"],
            )
            points.extend(fairness_points(result, scheduler, factor))
    return points


def check(points, solo_useful, abuse_factor):
    """The isolation gate; returns a list of failure messages."""
    failures = []
    good = {
        p.scheduler: p for p in points
        if p.tenant == "good" and p.abuse_factor == abuse_factor
    }
    wfq_ratio = good["wfq"].completed / solo_useful if solo_useful else 0.0
    fifo_ratio = good["fifo"].completed / solo_useful if solo_useful else 0.0
    if wfq_ratio < WFQ_RETENTION:
        failures.append(
            f"wfq retention {wfq_ratio:.0%} < {WFQ_RETENTION:.0%} "
            f"({good['wfq'].completed}/{solo_useful} useful at "
            f"{abuse_factor:g}x abuse)"
        )
    if fifo_ratio >= FIFO_COLLAPSE:
        failures.append(
            f"fifo did not collapse: {fifo_ratio:.0%} >= "
            f"{FIFO_COLLAPSE:.0%} ({good['fifo'].completed}/{solo_useful} "
            f"useful at {abuse_factor:g}x abuse)"
        )
    return failures, {"wfq": wfq_ratio, "fifo": fifo_ratio}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (smaller queries, shorter horizon)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when the isolation gate fails")
    parser.add_argument("--output", default=None, help="result JSON path")
    args = parser.parse_args(argv)

    params = SMOKE if args.smoke else FULL
    factors = (1.0, 3.0) if args.smoke else ABUSE_FACTORS

    solo = solo_baseline(params)
    print(f"solo baseline: {solo} useful completions "
          f"({params['good_rate']:g} q/s x {params['duration']:g}s)")

    points = abuse_cells(params, factors)
    for p in points:
        print(f"  {p.scheduler:5s} abuse={p.abuse_factor:g}x "
              f"{p.tenant:5s} offered={p.offered:3d} done={p.completed:3d} "
              f"goodput={p.goodput:.3f} share={p.share:.0%}")

    failures, ratios = check(points, solo, factors[-1])
    verdict = "PASS" if not failures else "FAIL"
    print(f"isolation at {factors[-1]:g}x abuse: "
          f"wfq {ratios['wfq']:.0%}, fifo {ratios['fifo']:.0%} "
          f"of solo -> {verdict}")
    for failure in failures:
        print(f"  {failure}", file=sys.stderr)

    out = pathlib.Path(
        args.output
        or pathlib.Path(__file__).resolve().parent
        / "results" / "BENCH_fairness.json"
    )
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps({
        "mode": "smoke" if args.smoke else "full",
        "params": params,
        "solo_useful": solo,
        "ratios": ratios,
        "thresholds": {
            "wfq_retention": WFQ_RETENTION, "fifo_collapse": FIFO_COLLAPSE,
        },
        "points": [p.row() for p in points],
        "pass": not failures,
    }, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out}")

    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
