"""Figure 10 — response times for the left-oriented bushy query tree.

Regenerates the paper's Figure 10: response time versus number of
processors for SP, SE, RD and FP, at both problem sizes (5K: 20-80
processors; 40K: 30-80).  The sweep data table is written to
``results/fig10_left_bushy.txt``; the Section 4.4 claims about this
figure are asserted; pytest-benchmark times the paper's best cell.
"""

from repro.bench import PAPER_FIGURE_14
from repro.core import Catalog, make_shape, paper_relation_names
from repro.engine import simulate_strategy

SHAPE = "left_bushy"


def test_figure10_left_bushy(benchmark, figure_bench, results_dir):
    small, large, report, failures = figure_bench(SHAPE)
    (results_dir / "fig10_left_bushy.txt").write_text(report + "\n")
    assert not failures, f"Section 4.4 claims failed: {failures}"

    # Time the paper's winning configuration for the 5K experiment.
    seconds, strategy, processors = PAPER_FIGURE_14[(SHAPE, "5K")]
    names = paper_relation_names(10)
    tree = make_shape(SHAPE, names)
    catalog = Catalog.regular(names, 5000)
    result = benchmark(
        simulate_strategy, tree, catalog, strategy, processors
    )
    assert result.response_time > 0
