"""Extension E2 — analytic model versus simulation ([WiG93] style).

The paper's explanations rest on an analytical model of pipelined
execution (Section 2.3.3, [WiA93, WiG93]).  This bench validates our
analytic counterpart the way [WiG93] validated theirs against
PRISMA/DB: predict every (shape × strategy × processors × size) cell
of the paper grid in closed form and compare with the discrete-event
simulation.  The fit must be tight on the barrier-structured
strategies and reasonable on the pipelined ones.
"""

import statistics


from repro import api
from repro.core import Catalog, SHAPE_NAMES, make_shape, paper_relation_names
from repro.model import predict, relative_error

NAMES = paper_relation_names(10)


def grid_errors():
    errors = {}
    for cardinality in (5_000, 40_000):
        catalog = Catalog.regular(NAMES, cardinality)
        for shape in SHAPE_NAMES:
            tree = make_shape(shape, NAMES)
            for processors in (30, 80):
                for strategy in ("SP", "SE", "RD", "FP"):
                    predicted = predict(tree, catalog, strategy, processors)
                    simulated = api.run(
                        tree, strategy, processors, catalog=catalog
                    )
                    errors[(cardinality, shape, strategy, processors)] = (
                        relative_error(
                            predicted.response_time, simulated.response_time
                        )
                    )
    return errors


def test_extension_model_validation(benchmark, results_dir):
    errors = grid_errors()
    values = list(errors.values())
    lines = ["cell (cardinality, shape, strategy, procs)  relative error"]
    for key, err in sorted(errors.items(), key=lambda kv: -kv[1])[:10]:
        lines.append(f"worst: {key}  {err:.3f}")
    lines.append(f"mean |err| = {statistics.mean(values):.3f}")
    lines.append(f"max  |err| = {max(values):.3f}")
    (results_dir / "extension_model.txt").write_text("\n".join(lines) + "\n")

    assert statistics.mean(values) < 0.10, "model drifted from the simulator"
    assert max(values) < 0.35

    # Barrier-structured strategies are modelled almost exactly.
    sp_errors = [err for key, err in errors.items() if key[2] == "SP"]
    assert max(sp_errors) < 0.10

    catalog = Catalog.regular(NAMES, 5_000)
    tree = make_shape("wide_bushy", NAMES)
    benchmark(predict, tree, catalog, "FP", 80)
