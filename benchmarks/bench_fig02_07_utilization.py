"""Figures 2-7 — the example tree and its idealized utilization diagrams.

Regenerates the Section 3 explanation figures: the 5-way example join
tree of Figure 2 (joins labelled with relative work 1/5/3/4) executed
on an idealized 10-processor machine under each strategy, rendered as
the paper's processor-utilization diagrams (Figure 3: SP, Figure 4: SE,
Figure 6: RD, Figure 7: FP).  The structural features each figure
illustrates are asserted.
"""

import pytest

from repro import api
from repro.core import example_tree
from repro.engine import busy_fractions, ideal_diagram

FIGURE_OF_STRATEGY = {"SP": 3, "SE": 4, "RD": 6, "FP": 7}


@pytest.fixture(scope="module")
def ideal_runs():
    return {
        name: api.run(example_tree(), name, 10, "ideal", cardinality=1000)
        for name in FIGURE_OF_STRATEGY
    }


def test_figures_3_4_6_7_utilization_diagrams(benchmark, ideal_runs, results_dir):
    diagrams = []
    for name, figure in FIGURE_OF_STRATEGY.items():
        diagrams.append(f"Figure {figure} — {name}")
        diagrams.append(ideal_diagram(name, 10))
        diagrams.append("")
    (results_dir / "fig03_04_06_07_utilization.txt").write_text(
        "\n".join(diagrams) + "\n"
    )

    sp, se, rd, fp = (ideal_runs[n] for n in ("SP", "SE", "RD", "FP"))

    # Figure 3: SP's idealized load balancing is perfect.
    assert sp.utilization() > 0.999

    # Figure 4: SE cannot balance joins 3 and 4 perfectly on 10
    # processors (the discretization hole).
    assert se.utilization() < 0.995

    # Figure 6: RD runs join 4 on the whole machine first; the pipeline
    # wave starts only after it completes.
    rd_timings = {t.label: t for t in rd.task_timings}
    assert rd_timings["4"].released == 0.0
    for label in ("1", "5", "3"):
        assert rd_timings[label].released == pytest.approx(
            rd_timings["4"].completion
        )

    # Figure 7: all FP joins start at once; the top join (1 unit of
    # work on one processor) is far from fully utilized — it waits for
    # its right operand.
    assert all(t.released == 0.0 for t in fp.task_timings)
    fp_fractions = busy_fractions(fp)
    top_processor = max(fp_fractions)  # FP assigns the last range to join 1
    assert fp_fractions[top_processor] == min(fp_fractions.values())
    assert fp_fractions[top_processor] < 0.7

    # Total work equals the Figure 2 labels (1+5+3+4) in all diagrams.
    for result in (sp, se, rd, fp):
        assert result.busy_time() == pytest.approx(13.0, rel=1e-6)

    benchmark(api.run, example_tree(), "FP", 10, "ideal", cardinality=1000)
