"""Ablation A3 — the discretization error (Section 3.5, the candy).

"If you have 4 pieces of candy to distribute over 3 kids, one of them
will get 2 pieces... the error decreases with increasing ratio between
number of processors and number of operations.  SP does not suffer
from the discretization error, RD and SE suffer moderately, and FP
suffers most."

Checked two ways: analytically on the allocator (imbalance factor as a
function of the processor/operation ratio) and end-to-end (FP response
on an overhead-free machine versus the fluid lower bound).
"""

import pytest

from repro import api
from repro.core import (
    Catalog,
    discretization_error,
    make_shape,
    paper_relation_names,
    proportional_allocation,
)
from repro.sim import MachineConfig

NAMES = paper_relation_names(10)
CATALOG = Catalog.regular(NAMES, 5000)
WEIGHTS = [4, 5, 5, 5, 5, 5, 5, 5, 5]  # FP's left-linear join works / n


def imbalance(processors: int) -> float:
    counts = proportional_allocation(WEIGHTS, processors)
    return discretization_error(WEIGHTS, counts)


def test_ablation_discretization_analytic(benchmark, results_dir):
    lines = ["processors  procs/ops  imbalance factor"]
    factors = {}
    for processors in (9, 12, 18, 27, 45, 90, 180, 360):
        factors[processors] = imbalance(processors)
        lines.append(
            f"{processors:>10}  {processors / 9:>9.1f}  {factors[processors]:.4f}"
        )
    (results_dir / "ablation_discretization.txt").write_text(
        "\n".join(lines) + "\n"
    )
    # The error decreases with the processor/operation ratio and
    # approaches 1: at 12 processors over 9 joins the quantization is
    # severe (someone's join runs 36% slow), while past 10x the
    # operation count the residual stays within a few percent.
    benchmark(imbalance, 90)
    assert factors[12] > 1.2
    assert max(factors[p] for p in (90, 180, 360)) < 1.05
    assert max(factors[p] for p in (9, 12, 18)) >= max(
        factors[p] for p in (90, 180, 360)
    )


def test_ablation_discretization_end_to_end(benchmark):
    """On an overhead-free machine, SP achieves the fluid bound while
    FP is held above it by integer allocation."""
    config = MachineConfig(
        tuple_unit=0.001, process_startup=0.0, handshake=0.0,
        network_latency=0.0, batches=64,
    )
    tree = make_shape("left_linear", NAMES)
    processors = 12  # 12 processors over 9 joins: coarse quantization
    sp = api.run(tree, "SP", processors, catalog=CATALOG, config=config)
    fp = api.run(tree, "FP", processors, catalog=CATALOG, config=config)
    fluid_bound = sp.busy_time() / processors
    assert sp.response_time == pytest.approx(fluid_bound, rel=0.02)
    assert fp.response_time > fluid_bound * 1.08

    benchmark(api.run, tree, "FP", processors, catalog=CATALOG, config=config)
