"""Figure 12 — response times for the right-oriented bushy query tree.

Regenerates the paper's Figure 12: response time versus number of
processors for SP, SE, RD and FP, at both problem sizes (5K: 20-80
processors; 40K: 30-80).  The ``figure_case`` fixture (conftest) runs
the sweeps on the parallel runner, writes the data table to
``results/fig12_right_bushy.txt``, asserts the Section 4.4 claims
about this figure, and times the paper's best cell.
"""


def test_figure12_right_bushy(benchmark, figure_case):
    figure_case("right_bushy", benchmark)
