"""Workload throughput — the shared-machine saturation curve.

Beyond the paper: sweep the offered load on one 40-processor shared
machine serving the Figure 8 query mix, record throughput, utilization
and tail latency per point, locate the saturation knee, and write the
table to ``results/workload_throughput.txt``.  One representative
mid-load workload run is registered with pytest-benchmark.

    PYTHONPATH=src python -m pytest benchmarks/bench_workload_throughput.py
"""

from __future__ import annotations

from repro.sim import MachineConfig
from repro.workload import (
    ExclusivePolicy,
    QueryMix,
    WorkloadEngine,
    curve_knee,
    open_loop_curve,
)

from conftest import write_result

#: Coarse batches keep every curve point in the tens of milliseconds.
FAST = MachineConfig(
    tuple_unit=0.001, process_startup=0.008, handshake=0.012,
    network_latency=0.05, batches=8,
)
MACHINE_SIZE = 40
SHARE = 10          # four-way multiprogramming on the 40-node machine
RATES = (0.2, 0.5, 1.0, 2.0, 4.0, 8.0)
DURATION = 120.0
MIX = QueryMix.paper(cardinalities=(1_000,), strategies=("SE", "RD"),
                     relations=10)


def make_engine() -> WorkloadEngine:
    return WorkloadEngine(
        MACHINE_SIZE, ExclusivePolicy(SHARE), config=FAST
    )


def table(points, knee) -> str:
    header = (
        f"{'rate':>6}  {'thru':>6}  {'util':>5}  {'p50':>7}  {'p95':>7}  "
        f"{'queue':>7}  {'done':>5}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        lines.append(
            f"{p.load:6.1f}  {p.throughput:6.3f}  {p.utilization:5.1%}  "
            f"{p.latency_p50:7.2f}  {p.latency_p95:7.2f}  "
            f"{p.queue_delay_mean:7.2f}  {p.completed:5d}"
        )
    lines.append(
        f"saturation knee: {knee} q/s" if knee is not None
        else "saturation knee: not reached"
    )
    return "\n".join(lines)


def test_workload_throughput_curve(benchmark, results_dir):
    points = open_loop_curve(
        RATES, MIX, make_engine, duration=DURATION, seed=7
    )
    knee = curve_knee(points)
    write_result(results_dir, "workload_throughput.txt", table(points, knee))

    # Sanity on the curve's shape: load helps until it cannot.
    assert points[1].throughput > points[0].throughput
    assert points[-1].latency_p95 > points[0].latency_p95
    assert knee is not None, "the sweep must drive the machine past its knee"

    # Time one mid-load run (the knee's neighborhood) end to end.
    mid_rate = RATES[len(RATES) // 2]

    def run_mid_load():
        return open_loop_curve(
            (mid_rate,), MIX, make_engine, duration=30.0, seed=7
        )[0]

    point = benchmark(run_mid_load)
    assert point.completed > 0
