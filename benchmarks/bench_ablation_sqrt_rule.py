"""Ablation A5 — optimal parallelism ∝ √(operand size) (Section 2.3.1).

[WFA92] on PRISMA/DB: "The optimal number of processors to be used
appears to be proportional to the square root of the size of the
operands.  As a consequence, larger problems allow a larger degree of
parallelism."  In the model this emerges because per-processor compute
falls as W/p while startup and coordination overhead grow linearly in
p — the optimum is at p* ∝ √W.

Checked by sweeping processors for single-join queries of growing size
and fitting the scaling exponent of the argmin.
"""

import math


from repro import api
from repro.core import Catalog
from repro.core.trees import Join, Leaf
from repro.sim import MachineConfig

CONFIG = MachineConfig.paper()


def optimal_processors(cardinality: int, max_processors: int = 120) -> int:
    catalog = Catalog.regular(["A", "B"], cardinality)
    tree = Join(Leaf("A"), Leaf("B"))
    best = None
    best_procs = None
    for processors in range(1, max_processors + 1):
        response = api.run(
            tree, "SP", processors, catalog=catalog, config=CONFIG
        ).response_time
        if best is None or response < best:
            best = response
            best_procs = processors
    return best_procs


def test_ablation_sqrt_rule(benchmark, results_dir):
    sizes = [2_000, 8_000, 32_000, 128_000]
    optima = {size: optimal_processors(size) for size in sizes}
    lines = ["cardinality  optimal processors  procs/sqrt(card)"]
    for size in sizes:
        lines.append(
            f"{size:>11}  {optima[size]:>18}  "
            f"{optima[size] / math.sqrt(size):.3f}"
        )
    (results_dir / "ablation_sqrt_rule.txt").write_text("\n".join(lines) + "\n")

    # Larger problems allow more parallelism...
    assert optima[2_000] < optima[8_000] < optima[32_000] <= optima[128_000]
    # ...with a scaling exponent near 1/2 (fit over the 64x size range).
    exponent = math.log(optima[128_000] / optima[2_000]) / math.log(64)
    assert 0.3 < exponent < 0.7, f"scaling exponent {exponent:.2f} not ~0.5"

    benchmark(optimal_processors, 2_000, 40)
