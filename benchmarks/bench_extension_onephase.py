"""Extension E3 — testing the two-phase optimization assumption.

Section 1.2: the paper adopts two-phase optimization (cheapest tree
first, parallelize second) noting that "not all researchers agree on
this assumption [SrE93]" and defending it with [KBZ86]'s "missing the
very best execution plan is not a big problem as long as you can
assure that you will not come up with a very bad one".

This bench searches the *joint* tree × strategy space exhaustively
(small queries, simulated response as the objective) and measures the
gap: how much response time does two-phase leave on the table, and how
bad is a bad plan?  Expected per the paper's argument: the two-phase
choice lands within a small factor of the joint optimum and far from
the worst candidate.
"""


from repro.optimizer import QueryGraph
from repro.optimizer.onephase import two_phase_gap
from repro.sim import MachineConfig

FAST = MachineConfig(
    tuple_unit=0.001, process_startup=0.008, handshake=0.012,
    network_latency=0.1, batches=8,
)


def gap_for(graph: QueryGraph, processors: int):
    return two_phase_gap(graph, processors, config=FAST)


def test_extension_two_phase_assumption(benchmark, results_dir):
    # (graph, processors, how much worse the worst joint candidate must
    # be than the optimum — small for the regular query, whose trees
    # all cost the same by construction).
    cases = {
        "regular 6-way (paper-style)": (
            QueryGraph.regular([f"R{i}" for i in range(6)], 2000), 12, 1.3,
        ),
        "skewed chain 5-way": (
            QueryGraph.chain(
                ["A", "B", "C", "D", "E"],
                [4000, 200, 8000, 500, 3000],
                [0.004, 0.002, 0.001, 0.003],
            ),
            12, 1.5,
        ),
        "star 5-way": (
            QueryGraph.star("F", ["D1", "D2", "D3", "D4"],
                            [8000, 100, 150, 80, 120], 0.01),
            12, 1.5,
        ),
    }
    lines = ["case                          1-phase  2-phase    gap   worst/best"]
    for name, (graph, processors, worst_factor) in cases.items():
        stats = gap_for(graph, processors)
        lines.append(
            f"{name:<28}  {stats['one_phase']:7.2f}  {stats['two_phase']:7.2f}"
            f"  {stats['gap']:5.1%}  {stats['worst_candidate'] / stats['one_phase']:8.1f}x"
        )
        # The paper's argument: two-phase never picks a very bad plan.
        assert stats["gap"] < 0.5, f"{name}: two-phase missed by {stats['gap']:.0%}"
        # ...while the space does contain clearly worse plans.
        assert stats["worst_candidate"] > worst_factor * stats["one_phase"]
        # Two-phase also clearly beats the median candidate.
        assert stats["two_phase"] <= stats["median_candidate"]
    (results_dir / "extension_onephase.txt").write_text("\n".join(lines) + "\n")

    graph, processors, _ = cases["star 5-way"]
    benchmark(gap_for, graph, processors)
