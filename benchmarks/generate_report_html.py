"""Regenerate the self-contained HTML report.

Runs the full evaluation with the frozen paper configuration and
writes ``benchmarks/results/report.html``: the Figure 14 table, SVG
line charts for Figures 9-13 with per-panel claim checklists, SVG
Gantt charts for the idealized Figures 3/4/6/7, and the beyond-paper
multi-query workload saturation curve, fault-injection resilience
section, goodput-under-overload (deadlines + load shedding) section,
the multi-tenant scheduler fairness section, and the sharded-serving
elastic-autoscaling section.

    python benchmarks/generate_report_html.py
"""

from __future__ import annotations

import pathlib

from repro import api
from repro.bench import all_sweeps
from repro.core import example_tree
from repro.faults import fault_rate_sweep
from repro.report import render_report
from repro.sim import MachineConfig
from repro.workload import (
    ExclusivePolicy,
    QueryMix,
    WorkloadEngine,
    fairness_sweep,
    open_loop_curve,
    overload_sweep,
)

RESULTS = pathlib.Path(__file__).resolve().parent / "results"

#: Coarse batches keep the workload sweep to a few seconds.
FAST = MachineConfig(
    tuple_unit=0.001, process_startup=0.008, handshake=0.012,
    network_latency=0.05, batches=8,
)


def workload_points():
    mix = QueryMix.paper(
        cardinalities=(1_000,), strategies=("SE", "RD"), relations=10
    )
    return open_loop_curve(
        (0.2, 0.5, 1.0, 2.0, 4.0),
        mix,
        lambda: WorkloadEngine(40, ExclusivePolicy(10), config=FAST),
        duration=120.0,
        seed=7,
    )


def resilience_points():
    return fault_rate_sweep(
        strategies=("SE", "RD"),
        crash_rates=(0.0, 0.002, 0.01),
        recovery="restart",
        duration=120.0,
        rate=0.1,
        machine_size=40,
        seed=7,
        repair_time=30.0,
        cardinality=1_000,
        config=FAST,
    )


def overload_points():
    return overload_sweep(
        strategies=("SE", "RD"),
        loads=(0.2, 0.5, 1.0, 2.0),
        sheds=(None, "deadline_aware"),
        deadline=60.0,
        duration=120.0,
        machine_size=40,
        seed=7,
        queue_limit=16,
        share=10,
        cardinality=1_000,
        config=FAST,
    )


def fairness_report_points():
    return fairness_sweep(
        schedulers=("fifo", "wfq"),
        abuse_factors=(1.0, 2.0, 3.0),
        good_rate=0.15,
        deadline=30.0,
        duration=120.0,
        machine_size=40,
        seed=7,
        strategy="FP",
        cardinality=1_000,
        config=FAST,
    )


def cluster_report_points():
    """The four capacity plans of the sharded-serving section, each
    replaying the same surge trace (base rate, 2x middle window, base
    rate) through a 2-shard cluster."""
    from repro.cluster import Trace
    from repro.workload import QuerySpec
    from repro.workload.arrivals import poisson_arrivals
    from repro.workload.mix import sample_specs

    pairs = []
    for index, (rate, start) in enumerate(
        [(0.3, 0.0), (0.6, 45.0), (0.3, 90.0)]
    ):
        times = poisson_arrivals(rate, 45.0, 7 + 31 * index, start=start)
        mix = QueryMix.single(QuerySpec("wide_bushy", 1_000, "FP"))
        pairs.extend(zip(times, sample_specs(mix, len(times), 7 + 31 * index)))
    trace = Trace.from_arrivals(pairs, seed=7)

    plans = [
        ("static@base", dict(machine_size=10)),
        ("static@peak", dict(machine_size=30)),
        ("reactive", dict(machine_size=10, autoscale="reactive",
                          scale_max=30, scale_cooldown=5.0)),
        ("predictive", dict(machine_size=10, autoscale="predictive",
                            scale_max=30, scale_cooldown=5.0)),
    ]
    points = []
    for plan, overrides in plans:
        result = api.run_cluster(
            trace=trace, shards=2, placement="round_robin", seed=7,
            policy="exclusive", share=10, config=FAST, **overrides,
        )
        stats = result.latency_stats()
        points.append({
            "plan": plan,
            "submitted": result.submitted_count(),
            "completed": result.completed_count(),
            "goodput": result.goodput(),
            "latency_p50": stats["p50"],
            "latency_p99": stats["p99"],
            "scale_ups": result.scale_ups(),
            "scale_downs": result.scale_downs(),
            "capacity": _capacity_series(result),
        })
    return points


def _capacity_series(result):
    """Total healthy cluster capacity as a step function of simulated
    time, reconstructed from the per-shard scale events."""
    capacity = sum(report.capacity_base for report in result.shards)
    deltas = sorted(
        (event["time"], event["to"] - event["from"])
        for report in result.shards
        for event in report.scale_events
    )
    series = [(0.0, capacity)]
    for when, delta in deltas:
        series.append((when, capacity))
        capacity += delta
        series.append((when, capacity))
    series.append((result.makespan, capacity))
    return series


def main() -> None:
    sweeps = all_sweeps()
    diagrams = {
        name: api.run(example_tree(), name, 10, "ideal", cardinality=1000)
        for name in ("SP", "SE", "RD", "FP")
    }
    RESULTS.mkdir(exist_ok=True)
    out = RESULTS / "report.html"
    out.write_text(
        render_report(
            sweeps, diagrams, workload_points(), resilience_points(),
            overload_points(), fairness_report_points(),
            cluster_points=cluster_report_points(),
        )
    )
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
