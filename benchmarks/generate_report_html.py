"""Regenerate the self-contained HTML report (report.html).

Runs the full evaluation with the frozen paper configuration and
writes ``report.html`` at the repository root: the Figure 14 table,
SVG line charts for Figures 9-13 with per-panel claim checklists, and
SVG Gantt charts for the idealized Figures 3/4/6/7.

    python benchmarks/generate_report_html.py
"""

from __future__ import annotations

import pathlib

from repro import api
from repro.bench import all_sweeps
from repro.core import example_tree
from repro.report import render_report

ROOT = pathlib.Path(__file__).resolve().parent.parent


def main() -> None:
    sweeps = all_sweeps()
    diagrams = {
        name: api.run(example_tree(), name, 10, "ideal", cardinality=1000)
        for name in ("SP", "SE", "RD", "FP")
    }
    out = ROOT / "report.html"
    out.write_text(render_report(sweeps, diagrams))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
