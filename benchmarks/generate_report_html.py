"""Regenerate the self-contained HTML report.

Runs the full evaluation with the frozen paper configuration and
writes ``benchmarks/results/report.html``: the Figure 14 table, SVG
line charts for Figures 9-13 with per-panel claim checklists, SVG
Gantt charts for the idealized Figures 3/4/6/7, and the beyond-paper
multi-query workload saturation curve, fault-injection resilience
section, goodput-under-overload (deadlines + load shedding) section,
and the multi-tenant scheduler fairness section.

    python benchmarks/generate_report_html.py
"""

from __future__ import annotations

import pathlib

from repro import api
from repro.bench import all_sweeps
from repro.core import example_tree
from repro.faults import fault_rate_sweep
from repro.report import render_report
from repro.sim import MachineConfig
from repro.workload import (
    ExclusivePolicy,
    QueryMix,
    WorkloadEngine,
    fairness_sweep,
    open_loop_curve,
    overload_sweep,
)

RESULTS = pathlib.Path(__file__).resolve().parent / "results"

#: Coarse batches keep the workload sweep to a few seconds.
FAST = MachineConfig(
    tuple_unit=0.001, process_startup=0.008, handshake=0.012,
    network_latency=0.05, batches=8,
)


def workload_points():
    mix = QueryMix.paper(
        cardinalities=(1_000,), strategies=("SE", "RD"), relations=10
    )
    return open_loop_curve(
        (0.2, 0.5, 1.0, 2.0, 4.0),
        mix,
        lambda: WorkloadEngine(40, ExclusivePolicy(10), config=FAST),
        duration=120.0,
        seed=7,
    )


def resilience_points():
    return fault_rate_sweep(
        strategies=("SE", "RD"),
        crash_rates=(0.0, 0.002, 0.01),
        recovery="restart",
        duration=120.0,
        rate=0.1,
        machine_size=40,
        seed=7,
        repair_time=30.0,
        cardinality=1_000,
        config=FAST,
    )


def overload_points():
    return overload_sweep(
        strategies=("SE", "RD"),
        loads=(0.2, 0.5, 1.0, 2.0),
        sheds=(None, "deadline_aware"),
        deadline=60.0,
        duration=120.0,
        machine_size=40,
        seed=7,
        queue_limit=16,
        share=10,
        cardinality=1_000,
        config=FAST,
    )


def fairness_report_points():
    return fairness_sweep(
        schedulers=("fifo", "wfq"),
        abuse_factors=(1.0, 2.0, 3.0),
        good_rate=0.15,
        deadline=30.0,
        duration=120.0,
        machine_size=40,
        seed=7,
        strategy="FP",
        cardinality=1_000,
        config=FAST,
    )


def main() -> None:
    sweeps = all_sweeps()
    diagrams = {
        name: api.run(example_tree(), name, 10, "ideal", cardinality=1000)
        for name in ("SP", "SE", "RD", "FP")
    }
    RESULTS.mkdir(exist_ok=True)
    out = RESULTS / "report.html"
    out.write_text(
        render_report(
            sweeps, diagrams, workload_points(), resilience_points(),
            overload_points(), fairness_report_points(),
        )
    )
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
