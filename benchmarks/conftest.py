"""Shared benchmark fixtures.

Each figure benchmark computes its sweeps through the memoized runner
(so Figure 14 reuses Figures 9-13 within one pytest session), writes
its data table to ``results/``, asserts the paper's Section 4.4 claims,
and registers one representative simulation with pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n")


@pytest.fixture(scope="session")
def figure_bench():
    """Run one figure's sweeps, check claims, return report pieces."""
    from repro.bench import evaluate_claims, figure_report, figure_sweeps

    def run(shape: str):
        small, large = figure_sweeps(shape)
        report = figure_report([small, large])
        failures = [
            outcome.claim.description
            for sweep in (small, large)
            for outcome in evaluate_claims(sweep)
            if not outcome.holds
        ]
        return small, large, report, failures

    return run


@pytest.fixture(scope="session")
def figure_case(figure_bench, results_dir):
    """One Figure 9-13 benchmark, end to end.

    Runs the shape's (5K, 40K) sweeps on the parallel runner, writes
    the figure's data table to ``results/``, asserts the Section 4.4
    claims, and times the paper's winning 5K cell through the
    :func:`repro.api.run` facade.  The per-figure benchmark modules
    reduce to one call each.
    """
    from repro import api
    from repro.bench import FIGURE_OF_SHAPE, PAPER_FIGURE_14

    def run(shape: str, benchmark):
        small, large, report, failures = figure_bench(shape)
        name = f"fig{FIGURE_OF_SHAPE[shape]:02d}_{shape}.txt"
        write_result(results_dir, name, report)
        assert not failures, f"Section 4.4 claims failed: {failures}"

        # Time the paper's winning configuration for the 5K experiment.
        _seconds, strategy, processors = PAPER_FIGURE_14[(shape, "5K")]
        result = benchmark(api.run, shape, strategy, processors)
        assert result.response_time > 0
        return small, large

    return run
