"""Shared benchmark fixtures.

Each figure benchmark computes its sweeps through the memoized runner
(so Figure 14 reuses Figures 9-13 within one pytest session), writes
its data table to ``results/``, asserts the paper's Section 4.4 claims,
and registers one representative simulation with pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n")


@pytest.fixture(scope="session")
def figure_bench():
    """Run one figure's sweeps, check claims, return report pieces."""
    from repro.bench import evaluate_claims, figure_report, figure_sweeps

    def run(shape: str):
        small, large = figure_sweeps(shape)
        report = figure_report([small, large])
        failures = [
            outcome.claim.description
            for sweep in (small, large)
            for outcome in evaluate_claims(sweep)
            if not outcome.holds
        ]
        return small, large, report, failures

    return run
