"""Ablation A4 — pipeline delay (Sections 2.3.3 and 3.5).

[WiA93]: "each step in a linear pipeline (a join with one base-relation
operand) causes a constant delay.  A step in a bushy pipeline (a join
that has two intermediate results as operands) causes a delay that is
proportional to the size of the operands."

Measured here by regressing FP's response time against pipeline length
for linear chains (slope ≈ constant per step, independent of operand
size beyond the compute term) and against operand size for one bushy
step (delay grows linearly with size).
"""


from repro import api
from repro.core import Catalog, paper_relation_names
from repro.core.shapes import right_linear
from repro.core.trees import Join, Leaf
from repro.sim import MachineConfig

#: Overhead-free except pipeline mechanics: latency only.
CONFIG = MachineConfig(
    tuple_unit=0.001, process_startup=0.0, handshake=0.0,
    network_latency=0.2, batches=32,
)


def linear_response(relations: int, cardinality: int, per_join: int = 4) -> float:
    names = paper_relation_names(relations)
    catalog = Catalog.regular(names, cardinality)
    tree = right_linear(names)
    return api.run(
        tree, "FP", per_join * (relations - 1),
        catalog=catalog, config=CONFIG,
    ).response_time


def bushy_step_response(cardinality: int) -> float:
    """One bushy join over two pair-joins: (A⋈B) ⋈ (C⋈D)."""
    names = ["A", "B", "C", "D"]
    catalog = Catalog.regular(names, cardinality)
    tree = Join(Join(Leaf("A"), Leaf("B")), Join(Leaf("C"), Leaf("D")))
    return api.run(
        tree, "FP", 12, catalog=catalog, config=CONFIG
    ).response_time


def test_linear_pipeline_delay_constant_per_step(benchmark, results_dir):
    """Adding a pipeline step adds a roughly constant delay."""
    cardinality = 4000
    lines = ["steps  response  delta"]
    deltas = []
    previous = None
    for relations in (3, 5, 7, 9, 11):
        response = linear_response(relations, cardinality)
        delta = response - previous if previous is not None else float("nan")
        if previous is not None:
            deltas.append(delta / 2)  # two extra joins per step here
        lines.append(f"{relations - 1:>5}  {response:8.2f}  {delta:8.2f}")
        previous = response
    (results_dir / "ablation_pipeline_linear.txt").write_text(
        "\n".join(lines) + "\n"
    )
    # Per-step deltas cluster: max/min within a factor 3 (constant-ish,
    # not growing with chain position).
    assert max(deltas) < 3 * min(deltas) + 1e-9
    benchmark(linear_response, 3, 4000)


def test_bushy_step_delay_proportional_to_operand_size(benchmark, results_dir):
    """The bushy step's extra delay grows with operand cardinality.

    The ramp-up of the pipelining join makes the top join's completion
    lag; doubling the data should scale that lag roughly linearly —
    distinctly faster than the constant linear-step delay."""
    lines = ["cardinality  response  response/cardinality"]
    responses = {}
    for cardinality in (2000, 4000, 8000, 16000):
        responses[cardinality] = bushy_step_response(cardinality)
        lines.append(
            f"{cardinality:>11}  {responses[cardinality]:8.2f}  "
            f"{responses[cardinality] / cardinality * 1000:.3f} ms/tuple"
        )
    (results_dir / "ablation_pipeline_bushy.txt").write_text(
        "\n".join(lines) + "\n"
    )
    # Linear growth: doubling size roughly doubles the bushy response
    # (compute itself is linear, and so is the ramp-induced delay).
    ratio = responses[16000] / responses[2000]
    assert 6.0 < ratio < 10.0

    benchmark(bushy_step_response, 2000)
