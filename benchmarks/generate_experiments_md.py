"""Regenerate EXPERIMENTS.md from fresh sweeps.

Runs the complete evaluation (all figures, the Figure 14 table, and
the idealized diagrams) with the frozen paper configuration and writes
EXPERIMENTS.md at the repository root, recording paper-versus-measured
for every table and figure.

    python benchmarks/generate_experiments_md.py
"""

from __future__ import annotations

import pathlib

from repro.bench import (
    all_sweeps,
    ascii_plot,
    evaluate_claims,
    figure14_table,
    markdown_figure_section,
)
from repro.core import SHAPE_NAMES
from repro.engine import ideal_diagram

ROOT = pathlib.Path(__file__).resolve().parent.parent

HEADER = """# EXPERIMENTS — paper versus measured

Every table and figure of the paper's evaluation (Section 4),
regenerated on the simulated PRISMA/DB machine
(`MachineConfig.paper()`; calibration documented in
`benchmarks/calibrate.py`).  Absolute seconds are *not* expected to
match a 1995 68020 cluster — the constants were fitted once against
the ten Figure 14 anchors — but the paper's qualitative content (who
wins, which strategies coincide, where crossovers fall) is asserted by
`pytest benchmarks/ --benchmark-only` on every run, and its status is
recorded per figure below.

Regenerate this file:

    python benchmarks/generate_experiments_md.py
"""

INTERPRETATION = """## Reading the results

Where the reproduction matches the paper:

* **All degenerations hold exactly.** SP ≡ SE ≡ RD on the left-linear
  tree (identical curves, equation-level: the planners emit identical
  schedules), RD ≡ FP on the right-linear tree, SP insensitive to
  shape.
* **All overhead orderings hold.** SP suffers most from startup
  (#joins × #processors processes) and coordination (n×m streams —
  51 200 streams at 80 processors, exactly the paper's 6 400 per
  refragmented operand); FP suffers least; SE and RD in the middle
  (see the ablation benches).
* **Winners per cell.** SE wins wide-bushy/40K, RD wins
  right-bushy/40K, FP wins the left-oriented and linear shapes at 80
  processors, SP wins everywhere at 30 processors on the 40K problem;
  bushy shapes beat linear shapes in the best-times table.
* **Scaling laws.** SP's overhead-dominated minimum moves right with
  problem size; the optimal single-join parallelism fits an exponent
  of ~0.5 in operand size (ablation A5).

Known deviations, and why they are acceptable:

* Our FP curves keep falling gently through 80 processors on the 5K
  experiment, where the paper's flatten after ~40–60 (its 5K winners
  sit at 40 and 60 processors); the differences inside that flat
  region are near-tie sized.
* In three Figure 14 cells the winning *strategy* differs from the
  paper inside a near-tie band the paper itself describes as "almost
  as good": right-bushy/5K (FP edges RD by ~6%; the paper has RD ahead
  of FP by a similar margin), right-linear/40K (FP edges RD by ~9%,
  and the paper says RD and FP *coincide* on that shape), and the 5K
  linear cells' winning processor count.  The bench suite asserts the
  paper's winner is always within 15% of our best in every cell.
"""


def main() -> None:
    sweeps = all_sweeps()
    sections = [HEADER]

    sections.append("## Figure 14 — best response times (the headline table)\n")
    sections.append("```")
    sections.append(figure14_table(sweeps))
    sections.append("```")

    claims_total = 0
    claims_pass = 0
    for shape in SHAPE_NAMES:
        for size in ("5K", "40K"):
            sweep = sweeps[(shape, size)]
            for outcome in evaluate_claims(sweep):
                claims_total += 1
                claims_pass += outcome.holds
    sections.append(
        f"\nSection 4.4 qualitative claims: **{claims_pass}/{claims_total} pass**.\n"
    )

    sections.append("## Figures 3, 4, 6, 7 — idealized utilization diagrams\n")
    sections.append(
        "The Figure 2 example tree (work labels 1/5/3/4) on an idealized "
        "10-processor machine; compare with the paper's diagrams: SP's "
        "perfect sequential blocks, SE's 4/6 split with the discretization "
        "hole, RD's probe pipeline that join 3 cannot saturate, FP's top "
        "join waiting for its right operand.\n"
    )
    for strategy, figure in (("SP", 3), ("SE", 4), ("RD", 6), ("FP", 7)):
        sections.append(f"### Figure {figure} ({strategy})\n")
        sections.append("```")
        sections.append(ideal_diagram(strategy, 10, width=64))
        sections.append("```")

    sections.append("\n## Figures 9–13 — response-time sweeps\n")
    for shape in SHAPE_NAMES:
        for size in ("5K", "40K"):
            sweep = sweeps[(shape, size)]
            sections.append(markdown_figure_section(sweep))
            sections.append("```")
            sections.append(ascii_plot(sweep, width=60, height=16))
            sections.append("```\n")

    sections.append("\n## Extensions\n")
    from repro.bench.scaling import scaling_report
    from repro.bench.workloads import Experiment, run_sweep

    scale_sweep = run_sweep(Experiment("wide_bushy", 40_000, (80, 160, 320)))
    sections.append(
        "### E1 — scaling past the paper's 80 processors\n\n"
        "Section 5 predicts FP 'to do the best job in scaling up'; the\n"
        "simulated machine extrapolated to 320 nodes:\n"
    )
    sections.append("```")
    sections.append(scale_sweep.table())
    sections.append("")
    sections.append(scaling_report(scale_sweep))
    sections.append("```\n")

    from repro import api
    from repro.core import Catalog, make_shape, paper_relation_names
    from repro.model import predict, relative_error

    names = paper_relation_names(10)
    errors = []
    for size in (5_000, 40_000):
        catalog = Catalog.regular(names, size)
        for shape in SHAPE_NAMES:
            tree = make_shape(shape, names)
            for strategy in ("SP", "SE", "RD", "FP"):
                for procs in (30, 80):
                    predicted = predict(tree, catalog, strategy, procs)
                    simulated = api.run(
                        tree, strategy, procs, catalog=catalog
                    )
                    errors.append(
                        relative_error(
                            predicted.response_time, simulated.response_time
                        )
                    )
    import statistics

    sections.append(
        "### E2 — analytic model versus simulation ([WiG93]-style)\n\n"
        f"Closed-form predictions over the full paper grid "
        f"({len(errors)} cells): mean |relative error| "
        f"**{statistics.mean(errors):.1%}**, max "
        f"**{max(errors):.1%}**.\n"
    )

    sections.append(INTERPRETATION)

    sections.append("## Ablations (design tradeoffs of Section 3.5)\n")
    sections.append(
        "Run `pytest benchmarks/ --benchmark-only`; data tables land in "
        "`benchmarks/results/`.\n\n"
        "| id | mechanism | bench | asserted outcome |\n"
        "|---|---|---|---|\n"
        "| A1 | startup | `bench_ablation_startup.py` | response sensitivity to per-process startup cost: SP > SE,RD > FP; SP ≈ #joins×#procs |\n"
        "| A2 | coordination | `bench_ablation_streams.py` | stream counts (SP: 51 200 at 80p) and handshake-cost sensitivity: SP > SE,RD > FP |\n"
        "| A3 | discretization | `bench_ablation_discretization.py` | allocation imbalance falls from >1.2 (12p/9 joins) to <1.05 (≥90p); SP hits the fluid bound, FP cannot |\n"
        "| A4 | pipeline delay | `bench_ablation_pipeline_delay.py` | linear steps: constant delay per step; bushy step: delay scales with operand size |\n"
        "| A5 | √size rule | `bench_ablation_sqrt_rule.py` | optimal single-join parallelism scales with exponent ≈ 0.5 in cardinality |\n"
        "| A6 | mirroring | `bench_ablation_mirroring.py` | mirroring the left-bushy tree is free and makes RD match its right-bushy performance |\n"
        "| A7 | skew (extension) | `bench_ablation_skew.py` | Zipf fragment shares slow every strategy monotonically; SP's perfect-balance advantage is an artifact of uniformity |\n"
        "| A8 | network (extension) | `bench_ablation_network.py` | response flat until the shared link nears ~10^4 tuples/s for the 5K query, then transfer-bound |\n"
        "| E1 | scale-up (extension) | `bench_extension_scaleup.py` | FP overtakes everything past ~120 processors and keeps improving to 320 |\n"
        "| E2 | analytic model (extension) | `bench_extension_model.py` | closed-form predictions within ~10% mean of the DES over the paper grid |\n"
    )

    (ROOT / "EXPERIMENTS.md").write_text("\n".join(sections) + "\n")
    print(f"wrote {ROOT / 'EXPERIMENTS.md'}")
    print(f"claims: {claims_pass}/{claims_total}")


if __name__ == "__main__":
    main()
