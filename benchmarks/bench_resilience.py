"""The BENCH resilience gate: the coordinated cluster under failure.

Three claims about ``repro.cluster.resilience`` / ``repro.cluster.chaos``
are institutionalized here:

* **failover** — killing 1 of 4 shards mid-run, the coordinated
  cluster (failover + retry budgets) retains at least
  ``FAILOVER_RETENTION`` (70%) of the fault-free goodput with zero
  conservation violations, while the ``failover=False`` baseline
  (the pre-resilience router) loses the dead shard's population to
  honest per-query failures;
* **hedging** — against a straggler shard (a shard-level stall fault
  slowing every processor there), hedged requests cut p99 latency to
  at most ``HEDGE_P99`` (0.75x) of the unhedged run at under
  ``HEDGE_DUPLICATE`` (10%) duplicate busy time;
* **shrinking** — the chaos harness's ddmin shrinker reduces a
  multi-event failing fault schedule to a single-event minimal repro
  that still trips the same invariant.

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py            # full
    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_resilience.py --check    # gate

Writes ``BENCH_resilience.json`` (override with ``--output``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro import api
from repro.cluster import HedgePolicy, shrink_schedule
from repro.cluster.chaos import check_invariants
from repro.faults import CrashFault, FaultSchedule, StallFault
from repro.sim import MachineConfig

#: Coarse batches keep each cluster cell to a fraction of a second.
FAST = MachineConfig(
    tuple_unit=0.001, process_startup=0.008, handshake=0.012,
    network_latency=0.05, batches=8,
)

#: Failover + retries must retain this fraction of fault-free goodput.
FAILOVER_RETENTION = 0.70
#: Hedged p99 must be at most this fraction of the unhedged p99.
HEDGE_P99 = 0.75
#: Hedging must add less than this fraction of duplicate busy time.
HEDGE_DUPLICATE = 0.10

SHARDS = 4
MACHINE_SIZE = 12       # per-shard processors (FP on wide_bushy needs >= 9)
SHARE = 12
STRATEGY = "FP"
CARDINALITY = 1_000
SEED = 11
KILL_SHARD = 1
STRAGGLER = 2
STALL_FACTOR = 6.0

#: ~80% of the 4-shard capacity (exclusive FP keeps each shard serial
#: at roughly 7s per query): loaded enough that losing a shard hurts,
#: unsaturated enough that live shards can absorb failover and hedges.
FULL = dict(rate=0.45, duration=240.0)
SMOKE = dict(rate=0.45, duration=120.0)


def run_cell(params, **overrides):
    """One coordinated-cluster run over the shared arrival stream.

    Every cell passes ``retry_budget`` so the resilient (single-clock)
    path serves it; identical knobs + seed give identical arrivals, so
    the cells differ only in the fault and policy under test.
    """
    knobs = dict(
        arrivals="poisson", rate=params["rate"], duration=params["duration"],
        seed=SEED, shards=SHARDS, machine_size=MACHINE_SIZE,
        policy="exclusive", share=SHARE, strategy=STRATEGY,
        cardinality=CARDINALITY, placement="hash", config=FAST,
        retry_budget=3,
    )
    knobs.update(overrides)
    return api.run_cluster("wide_bushy", **knobs)


def busy_seconds(result) -> float:
    """Total busy time across shards — the duplicate-work currency."""
    return sum(report.busy_seconds for report in result.shards)


def cell_row(scenario, result, baseline_goodput=None):
    stats = result.latency_stats()
    res = result.resilience
    return {
        "scenario": scenario,
        "submitted": result.submitted_count(),
        "completed": result.completed_count(),
        "failed": result.failed_count(),
        "goodput": result.goodput(),
        "retained": (
            result.goodput() / baseline_goodput
            if baseline_goodput else None
        ),
        "retries": res["retries"],
        "hedges": res["hedges"],
        "hedge_wins": res["hedge_wins"],
        "p99": stats["p99"],
        "busy_seconds": busy_seconds(result),
        "conservation_violations": check_invariants(result),
    }


def failover_cells(params):
    """Fault-free, failover, and no-failover runs of the same stream
    with shard ``KILL_SHARD`` crashed permanently at 40% of the run."""
    kill = FaultSchedule(
        crashes=(CrashFault(KILL_SHARD, at=0.4 * params["duration"]),),
        seed=SEED,
    )
    rows = []
    fault_free = run_cell(params)
    rows.append(cell_row("fault-free", fault_free))
    goodput = fault_free.goodput()
    resilient = run_cell(params, shard_faults=kill)
    rows.append(cell_row("shard killed, failover", resilient, goodput))
    baseline = run_cell(params, shard_faults=kill, failover=False)
    rows.append(cell_row("shard killed, no failover", baseline, goodput))
    return rows


def hedge_cells(params):
    """Unhedged and hedged runs against a straggler shard stalled for
    the whole run (every processor ``STALL_FACTOR``x slower)."""
    stall = FaultSchedule(
        stalls=(
            StallFault(
                STRAGGLER, start=0.0, end=3.0 * params["duration"],
                factor=STALL_FACTOR,
            ),
        ),
        seed=SEED,
    )
    rows = []
    unhedged = run_cell(params, shard_faults=stall)
    rows.append(cell_row("straggler, unhedged", unhedged))
    hedged = run_cell(
        params, shard_faults=stall,
        hedge=HedgePolicy(percentile=50.0, min_observations=6),
    )
    rows.append(cell_row("straggler, hedged", hedged))
    return rows


def shrink_cell():
    """ddmin a noisy failing schedule down to the minimal repro.

    The victim is a tiny 2-shard no-failover cluster; the invariant it
    violates is "some query fails".  Of the many injected events, one
    crash is enough to trip it — the shrinker must find that out.
    """
    schedule = FaultSchedule.generate(
        machine_size=2, horizon=30.0, seed=SEED, crash_rate=0.15,
        repair_time=None, stall_rate=0.1, stall_duration=5.0,
    )

    def fails(candidate) -> bool:
        result = run_cell(
            dict(rate=0.8, duration=30.0), shards=2,
            shard_faults=candidate, failover=False, retry_budget=0,
        )
        return result.failed_count() > 0

    shrunk = shrink_schedule(schedule, fails)
    return {
        "original_events": schedule.event_count,
        "shrunk_events": shrunk.event_count,
        "shrunk": shrunk.to_payload(),
    }


def check(failover_rows, hedge_rows, shrink_row):
    """The resilience gate; returns a list of failure messages."""
    failures = []
    for row in failover_rows + hedge_rows:
        if row["conservation_violations"]:
            failures.append(
                f"conservation violated in {row['scenario']!r}: "
                f"{row['conservation_violations'][:3]}"
            )
    by_scenario = {row["scenario"]: row for row in failover_rows}
    resilient = by_scenario["shard killed, failover"]
    baseline = by_scenario["shard killed, no failover"]
    if (resilient["retained"] or 0.0) < FAILOVER_RETENTION:
        failures.append(
            f"failover retained only {resilient['retained']:.0%} of "
            f"fault-free goodput (< {FAILOVER_RETENTION:.0%})"
        )
    if baseline["failed"] == 0:
        failures.append(
            "the no-failover baseline lost nothing — the kill scenario "
            "is not exercising the dead shard's population"
        )
    if resilient["completed"] <= baseline["completed"]:
        failures.append(
            f"failover completed no more queries than the no-failover "
            f"baseline ({resilient['completed']} vs {baseline['completed']})"
        )
    unhedged, hedged = hedge_rows
    if not (unhedged["p99"] and hedged["p99"]):
        failures.append("hedge cells produced no p99 latency")
    else:
        ratio = hedged["p99"] / unhedged["p99"]
        if ratio > HEDGE_P99:
            failures.append(
                f"hedging cut p99 to only {ratio:.0%} of unhedged "
                f"(> {HEDGE_P99:.0%})"
            )
    if unhedged["busy_seconds"] > 0:
        duplicate = (
            hedged["busy_seconds"] - unhedged["busy_seconds"]
        ) / unhedged["busy_seconds"]
        if duplicate >= HEDGE_DUPLICATE:
            failures.append(
                f"hedging cost {duplicate:.0%} duplicate busy time "
                f"(>= {HEDGE_DUPLICATE:.0%})"
            )
    else:
        duplicate = None
        failures.append("unhedged run recorded no busy time")
    if shrink_row["shrunk_events"] >= shrink_row["original_events"]:
        failures.append(
            f"the shrinker did not shrink: {shrink_row['original_events']} "
            f"-> {shrink_row['shrunk_events']} events"
        )
    if shrink_row["shrunk_events"] != 1:
        failures.append(
            f"the minimal repro has {shrink_row['shrunk_events']} events; "
            f"a single crash suffices to fail a no-failover cluster"
        )
    ratios = {
        "failover_retention": resilient["retained"],
        "hedge_p99_ratio": (
            hedged["p99"] / unhedged["p99"]
            if unhedged["p99"] and hedged["p99"] else None
        ),
        "hedge_duplicate_work": duplicate,
    }
    return failures, ratios


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (shorter stream)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when the resilience gate fails")
    parser.add_argument("--output", default=None, help="result JSON path")
    args = parser.parse_args(argv)

    params = SMOKE if args.smoke else FULL
    print(f"stream: poisson {params['rate']:g} q/s over "
          f"{params['duration']:g}s across {SHARDS} shards")

    failover_rows = failover_cells(params)
    hedge_rows = hedge_cells(params)
    for row in failover_rows + hedge_rows:
        retained = (
            "" if row["retained"] is None else f" retained={row['retained']:.0%}"
        )
        hedges = (
            f" hedges={row['hedges']}({row['hedge_wins']} won)"
            if row["hedges"] else ""
        )
        p99 = "n/a" if row["p99"] is None else f"{row['p99']:.1f}s"
        print(f"  {row['scenario']:26s} done={row['completed']:3d}"
              f"/{row['submitted']:3d} failed={row['failed']:2d} "
              f"goodput={row['goodput']:.3f} p99={p99}"
              f"{retained}{hedges} retries={row['retries']}")
    shrink_row = shrink_cell()
    print(f"  shrinker: {shrink_row['original_events']} events -> "
          f"{shrink_row['shrunk_events']} (minimal repro)")

    failures, ratios = check(failover_rows, hedge_rows, shrink_row)
    verdict = "PASS" if not failures else "FAIL"
    print(f"resilience gate: retention "
          f"{ratios['failover_retention']:.0%}, hedge p99 "
          f"{ratios['hedge_p99_ratio']:.0%}, duplicate work "
          f"{ratios['hedge_duplicate_work']:+.1%} -> {verdict}")
    for failure in failures:
        print(f"  {failure}", file=sys.stderr)

    out = pathlib.Path(
        args.output
        or pathlib.Path(__file__).resolve().parent
        / "results" / "BENCH_resilience.json"
    )
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps({
        "mode": "smoke" if args.smoke else "full",
        "params": params,
        "shards": SHARDS,
        "machine_size": MACHINE_SIZE,
        "kill_shard": KILL_SHARD,
        "straggler": STRAGGLER,
        "stall_factor": STALL_FACTOR,
        "ratios": ratios,
        "thresholds": {
            "failover_retention": FAILOVER_RETENTION,
            "hedge_p99": HEDGE_P99,
            "hedge_duplicate": HEDGE_DUPLICATE,
        },
        "cells": failover_rows + hedge_rows,
        "shrink": shrink_row,
        "pass": not failures,
    }, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out}")

    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
