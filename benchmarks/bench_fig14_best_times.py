"""Figure 14 — best response times for all query trees.

Regenerates the paper's summary table: the minimal response time per
(shape, size) cell together with the strategy and processor count that
achieved it, side by side with the paper's printed values.  Also checks
the cross-figure claims of Section 4.4: bushy trees beat linear trees,
the wide bushy tree is best overall, and the paper's winner is always
at least competitive in our cells.
"""

from repro import api
from repro.bench import PAPER_FIGURE_14, all_sweeps, figure14_table


def test_figure14_best_times(benchmark, results_dir):
    sweeps = all_sweeps()
    table = figure14_table(sweeps)
    (results_dir / "fig14_best_times.txt").write_text(table + "\n")

    best = {key: sweep.best_cell() for key, sweep in sweeps.items()}

    # Bushy shapes beat linear shapes, per size (Section 4.4).
    for size in ("5K", "40K"):
        bushy_best = min(
            best[(shape, size)][0]
            for shape in ("left_bushy", "wide_bushy", "right_bushy")
        )
        linear_best = min(
            best[(shape, size)][0] for shape in ("left_linear", "right_linear")
        )
        assert bushy_best <= linear_best, (
            f"{size}: linear trees must not beat bushy trees "
            f"({linear_best:.2f} < {bushy_best:.2f})"
        )

    # The wide bushy tree gives the best minimal response time overall.
    for size in ("5K", "40K"):
        wide = best[("wide_bushy", size)][0]
        others = min(
            best[(shape, size)][0]
            for shape in best_shapes()
            if shape != "wide_bushy"
        )
        assert wide <= others * 1.02

    # In every cell, the paper's winning strategy is within 15% of our
    # best strategy (winners can swap only in near-ties).
    for key, (paper_seconds, paper_strategy, _procs) in PAPER_FIGURE_14.items():
        sweep = sweeps[key]
        our_best = sweep.best_cell()[0]
        paper_winner_here = sweep.series[paper_strategy].best()[0]
        assert paper_winner_here <= our_best * 1.15, (
            f"{key}: paper winner {paper_strategy} at {paper_winner_here:.2f}s "
            f"is not competitive with our best {our_best:.2f}s"
        )

    # Benchmark the overall-best configuration (wide bushy, 5K).
    seconds, strategy, processors = best[("wide_bushy", "5K")]
    result = benchmark(api.run, "wide_bushy", strategy, processors)
    assert result.response_time > 0


def best_shapes():
    return ("left_linear", "left_bushy", "wide_bushy", "right_bushy", "right_linear")
