"""Ablation A7 — partitioning skew (extension beyond the paper).

The paper's SP load-balancing argument holds "assuming non-skewed data
partitioning" (Section 3.5) and its generator deliberately produced
uncorrelated keys (Section 4.1).  This ablation quantifies what that
assumption is worth: response time of every strategy under Zipf(theta)
fragment shares, theta from 0 (the paper) to 1 (classic database skew).

The grid (4 strategies × 5 thetas) is one :class:`SweepSpec` on the
parallel runner, cached in ``.repro_cache/`` alongside the figure
sweeps.

Expected outcome: skew erodes SP's flagship advantage — perfect
idealized balance — at least as fast as it erodes the others', because
SP's makespan is the largest fragment of *every* join, while FP's
private processor sets contain the damage per join.
"""


from repro import api
from repro.runner import SweepSpec, run_sweep
from repro.sim.skew import skew_factor, zipf_shares

SHAPE = "wide_bushy"
CARDINALITY = 5000
PROCESSORS = 40
THETAS = (0.0, 0.25, 0.5, 0.75, 1.0)
STRATEGIES = ("SP", "SE", "RD", "FP")


def test_ablation_skew(benchmark, results_dir):
    spec = SweepSpec(
        shapes=(SHAPE,),
        strategies=STRATEGIES,
        processors=(PROCESSORS,),
        cardinalities=(CARDINALITY,),
        skew_thetas=THETAS,
    )
    run = run_sweep(spec)
    response = {
        (row["strategy"], row["skew_theta"]): row["metrics"]["response_time"]
        for row in run.rows()
    }
    table = {
        strategy: [response[(strategy, theta)] for theta in THETAS]
        for strategy in STRATEGIES
    }
    lines = ["theta   skew-factor  " + "  ".join(f"{s:>7}" for s in table)]
    for i, theta in enumerate(THETAS):
        factor = skew_factor(zipf_shares(PROCESSORS, theta))
        cells = "  ".join(f"{table[s][i]:7.2f}" for s in table)
        lines.append(f"{theta:5.2f}  {factor:11.2f}  {cells}")
    (results_dir / "ablation_skew.txt").write_text("\n".join(lines) + "\n")

    # Skew hurts everyone, monotonically.
    for strategy, series in table.items():
        assert series[-1] > series[0], f"{strategy} should slow down under skew"
        assert all(b >= a * 0.98 for a, b in zip(series, series[1:]))

    # SP's relative degradation is at least comparable to FP's: its
    # perfect-balance advantage is an artifact of uniformity.
    sp_ratio = table["SP"][-1] / table["SP"][0]
    fp_ratio = table["FP"][-1] / table["FP"][0]
    assert sp_ratio > 1.3
    assert sp_ratio > fp_ratio * 0.8

    benchmark(api.run, SHAPE, "FP", PROCESSORS, skew_theta=0.5)
