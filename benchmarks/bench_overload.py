"""Overload behaviour — goodput with deadlines and load shedding.

Beyond the paper: what happens to the shared machine past its
saturation knee once queries carry deadlines.  Without shedding, the
engine admits arrivals that have already burnt most of their deadline
budget queueing; they are aborted mid-run at the deadline, so machine
time is spent without producing results and goodput collapses.  The
``deadline_aware`` admission policy predicts each arrival's completion
from the analytic cost model and sheds the doomed ones up front,
holding goodput near the knee value.

The headline assertion (the PR's acceptance criterion): for FP on
``wide_bushy`` at twice the knee load, ``deadline_aware`` sustains at
least 80% of the knee goodput while the no-shedding baseline degrades
well below it, and the deadline-miss rate among *completed* queries is
exactly zero.  The full strategy × load × shed grid is written to
``results/overload_goodput.txt``.

    PYTHONPATH=src python -m pytest benchmarks/bench_overload.py
"""

from __future__ import annotations

from repro import api
from repro.sim import MachineConfig
from repro.workload import overload_sweep

from conftest import write_result

#: Coarse batches keep every workload cell in the tens of milliseconds.
FAST = MachineConfig(
    tuple_unit=0.001, process_startup=0.008, handshake=0.012,
    network_latency=0.05, batches=8,
)
MACHINE_SIZE = 40
STRATEGIES = ("SP", "SE", "RD", "FP")
DURATION = 240.0
CARDINALITY = 1_000
SEED = 7


def service_time(strategy: str) -> float:
    """Single-query response time on the whole (exclusive) machine —
    the capacity scale of the knee."""
    return api.run(
        "wide_bushy", strategy, MACHINE_SIZE, "sim",
        cardinality=CARDINALITY, config=FAST,
    ).response_time


def run_cell(strategy: str, load: float, deadline: float, shed):
    return api.run_workload(
        "wide_bushy",
        arrivals="poisson",
        rate=load,
        duration=DURATION,
        seed=SEED,
        machine_size=MACHINE_SIZE,
        strategy=strategy,
        cardinality=CARDINALITY,
        config=FAST,
        deadline=deadline,
        shed=shed,
    )


def overload_table(points) -> str:
    header = (
        f"{'strategy':>8}  {'load':>6}  {'shed':>14}  {'offered':>7}  "
        f"{'done':>5}  {'shed#':>5}  {'expired':>7}  {'aborted':>7}  "
        f"{'goodput':>8}  {'miss':>5}  {'util':>5}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        miss = "n/a" if p.miss_rate is None else f"{p.miss_rate:.0%}"
        lines.append(
            f"{p.strategy:>8}  {p.load:6.3f}  {str(p.shed or 'none'):>14}  "
            f"{p.offered:7d}  {p.completed:5d}  {p.shed_count:5d}  "
            f"{p.expired:7d}  {p.deadline_aborted:7d}  "
            f"{p.goodput:8.4f}  {miss:>5}  {p.utilization:5.0%}"
        )
    return "\n".join(lines)


def test_deadline_aware_shedding_holds_goodput_past_the_knee(
    benchmark, results_dir
):
    """FP on wide_bushy: at 2× the knee load, deadline-aware shedding
    sustains ≥80% of the knee goodput; the admit-everything baseline
    collapses; no completed query misses its deadline."""
    service = service_time("FP")
    knee_load = 1.0 / service          # the exclusive machine's capacity
    deadline = 3.0 * service

    knee = run_cell("FP", knee_load, deadline, "deadline_aware")
    knee_goodput = knee.goodput()
    assert knee_goodput > 0

    baseline = run_cell("FP", 2.0 * knee_load, deadline, None)
    aware = run_cell("FP", 2.0 * knee_load, deadline, "deadline_aware")

    # The acceptance criterion of the lifecycle subsystem.
    assert aware.goodput() >= 0.8 * knee_goodput, (
        f"deadline_aware goodput {aware.goodput():.4f} fell below 80% of "
        f"the knee goodput {knee_goodput:.4f}"
    )
    assert baseline.goodput() < 0.8 * knee_goodput, (
        f"no-shedding baseline held {baseline.goodput():.4f} goodput at 2x "
        f"overload — the collapse this bench exists to show is gone"
    )
    assert baseline.goodput() < aware.goodput()
    # Enforced deadlines mean nothing completed can have missed one.
    assert aware.deadline_miss_rate() in (None, 0.0)
    assert baseline.deadline_miss_rate() in (None, 0.0)
    # The baseline degrades by burning time on doomed admissions.
    assert baseline.deadline_aborted_count() > 0

    # The full grid for the report and the results directory.
    loads = (0.5 * knee_load, knee_load, 2.0 * knee_load)
    points = overload_sweep(
        strategies=STRATEGIES,
        loads=loads,
        sheds=(None, "deadline_aware"),
        deadline=deadline,
        duration=DURATION,
        machine_size=MACHINE_SIZE,
        seed=SEED,
        queue_limit=None,
        cardinality=CARDINALITY,
        config=FAST,
    )
    write_result(results_dir, "overload_goodput.txt", overload_table(points))

    # Time one representative overloaded, shedding run.
    result = benchmark(
        lambda: run_cell("FP", 2.0 * knee_load, deadline, "deadline_aware")
    )
    assert len(result.records) > 0


def test_overload_runs_are_deterministic():
    """Same seed, same cell — bit-for-bit identical rows."""
    service = service_time("RD")
    deadline = 3.0 * service
    first = run_cell("RD", 2.0 / service, deadline, "deadline_aware")
    second = run_cell("RD", 2.0 / service, deadline, "deadline_aware")
    assert [a.row() for a in first.records] == [
        b.row() for b in second.records
    ]
    assert first.makespan == second.makespan
