"""Ablation A1 — startup overhead (Section 3.5, "startup").

The paper: "The SP strategy uses many operation processes: the number
of operation processes used is equal to the product of the number of
operations in the join tree and the number of processors used.  The FP
strategy only uses one operation process per processor.  So, the
startup overhead is large for SP and small for FP, and SE and RD are
in the middle."

This bench sweeps the per-process startup cost and measures each
strategy's sensitivity (seconds of response per second of startup
cost); the ordering SP > {SE, RD} > FP must hold.
"""

import pytest

from repro import api
from repro.core import Catalog, make_shape, paper_relation_names
from repro.sim import MachineConfig

NAMES = paper_relation_names(10)
CATALOG = Catalog.regular(NAMES, 5000)
TREE = make_shape("wide_bushy", NAMES)
PROCESSORS = 60


def startup_sensitivity(strategy: str) -> float:
    """Marginal response time per second of per-process startup cost,
    measured in the startup-dominated regime (0.3 s per process, where
    serial initialization is the critical path — the paper's 80-
    processor SP situation, exaggerated so the asymptote is visible)."""
    base = MachineConfig.paper().scaled(process_startup=0.0)
    heavy = base.scaled(process_startup=0.3)
    low = api.run(TREE, strategy, PROCESSORS, catalog=CATALOG, config=base)
    high = api.run(TREE, strategy, PROCESSORS, catalog=CATALOG, config=heavy)
    return (high.response_time - low.response_time) / 0.3


def test_ablation_startup(benchmark, results_dir):
    sensitivity = {name: startup_sensitivity(name) for name in ("SP", "SE", "RD", "FP")}
    lines = ["strategy  d(response)/d(startup)  [#processes]"]
    from repro.core import get_strategy

    for name, value in sensitivity.items():
        processes = get_strategy(name).schedule(TREE, CATALOG, PROCESSORS)
        lines.append(
            f"{name:>8}  {value:20.1f}  [{processes.operation_processes()}]"
        )
    (results_dir / "ablation_startup.txt").write_text("\n".join(lines) + "\n")

    assert sensitivity["SP"] > sensitivity["SE"] > sensitivity["FP"]
    assert sensitivity["SP"] > sensitivity["RD"] > sensitivity["FP"]
    # SP starts #joins × #processors processes; when startup dominates,
    # its sensitivity approaches that count (the scheduler serializes
    # initialization).
    assert sensitivity["SP"] == pytest.approx(9 * PROCESSORS, rel=0.25)
    assert sensitivity["FP"] <= 2 * PROCESSORS

    benchmark(startup_sensitivity, "FP")
