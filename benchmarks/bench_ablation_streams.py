"""Ablation A2 — coordination overhead of n×m tuple streams (§3.5, §4.3).

The paper: a redistribution from n producer to m consumer processes
opens n×m streams, each needing a sender-receiver handshake; at 80
processors one SP refragmentation opens 6400 streams.  "Because SP
uses the most processors per operation, SP suffers most from
coordination overhead.  FP suffers least."

This bench (a) verifies the stream-count arithmetic of the plans and
(b) sweeps the per-stream handshake cost, checking the response-time
sensitivity ordering SP > {SE, RD} > FP.
"""


from repro import api
from repro.core import Catalog, get_strategy, make_shape, paper_relation_names
from repro.sim import MachineConfig

NAMES = paper_relation_names(10)
CATALOG = Catalog.regular(NAMES, 5000)
TREE = make_shape("wide_bushy", NAMES)
PROCESSORS = 80


def handshake_sensitivity(strategy: str) -> float:
    base = MachineConfig.paper().scaled(handshake=0.0)
    heavy = base.scaled(handshake=0.01)
    low = api.run(TREE, strategy, PROCESSORS, catalog=CATALOG, config=base)
    high = api.run(TREE, strategy, PROCESSORS, catalog=CATALOG, config=heavy)
    return (high.response_time - low.response_time) / 0.01


def test_stream_counts(benchmark, results_dir):
    lines = ["strategy  total network streams"]
    counts = {}
    for name in ("SP", "SE", "RD", "FP"):
        schedule = get_strategy(name).schedule(TREE, CATALOG, PROCESSORS)
        counts[name] = schedule.stream_count()
        lines.append(f"{name:>8}  {counts[name]:>12}")
    (results_dir / "ablation_streams_counts.txt").write_text("\n".join(lines) + "\n")

    # SP refragments 8 intermediate operands over 80×80 streams each.
    benchmark(
        lambda: get_strategy("SP").schedule(TREE, CATALOG, PROCESSORS).stream_count()
    )
    assert counts["SP"] == 8 * 6400
    assert counts["FP"] < counts["SP"] / 20
    assert counts["FP"] < counts["SE"] < counts["SP"]
    assert counts["FP"] < counts["RD"] < counts["SP"]


def test_ablation_handshake_cost(benchmark, results_dir):
    sensitivity = {
        name: handshake_sensitivity(name) for name in ("SP", "SE", "RD", "FP")
    }
    lines = ["strategy  d(response)/d(handshake)"]
    for name, value in sensitivity.items():
        lines.append(f"{name:>8}  {value:20.1f}")
    (results_dir / "ablation_streams_cost.txt").write_text("\n".join(lines) + "\n")

    assert sensitivity["SP"] > sensitivity["SE"] > sensitivity["FP"]
    assert sensitivity["SP"] > sensitivity["RD"] > sensitivity["FP"]

    benchmark(handshake_sensitivity, "FP")
