"""The BENCH perf trajectory: simulator hot-path throughput over PRs.

Three numbers institutionalize the performance work so later PRs can
only move them deliberately:

* **simulated events/sec** — the four paper strategies on the
  wide_bushy shape (40 processors, paper machine), best-of-N with GC
  off; the aggregate is the headline.
* **queries/sec at the saturation knee** — a closed-loop workload on
  one shared 40-processor machine, stepping the client count until
  throughput stops improving; reported at the knee.
* **sweep wall-clock** — the parallel runner over a small wide_bushy
  grid, end to end (planning + simulation + collection).

Raw events/sec is machine-dependent, so every run also measures a
pure-Python **calibration** proxy and the regression gate compares
*normalized* throughput (events/sec relative to calibration ops/sec).
``PRE_PR_BASELINE`` pins the seed simulator's numbers (measured on the
machine that started the trajectory); ``EXPECTED_SPEEDUP`` pins what
the current code achieves.  ``--check`` fails when the normalized
aggregate falls more than 20% below expectation.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py            # full
    PYTHONPATH=src python benchmarks/bench_perf.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_perf.py --smoke --check

Writes ``BENCH_perf.json`` (override with ``--output``).
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time

from repro.core import Catalog, get_strategy, make_shape, paper_relation_names
from repro.sim import MachineConfig
from repro.sim.run import simulate

STRATEGIES = ("SP", "SE", "RD", "FP")

#: The seed (pre-fast-path) simulator measured on the trajectory's
#: reference machine: wide_bushy, 40 processors, 5000 tuples, paper
#: machine config, best of 3 with GC disabled.
PRE_PR_BASELINE = {
    "calibration_ops_per_sec": 12_566_475,
    "strategies": {
        "SP": 349_991,
        "SE": 355_138,
        "RD": 313_907,
        "FP": 274_458,
    },
    "aggregate_events_per_sec": 316_847,
}

#: Normalized aggregate speedup vs PRE_PR_BASELINE the current code is
#: expected to deliver (the analytic fast path of repro.sim.turbo).
#: The --check gate trips below 0.8x of this.
EXPECTED_SPEEDUP = {"full": 10.0, "smoke": 8.0}

#: >20% normalized regression fails the gate.
REGRESSION_TOLERANCE = 0.20


def calibrate(loops: int = 3) -> float:
    """Machine-speed proxy: fixed pure-Python arithmetic + dict work,
    reported as ops/sec (best of ``loops``)."""

    def work():
        acc = 0.0
        d = {}
        for i in range(200_000):
            acc += i * 1e-6
            if i & 1023 == 0:
                d[i] = acc
        return acc, d

    best = float("inf")
    for _ in range(loops):
        t0 = time.perf_counter()
        work()
        best = min(best, time.perf_counter() - t0)
    return 200_000 / best


def measure_events(cardinality: int, repeats: int) -> dict:
    """Per-strategy and aggregate simulated events/sec on wide_bushy."""
    names = paper_relation_names(10)
    tree = make_shape("wide_bushy", names)
    catalog = Catalog.regular(names, cardinality)
    config = MachineConfig.paper()
    strategies = {}
    total_events = 0
    total_seconds = 0.0
    for name in STRATEGIES:
        schedule = get_strategy(name).schedule(tree, catalog, 40)
        best = float("inf")
        events = 0
        for _ in range(repeats):
            gc.disable()
            t0 = time.perf_counter()
            result = simulate(schedule, catalog, config)
            elapsed = time.perf_counter() - t0
            gc.enable()
            best = min(best, elapsed)
            events = result.events
        strategies[name] = {
            "events": events,
            "seconds": round(best, 6),
            "events_per_sec": round(events / best),
        }
        total_events += events
        total_seconds += best
    return {
        "cardinality": cardinality,
        "strategies": strategies,
        "aggregate": {
            "events": total_events,
            "seconds": round(total_seconds, 6),
            "events_per_sec": round(total_events / total_seconds),
        },
    }


def measure_knee(cardinality: int, duration: float) -> dict:
    """Closed-loop queries/sec stepping clients until the knee.

    The knee is the first client count whose throughput gain over the
    previous step drops under 5% (or the last step tried).
    """
    from repro.api import run_workload

    steps = []
    previous = 0.0
    knee_clients = 1
    knee_qps = 0.0
    for clients in (1, 2, 4, 8, 16, 32):
        result = run_workload(
            "wide_bushy",
            arrivals="closed",
            clients=clients,
            duration=duration,
            cardinality=cardinality,
            strategy="FP",
            machine_size=40,
            policy="guideline",
        )
        qps = result.throughput()
        steps.append({"clients": clients, "queries_per_sec": round(qps, 4)})
        if qps > knee_qps:
            knee_clients, knee_qps = clients, qps
        if previous > 0.0 and qps < previous * 1.05:
            break
        previous = qps
    return {
        "steps": steps,
        "knee_clients": knee_clients,
        "queries_per_sec_at_knee": round(knee_qps, 4),
    }


def measure_sweep(cardinality: int, processors: tuple) -> dict:
    """Wall-clock of the parallel runner on a wide_bushy grid."""
    from repro.runner import SweepSpec, run_sweep

    spec = SweepSpec(
        shapes=("wide_bushy",),
        strategies=STRATEGIES,
        processors=processors,
        cardinalities=(cardinality,),
        skew_thetas=(0.0,),
    )
    t0 = time.perf_counter()
    run = run_sweep(spec, cache=False, progress=None)
    elapsed = time.perf_counter() - t0
    points = len(run.outcomes)
    return {
        "points": points,
        "wall_clock_seconds": round(elapsed, 4),
        "points_per_sec": round(points / elapsed, 2),
    }


def normalized_speedup(report: dict) -> float:
    """Aggregate events/sec vs the seed, corrected for machine speed."""
    scale = (
        report["calibration_ops_per_sec"]
        / PRE_PR_BASELINE["calibration_ops_per_sec"]
    )
    raw = (
        report["events"]["aggregate"]["events_per_sec"]
        / PRE_PR_BASELINE["aggregate_events_per_sec"]
    )
    return raw / scale


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: smaller cardinality, fewer repeats/steps",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=f"exit 1 on a >{REGRESSION_TOLERANCE:.0%} normalized "
             f"regression vs the expected speedup",
    )
    parser.add_argument(
        "--output", default="BENCH_perf.json",
        help="report path (default: BENCH_perf.json)",
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    cardinality = 2_000 if args.smoke else 5_000
    repeats = 2 if args.smoke else 3
    knee_duration = 40.0 if args.smoke else 120.0
    sweep_processors = (20, 40) if args.smoke else (10, 20, 40, 80)

    gc.collect()
    report = {
        "schema": 1,
        "mode": mode,
        "baseline": PRE_PR_BASELINE,
        "calibration_ops_per_sec": round(calibrate()),
        "events": measure_events(cardinality, repeats),
        "workload": measure_knee(
            cardinality=500 if args.smoke else 1_000,
            duration=knee_duration,
        ),
        "sweep": measure_sweep(cardinality, sweep_processors),
    }
    speedup = normalized_speedup(report)
    report["speedup_vs_pre_pr"] = round(speedup, 2)
    expected = EXPECTED_SPEEDUP[mode]
    floor = expected * (1.0 - REGRESSION_TOLERANCE)
    report["gate"] = {
        "expected_speedup": expected,
        "floor": round(floor, 2),
        "passed": speedup >= floor,
    }

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))

    if args.check and not report["gate"]["passed"]:
        print(
            f"PERF REGRESSION: normalized speedup {speedup:.2f}x is below "
            f"the {floor:.2f}x floor ({expected}x expected, "
            f"{REGRESSION_TOLERANCE:.0%} tolerance)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
