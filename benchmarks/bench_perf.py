"""The BENCH perf trajectory: simulator hot-path throughput over PRs.

Four numbers institutionalize the performance work so later PRs can
only move them deliberately:

* **simulated events/sec** — the four paper strategies on the
  wide_bushy shape (40 processors, paper machine), best-of-N with GC
  off; the aggregate is the headline.  Since turbo v2, best-of-N
  deliberately includes *warm* runs: repeat specs replay a cached
  drain structure, which is exactly the hot path workloads exercise.
* **queries/sec at the saturation knee** — a closed-loop workload on
  one shared 40-processor machine, stepping the client count until
  throughput stops improving; reported at the knee.
* **workload replay** — a repeat-heavy single-occupancy closed loop
  run with the hosted fast path on and off; the on/off queries-per-
  second ratio is the turbo-v2 workload headline (gated ≥ a floor).
* **sweep wall-clock** — the parallel runner over a small wide_bushy
  grid, end to end (planning + simulation + collection).

Raw events/sec is machine-dependent, so every run also measures a
pure-Python **calibration** proxy and the regression gate compares
*normalized* throughput (events/sec relative to calibration ops/sec).
``PRE_PR_BASELINE`` pins the seed simulator's numbers (measured on the
machine that started the trajectory); ``EXPECTED_SPEEDUP`` pins what
the current code achieves, both in aggregate and — so an FP-only
regression cannot hide behind SP/SE gains — per strategy.  ``--check``
fails when the normalized aggregate or any per-strategy number falls
more than 20% below expectation, or the workload replay ratio drops
under its floor.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py            # full
    PYTHONPATH=src python benchmarks/bench_perf.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_perf.py --smoke --check

Writes ``BENCH_perf.json`` (override with ``--output``).
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time

from repro.core import Catalog, get_strategy, make_shape, paper_relation_names
from repro.sim import MachineConfig
from repro.sim.run import simulate

STRATEGIES = ("SP", "SE", "RD", "FP")

#: The seed (pre-fast-path) simulator measured on the trajectory's
#: reference machine: wide_bushy, 40 processors, 5000 tuples, paper
#: machine config, best of 3 with GC disabled.
PRE_PR_BASELINE = {
    "calibration_ops_per_sec": 12_566_475,
    "strategies": {
        "SP": 349_991,
        "SE": 355_138,
        "RD": 313_907,
        "FP": 274_458,
    },
    "aggregate_events_per_sec": 316_847,
}

#: Normalized aggregate speedup vs PRE_PR_BASELINE the current code is
#: expected to deliver (turbo v2: the analytic fast path plus the
#: drain-structure profile cache).  The --check gate trips below 0.8x
#: of this.
EXPECTED_SPEEDUP = {"full": 38.0, "smoke": 30.0}

#: Per-strategy normalized speedups vs the matching PRE_PR_BASELINE
#: strategy number.  Deliberately set below measured (warm sub-ms
#: replays time noisily), but far above what any strategy achieves
#: without its profile cache — losing the cache on one strategy trips
#: its floor even when the aggregate still passes.
EXPECTED_STRATEGY_SPEEDUP = {
    "full": {"SP": 24.0, "SE": 18.0, "RD": 28.0, "FP": 85.0},
    "smoke": {"SP": 22.0, "SE": 12.0, "RD": 26.0, "FP": 95.0},
}

#: Minimum fast-on vs fast-off queries-per-second ratio of the
#: repeat-heavy workload replay trace (the ISSUE-8 acceptance bar is
#: 3x on the full trace; smoke traces are shorter and noisier).
EXPECTED_REPLAY_SPEEDUP = {"full": 3.0, "smoke": 2.0}

#: >20% normalized regression fails the gate.
REGRESSION_TOLERANCE = 0.20


def calibrate(loops: int = 3) -> float:
    """Machine-speed proxy: fixed pure-Python arithmetic + dict work,
    reported as ops/sec (best of ``loops``)."""

    def work():
        acc = 0.0
        d = {}
        for i in range(200_000):
            acc += i * 1e-6
            if i & 1023 == 0:
                d[i] = acc
        return acc, d

    best = float("inf")
    for _ in range(loops):
        t0 = time.perf_counter()
        work()
        best = min(best, time.perf_counter() - t0)
    return 200_000 / best


def measure_events(cardinality: int, repeats: int) -> dict:
    """Per-strategy and aggregate simulated events/sec on wide_bushy."""
    names = paper_relation_names(10)
    tree = make_shape("wide_bushy", names)
    catalog = Catalog.regular(names, cardinality)
    config = MachineConfig.paper()
    strategies = {}
    total_events = 0
    total_seconds = 0.0
    for name in STRATEGIES:
        schedule = get_strategy(name).schedule(tree, catalog, 40)
        best = float("inf")
        events = 0
        for _ in range(repeats):
            gc.disable()
            t0 = time.perf_counter()
            result = simulate(schedule, catalog, config)
            elapsed = time.perf_counter() - t0
            gc.enable()
            best = min(best, elapsed)
            events = result.events
        strategies[name] = {
            "events": events,
            "seconds": round(best, 6),
            "events_per_sec": round(events / best),
        }
        total_events += events
        total_seconds += best
    return {
        "cardinality": cardinality,
        "strategies": strategies,
        "aggregate": {
            "events": total_events,
            "seconds": round(total_seconds, 6),
            "events_per_sec": round(total_events / total_seconds),
        },
    }


def measure_knee(cardinality: int, duration: float) -> dict:
    """Closed-loop queries/sec stepping clients until the knee.

    The knee is the first client count whose throughput gain over the
    previous step drops under 5% (or the last step tried).
    """
    from repro.api import run_workload

    steps = []
    previous = 0.0
    knee_clients = 1
    knee_qps = 0.0
    for clients in (1, 2, 4, 8, 16, 32):
        result = run_workload(
            "wide_bushy",
            arrivals="closed",
            clients=clients,
            duration=duration,
            cardinality=cardinality,
            strategy="FP",
            machine_size=40,
            policy="guideline",
        )
        qps = result.throughput()
        steps.append({"clients": clients, "queries_per_sec": round(qps, 4)})
        if qps > knee_qps:
            knee_clients, knee_qps = clients, qps
        if previous > 0.0 and qps < previous * 1.05:
            break
        previous = qps
    return {
        "steps": steps,
        "knee_clients": knee_clients,
        "queries_per_sec_at_knee": round(knee_qps, 4),
    }


def measure_workload_replay(cardinality: int, queries: int) -> dict:
    """Repeat-heavy single-occupancy closed loop, fast path on vs off.

    One client resubmitting the same FP wide_bushy spec is the best
    case the hosted fast path was built for: every epoch is
    single-occupancy and every spec repeats, so turbo v2 replays the
    whole service stack analytically.  The on/off ratio is the
    workload fast-path headline.
    """
    from repro.api import run_workload
    from repro.sim import turbo

    def once(fast_path: bool):
        turbo.clear_cache()
        gc.disable()
        t0 = time.perf_counter()
        result = run_workload(
            "wide_bushy",
            arrivals="closed",
            clients=1,
            think_time=0.5,
            queries_per_client=queries,
            duration=1e9,
            seed=3,
            machine_size=40,
            policy="exclusive",
            strategy="FP",
            cardinality=cardinality,
            fast_path=fast_path,
        )
        elapsed = time.perf_counter() - t0
        gc.enable()
        return result, elapsed

    fast_result, fast_seconds = once(True)
    classic_result, classic_seconds = once(False)
    completed = len(fast_result.completed())
    assert completed == len(classic_result.completed())
    return {
        "queries": completed,
        "fast_path_queries": fast_result.fast_path_queries,
        "fast_seconds": round(fast_seconds, 6),
        "classic_seconds": round(classic_seconds, 6),
        "fast_queries_per_sec": round(completed / fast_seconds, 2),
        "classic_queries_per_sec": round(completed / classic_seconds, 2),
        "replay_speedup": round(classic_seconds / fast_seconds, 2),
    }


def measure_sweep(cardinality: int, processors: tuple) -> dict:
    """Wall-clock of the parallel runner on a wide_bushy grid."""
    from repro.runner import SweepSpec, run_sweep

    spec = SweepSpec(
        shapes=("wide_bushy",),
        strategies=STRATEGIES,
        processors=processors,
        cardinalities=(cardinality,),
        skew_thetas=(0.0,),
    )
    t0 = time.perf_counter()
    run = run_sweep(spec, cache=False, progress=None)
    elapsed = time.perf_counter() - t0
    points = len(run.outcomes)
    return {
        "points": points,
        "wall_clock_seconds": round(elapsed, 4),
        "points_per_sec": round(points / elapsed, 2),
    }


def normalized_speedup(report: dict) -> float:
    """Aggregate events/sec vs the seed, corrected for machine speed."""
    scale = (
        report["calibration_ops_per_sec"]
        / PRE_PR_BASELINE["calibration_ops_per_sec"]
    )
    raw = (
        report["events"]["aggregate"]["events_per_sec"]
        / PRE_PR_BASELINE["aggregate_events_per_sec"]
    )
    return raw / scale


def strategy_speedups(report: dict) -> dict:
    """Per-strategy normalized speedups vs the seed's strategy numbers."""
    scale = (
        report["calibration_ops_per_sec"]
        / PRE_PR_BASELINE["calibration_ops_per_sec"]
    )
    return {
        name: (
            report["events"]["strategies"][name]["events_per_sec"]
            / PRE_PR_BASELINE["strategies"][name]
            / scale
        )
        for name in STRATEGIES
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: smaller cardinality, fewer repeats/steps",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=f"exit 1 on a >{REGRESSION_TOLERANCE:.0%} normalized "
             f"regression vs the expected speedup",
    )
    parser.add_argument(
        "--output", default="BENCH_perf.json",
        help="report path (default: BENCH_perf.json)",
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    cardinality = 2_000 if args.smoke else 5_000
    repeats = 2 if args.smoke else 3
    knee_duration = 40.0 if args.smoke else 120.0
    sweep_processors = (20, 40) if args.smoke else (10, 20, 40, 80)

    gc.collect()
    report = {
        "schema": 2,
        "mode": mode,
        "baseline": PRE_PR_BASELINE,
        "calibration_ops_per_sec": round(calibrate()),
        "events": measure_events(cardinality, repeats),
        "workload": measure_knee(
            cardinality=500 if args.smoke else 1_000,
            duration=knee_duration,
        ),
        "workload_replay": measure_workload_replay(
            cardinality=1_000 if args.smoke else 2_000,
            queries=8 if args.smoke else 24,
        ),
        "sweep": measure_sweep(cardinality, sweep_processors),
    }
    speedup = normalized_speedup(report)
    per_strategy = strategy_speedups(report)
    replay = report["workload_replay"]["replay_speedup"]
    report["speedup_vs_pre_pr"] = round(speedup, 2)
    report["strategy_speedups_vs_pre_pr"] = {
        name: round(value, 2) for name, value in per_strategy.items()
    }
    expected = EXPECTED_SPEEDUP[mode]
    floor = expected * (1.0 - REGRESSION_TOLERANCE)
    failures = []
    if speedup < floor:
        failures.append(
            f"aggregate speedup {speedup:.2f}x below the {floor:.2f}x "
            f"floor ({expected}x expected)"
        )
    strategy_floors = {}
    for name, expected_strategy in EXPECTED_STRATEGY_SPEEDUP[mode].items():
        strategy_floor = expected_strategy * (1.0 - REGRESSION_TOLERANCE)
        strategy_floors[name] = round(strategy_floor, 2)
        if per_strategy[name] < strategy_floor:
            failures.append(
                f"{name} speedup {per_strategy[name]:.2f}x below its "
                f"{strategy_floor:.2f}x floor "
                f"({expected_strategy}x expected)"
            )
    replay_floor = EXPECTED_REPLAY_SPEEDUP[mode]
    if replay < replay_floor:
        failures.append(
            f"workload replay speedup {replay:.2f}x below the "
            f"{replay_floor:.2f}x floor"
        )
    report["gate"] = {
        "expected_speedup": expected,
        "floor": round(floor, 2),
        "strategy_floors": strategy_floors,
        "replay_floor": replay_floor,
        "failures": failures,
        "passed": not failures,
    }

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))

    if args.check and failures:
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
