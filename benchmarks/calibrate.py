"""Calibration of the simulated machine against Figure 14.

The DES reproduces the paper's four overhead mechanisms structurally;
only four scalar constants tie them to PRISMA/DB's 68020 hardware:
``tuple_unit``, ``process_startup``, ``handshake`` and
``network_latency``.  This script searches a coarse grid around the
frozen defaults, scoring each candidate by

* the mean absolute log-error against the ten Figure 14 anchor times,
* plus a penalty for every Section 4.4 qualitative claim that fails

and prints the best few candidates.  The winner (as of the frozen
repository state) is baked into ``MachineConfig.paper()`` — rerun this
after changing the simulation model:

    python benchmarks/calibrate.py [--quick]

``--quick`` restricts the sweep to 3 processor counts per experiment.
"""

from __future__ import annotations

import itertools
import math
import sys

from repro.bench import PAPER_FIGURE_14, evaluate_claims
from repro.bench.workloads import Experiment, run_sweep
from repro.core import SHAPE_NAMES
from repro.sim import MachineConfig

GRID = {
    "tuple_unit": (0.0008, 0.001, 0.0012),
    "process_startup": (0.006, 0.008, 0.010),
    "handshake": (0.008, 0.012, 0.016),
    "network_latency": (0.2, 0.4, 0.6),
}


def experiments(quick: bool):
    for shape in SHAPE_NAMES:
        if quick:
            yield Experiment(shape, 5_000, (20, 40, 80))
            yield Experiment(shape, 40_000, (30, 50, 80))
        else:
            yield Experiment(shape, 5_000, (20, 30, 40, 50, 60, 70, 80))
            yield Experiment(shape, 40_000, (30, 40, 50, 60, 70, 80))


def score(config: MachineConfig, quick: bool):
    log_errors = []
    claim_failures = 0
    for experiment in experiments(quick):
        sweep = run_sweep(experiment, config=config)
        key = (experiment.shape, experiment.size_label)
        paper_seconds = PAPER_FIGURE_14[key][0]
        ours = sweep.best_cell()[0]
        log_errors.append(abs(math.log(ours / paper_seconds)))
        claim_failures += sum(
            1 for outcome in evaluate_claims(sweep) if not outcome.holds
        )
    return sum(log_errors) / len(log_errors), claim_failures


def main() -> None:
    quick = "--quick" in sys.argv
    ranked = []
    combos = list(itertools.product(*GRID.values()))
    print(f"searching {len(combos)} configurations "
          f"({'quick' if quick else 'full'} sweeps)...")
    for i, values in enumerate(combos):
        config = MachineConfig(**dict(zip(GRID, values)), batches=32)
        error, failures = score(config, quick)
        ranked.append((failures, error, config))
        print(
            f"[{i + 1:3d}/{len(combos)}] "
            f"u={config.tuple_unit} st={config.process_startup} "
            f"hs={config.handshake} lat={config.network_latency} "
            f"-> claim failures={failures}, mean |log err|={error:.3f}"
        )
    ranked.sort(key=lambda item: (item[0], item[1]))
    print("\nbest configurations (fewest claim failures, then log error):")
    for failures, error, config in ranked[:5]:
        print(
            f"  failures={failures} err={error:.3f}  "
            f"tuple_unit={config.tuple_unit} "
            f"process_startup={config.process_startup} "
            f"handshake={config.handshake} "
            f"network_latency={config.network_latency}"
        )
    print("\nfrozen default:", MachineConfig.paper())


if __name__ == "__main__":
    main()
