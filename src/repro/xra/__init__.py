"""XRA-like parallel plan language (Section 2.2, [GWF91])."""

from .generator import generate_plan, generate_plan_text
from .ops import JoinStatement, Operand
from .plan import XRAPlan
from .text import format_plan, format_processors, parse_plan, parse_processors

#: Alias matching the top-level API name.
compile_schedule = XRAPlan.from_schedule

__all__ = [
    "JoinStatement",
    "Operand",
    "XRAPlan",
    "compile_schedule",
    "format_plan",
    "format_processors",
    "generate_plan",
    "generate_plan_text",
    "parse_plan",
    "parse_processors",
]
