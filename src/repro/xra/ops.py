"""XRA statements.

PRISMA/DB represents queries internally in an eXtended Relational
Algebra (XRA, [GWF91]) in which every operation carries an explicit
degree of parallelism and processor allocation, and results can be
split over arbitrary destinations (Section 2.2).  This module models
the fragment of XRA the paper's experiments exercise: parallel
hash-join statements whose operands are base-relation scans, stored
(materialized) intermediate results, or pipelined tuple streams.

A statement's textual form (see :mod:`repro.xra.text`)::

    %2 := join[simple,build=left](store(%0), pipe(%1)) on 10-19 after %0
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Operand kinds and their schedule input modes.
OPERAND_KINDS = ("scan", "store", "pipe")

_KIND_TO_MODE = {"scan": "base", "store": "materialized", "pipe": "pipelined"}
_MODE_TO_KIND = {mode: kind for kind, mode in _KIND_TO_MODE.items()}


@dataclass(frozen=True)
class Operand:
    """One join operand: ``scan(Name)``, ``store(%k)`` or ``pipe(%k)``."""

    kind: str
    relation: Optional[str] = None   # for scan
    statement: Optional[int] = None  # for store / pipe

    def __post_init__(self) -> None:
        if self.kind not in OPERAND_KINDS:
            raise ValueError(f"unknown operand kind {self.kind!r}")
        if self.kind == "scan":
            if self.relation is None or self.statement is not None:
                raise ValueError("scan operands reference a relation name")
        else:
            if self.statement is None or self.relation is not None:
                raise ValueError(f"{self.kind} operands reference a statement")

    @classmethod
    def scan(cls, relation: str) -> "Operand":
        return cls("scan", relation=relation)

    @classmethod
    def store(cls, statement: int) -> "Operand":
        return cls("store", statement=statement)

    @classmethod
    def pipe(cls, statement: int) -> "Operand":
        return cls("pipe", statement=statement)

    @property
    def mode(self) -> str:
        """The schedule input mode this operand corresponds to."""
        return _KIND_TO_MODE[self.kind]

    @classmethod
    def from_mode(cls, mode: str, source) -> "Operand":
        """Build the operand matching a schedule :class:`InputSpec`."""
        kind = _MODE_TO_KIND[mode]
        if kind == "scan":
            return cls.scan(source)
        return cls(kind, statement=source)

    def __str__(self) -> str:
        if self.kind == "scan":
            return f"scan({self.relation})"
        return f"{self.kind}(%{self.statement})"


@dataclass(frozen=True)
class JoinStatement:
    """One parallel hash-join statement of an XRA program."""

    index: int
    algorithm: str             # "simple" | "pipelining"
    build_side: str            # "left" | "right"
    left: Operand
    right: Operand
    processors: Tuple[int, ...]
    after: Tuple[int, ...] = ()
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.algorithm not in ("simple", "pipelining"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.build_side not in ("left", "right"):
            raise ValueError("build_side must be left or right")
        if not self.processors:
            raise ValueError("statement needs processors")

    @property
    def parallelism(self) -> int:
        return len(self.processors)
