"""XRA programs and their equivalence with parallel schedules.

An :class:`XRAPlan` is a straight-line XRA program: one parallel join
statement per join of the tree, in postorder, the last statement
producing the query result.  Plans convert losslessly to and from
:class:`~repro.core.schedule.ParallelSchedule` — the join tree itself
is recoverable from the statements' operand structure, so a plan is a
self-contained artifact (as XRA programs were for PRISMA's scheduler).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.schedule import InputSpec, JoinTask, ParallelSchedule
from ..core.trees import Join, Leaf, Node
from .ops import JoinStatement, Operand


@dataclass
class XRAPlan:
    """A parallel execution plan in XRA form."""

    strategy: str
    processors: int
    statements: List[JoinStatement]

    def __post_init__(self) -> None:
        for i, statement in enumerate(self.statements):
            if statement.index != i:
                raise ValueError(
                    f"statement {i} carries index {statement.index}; "
                    "statements must be densely numbered in order"
                )

    # -- conversions ------------------------------------------------------

    @classmethod
    def from_schedule(cls, schedule: ParallelSchedule) -> "XRAPlan":
        """Compile a validated schedule into an XRA program."""
        statements = []
        for task in schedule.tasks:
            statements.append(
                JoinStatement(
                    index=task.index,
                    algorithm=task.algorithm,
                    build_side=task.build_side,
                    left=Operand.from_mode(task.left_input.mode, task.left_input.source),
                    right=Operand.from_mode(
                        task.right_input.mode, task.right_input.source
                    ),
                    processors=task.processors,
                    after=task.start_after,
                    label=task.join.label,
                )
            )
        return cls(schedule.strategy, schedule.processors, statements)

    def tree(self) -> Node:
        """Reconstruct the join tree from the operand structure."""
        return self._tree_with_nodes()[0]

    def _tree_with_nodes(self):
        """The tree plus the statement-index → join-node mapping."""
        nodes: Dict[int, Node] = {}
        consumed = set()

        def operand_node(operand: Operand) -> Node:
            if operand.kind == "scan":
                return Leaf(operand.relation)
            if operand.statement not in nodes:
                raise ValueError(
                    f"operand references statement %{operand.statement} "
                    "before it is defined"
                )
            consumed.add(operand.statement)
            return nodes[operand.statement]

        for statement in self.statements:
            nodes[statement.index] = Join(
                operand_node(statement.left),
                operand_node(statement.right),
                label=statement.label,
            )
        roots = [i for i in nodes if i not in consumed]
        if len(roots) != 1:
            raise ValueError(f"plan has {len(roots)} result statements, expected 1")
        return nodes[roots[0]], nodes

    def to_schedule(self) -> ParallelSchedule:
        """Reconstruct (and validate) the equivalent parallel schedule.

        Statements may appear in any dependency-respecting order; task
        indices are remapped to the reconstructed tree's postorder,
        which is what :class:`ParallelSchedule` requires.
        """
        from ..core.trees import joins_postorder

        tree, node_of = self._tree_with_nodes()
        joins = joins_postorder(tree)
        postorder_of_node = {id(join): i for i, join in enumerate(joins)}
        remap = {
            statement.index: postorder_of_node[id(node_of[statement.index])]
            for statement in self.statements
        }

        def spec(operand: Operand) -> InputSpec:
            if operand.kind == "scan":
                return InputSpec("base", operand.relation)
            return InputSpec(operand.mode, remap[operand.statement])

        tasks: List[Optional[JoinTask]] = [None] * len(self.statements)
        for statement in self.statements:
            new_index = remap[statement.index]
            tasks[new_index] = JoinTask(
                index=new_index,
                join=node_of[statement.index],
                processors=statement.processors,
                algorithm=statement.algorithm,
                left_input=spec(statement.left),
                right_input=spec(statement.right),
                start_after=tuple(sorted(remap[d] for d in statement.after)),
                build_side=statement.build_side,
            )
        return ParallelSchedule(self.strategy, tree, self.processors, tasks).validate()

    # -- summary metrics ---------------------------------------------------

    def operation_processes(self) -> int:
        """Operation processes the plan claims (the startup metric)."""
        return sum(s.parallelism for s in self.statements)

    def stream_count(self) -> int:
        """Network tuple streams the plan opens (the coordination metric)."""
        by_index = {s.index: s for s in self.statements}
        total = 0
        for statement in self.statements:
            for operand in (statement.left, statement.right):
                if operand.kind != "scan":
                    total += by_index[operand.statement].parallelism * statement.parallelism
        return total
