"""Textual XRA: pretty printer and parser.

The textual form is line-oriented, one statement per line after a
header, round-tripping exactly with :class:`~repro.xra.plan.XRAPlan`::

    xra strategy=RD processors=20
    %0 := join[simple,build=left](scan(R3), scan(R4)) on 0-7
    %1 := join[simple,build=left](store(%0), pipe(%2)) on 8-14 after %0
    ...

Processor sets print as compressed ranges (``0-7,12``).
"""

from __future__ import annotations

import re
from typing import List, Tuple

from .ops import JoinStatement, Operand
from .plan import XRAPlan

_HEADER = re.compile(r"^xra\s+strategy=(\S+)\s+processors=(\d+)\s*$")
_STATEMENT = re.compile(
    r"^%(?P<index>\d+)\s*:=\s*"
    r"join\[(?P<algorithm>simple|pipelining),build=(?P<build>left|right)\]"
    r"\((?P<left>[^,]+),\s*(?P<right>[^)]+\))?\)?"
)
_OPERAND = re.compile(
    r"^(?P<kind>scan|store|pipe)\((?P<arg>[^)]+)\)$"
)


def format_processors(processors: Tuple[int, ...]) -> str:
    """Compress a sorted processor tuple into range notation."""
    if not processors:
        raise ValueError("empty processor set")
    parts: List[str] = []
    run_start = prev = processors[0]
    for ident in processors[1:]:
        if ident == prev + 1:
            prev = ident
            continue
        parts.append(_range_text(run_start, prev))
        run_start = prev = ident
    parts.append(_range_text(run_start, prev))
    return ",".join(parts)


def _range_text(start: int, end: int) -> str:
    return str(start) if start == end else f"{start}-{end}"


def parse_processors(text: str) -> Tuple[int, ...]:
    """Parse range notation back into a processor tuple."""
    out: List[int] = []
    for part in text.split(","):
        part = part.strip()
        if "-" in part:
            lo, hi = part.split("-")
            out.extend(range(int(lo), int(hi) + 1))
        else:
            out.append(int(part))
    return tuple(out)


def format_plan(plan: XRAPlan) -> str:
    """Render a plan as its textual XRA program."""
    lines = [f"xra strategy={plan.strategy} processors={plan.processors}"]
    for statement in plan.statements:
        after = ""
        if statement.after:
            after = " after " + " ".join(f"%{d}" for d in statement.after)
        label = f"  ; {statement.label}" if statement.label else ""
        lines.append(
            f"%{statement.index} := join[{statement.algorithm},"
            f"build={statement.build_side}]"
            f"({statement.left}, {statement.right})"
            f" on {format_processors(statement.processors)}{after}{label}"
        )
    return "\n".join(lines)


def _parse_operand(text: str) -> Operand:
    match = _OPERAND.match(text.strip())
    if not match:
        raise ValueError(f"cannot parse operand {text!r}")
    kind, arg = match.group("kind"), match.group("arg").strip()
    if kind == "scan":
        return Operand.scan(arg)
    if not arg.startswith("%"):
        raise ValueError(f"{kind} operand must reference a statement: {text!r}")
    return Operand(kind, statement=int(arg[1:]))


def parse_plan(text: str) -> XRAPlan:
    """Parse a textual XRA program back into a plan."""
    lines = [line.split(";")[0].rstrip() for line in text.strip().splitlines()]
    lines = [line for line in lines if line.strip()]
    if not lines:
        raise ValueError("empty XRA program")
    header = _HEADER.match(lines[0])
    if not header:
        raise ValueError(f"bad XRA header: {lines[0]!r}")
    strategy, processors = header.group(1), int(header.group(2))

    statements: List[JoinStatement] = []
    statement_re = re.compile(
        r"^%(\d+) := join\[(simple|pipelining),build=(left|right)\]"
        r"\((.+), (.+)\) on ([0-9,\-]+)( after (.*))?$"
    )
    for line, raw in enumerate(lines[1:], start=1):
        # Labels were stripped with the comment; parse the rest.
        match = statement_re.match(raw.strip())
        if not match:
            raise ValueError(f"cannot parse XRA statement on line {line}: {raw!r}")
        index, algorithm, build, left, right, procs, _, after = match.groups()
        after_ids: Tuple[int, ...] = ()
        if after:
            after_ids = tuple(int(token[1:]) for token in after.split())
        statements.append(
            JoinStatement(
                index=int(index),
                algorithm=algorithm,
                build_side=build,
                left=_parse_operand(left),
                right=_parse_operand(right),
                processors=parse_processors(procs),
                after=after_ids,
            )
        )
    return XRAPlan(strategy, processors, statements)
