"""The execution-plan generator of Section 4.3.

The paper built "a generator that can make execution plans using each
of the strategies for a specific join tree.  The generator takes the
join tree, the cardinalities of the operand relations, the
parallelization strategy, and the number of processors to be used as
input, and yields an execution plan in XRA as output."  This module is
exactly that function.
"""

from __future__ import annotations

from typing import Union

from ..core.cost import Catalog, CostModel
from ..core.strategies import Strategy, get_strategy
from ..core.trees import Node
from .plan import XRAPlan
from .text import format_plan


def generate_plan(
    tree: Node,
    catalog: Catalog,
    strategy: Union[str, Strategy],
    processors: int,
    cost_model: CostModel = CostModel(),
) -> XRAPlan:
    """Plan ``tree`` with ``strategy`` and compile it to XRA."""
    if isinstance(strategy, str):
        strategy = get_strategy(strategy)
    schedule = strategy.schedule(tree, catalog, processors, cost_model)
    return XRAPlan.from_schedule(schedule)


def generate_plan_text(
    tree: Node,
    catalog: Catalog,
    strategy: Union[str, Strategy],
    processors: int,
    cost_model: CostModel = CostModel(),
) -> str:
    """Like :func:`generate_plan` but returns the textual XRA program."""
    return format_plan(generate_plan(tree, catalog, strategy, processors, cost_model))
