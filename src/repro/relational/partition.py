"""Hash partitioning of relations over processors.

PRISMA/DB fragments relations over the memories of a shared-nothing
machine.  This module provides the deterministic hash function the
whole reproduction uses for fragmentation, redistribution between join
operators, and the "ideal initial fragmentation" of Section 4.1 (base
relations pre-hashed on the join attribute of their first join).
"""

from __future__ import annotations

from typing import List, Sequence

from .relation import Relation

#: Knuth's multiplicative constant; spreads small consecutive integers.
_MULTIPLIER = 2654435761
_MASK = (1 << 32) - 1


def bucket(value: int, fragments: int) -> int:
    """Deterministic bucket of an integer join key in ``0..fragments-1``.

    A multiplicative hash rather than ``value % fragments`` so that
    consecutive keys (the Wisconsin permutations cover a dense range)
    do not land in lock-step patterns for particular fragment counts.
    """
    if fragments <= 0:
        raise ValueError("fragment count must be positive")
    return ((value * _MULTIPLIER) & _MASK) % fragments


def hash_partition(relation: Relation, key: str, fragments: int) -> List[Relation]:
    """Split ``relation`` into ``fragments`` relations by hashing ``key``.

    Every tuple lands in exactly one fragment; fragments share the
    input schema.  This models both initial fragmentation and the
    redistribution ("split") operators between joins.
    """
    idx = relation.schema.index_of(key)
    parts: List[List[tuple]] = [[] for _ in range(fragments)]
    for row in relation:
        parts[bucket(row[idx], fragments)].append(row)
    return [Relation(relation.schema, rows) for rows in parts]


def fragment_sizes(fragments: Sequence[Relation]) -> List[int]:
    """Cardinalities of the fragments (used by skew diagnostics)."""
    return [f.cardinality() for f in fragments]


def skew(fragments: Sequence[Relation]) -> float:
    """Load-imbalance ratio: max fragment size over mean fragment size.

    1.0 means perfectly balanced; the paper assumes non-skewed
    partitioning, and tests assert the Wisconsin data stays close to 1.
    """
    sizes = fragment_sizes(fragments)
    total = sum(sizes)
    if total == 0:
        return 1.0
    mean = total / len(sizes)
    return max(sizes) / mean
