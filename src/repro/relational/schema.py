"""Relation schemas.

PRISMA/DB is a relational main-memory system; this module provides the
minimal schema machinery the reproduction needs: named, typed columns
with a declared per-tuple byte width.  The byte width matters because
the paper's Wisconsin tuples are 208 bytes wide and tuple width feeds
the memory accounting of the hash-join algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Tuple


@dataclass(frozen=True)
class Attribute:
    """A single named column.

    ``width`` is the storage width in bytes used by memory accounting.
    ``kind`` is a coarse type tag (``"int"`` or ``"str"``); the engine
    only ever joins on ``int`` attributes, as the paper does.
    """

    name: str
    kind: str = "int"
    width: int = 4

    def __post_init__(self) -> None:
        if self.kind not in ("int", "str"):
            raise ValueError(f"unsupported attribute kind: {self.kind!r}")
        if self.width <= 0:
            raise ValueError("attribute width must be positive")


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`Attribute`.

    Schemas are immutable; operators derive new schemas with
    :meth:`project` and :meth:`concat`.
    """

    attributes: Tuple[Attribute, ...]
    _index: dict = field(init=False, repr=False, compare=False, hash=False, default=None)

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in schema: {names}")
        object.__setattr__(self, "_index", {a.name: i for i, a in enumerate(self.attributes)})

    @classmethod
    def of(cls, *attributes: Attribute) -> "Schema":
        """Build a schema from attribute objects."""
        return cls(tuple(attributes))

    @classmethod
    def ints(cls, *names: str) -> "Schema":
        """Build an all-integer schema from attribute names."""
        return cls(tuple(Attribute(n) for n in names))

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def names(self) -> Tuple[str, ...]:
        """The attribute names, in schema order."""
        return tuple(a.name for a in self.attributes)

    def index_of(self, name: str) -> int:
        """Position of attribute ``name``; raises ``KeyError`` if absent."""
        return self._index[name]

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def attribute(self, name: str) -> Attribute:
        """The attribute object named ``name``."""
        return self.attributes[self.index_of(name)]

    def tuple_width(self) -> int:
        """Total per-tuple storage width in bytes."""
        return sum(a.width for a in self.attributes)

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema restricted to ``names``, in the given order."""
        return Schema(tuple(self.attribute(n) for n in names))

    def concat(self, other: "Schema", prefix: str = "") -> "Schema":
        """Schema of this schema followed by ``other``.

        Attributes of ``other`` whose names collide are renamed with
        ``prefix`` (default raises on collision).
        """
        merged = list(self.attributes)
        for attr in other.attributes:
            name = attr.name
            if name in self:
                if not prefix:
                    raise ValueError(f"attribute name collision: {name!r}")
                name = prefix + name
                if name in self:
                    raise ValueError(f"attribute name collision after prefix: {name!r}")
            merged.append(Attribute(name, attr.kind, attr.width))
        return Schema(tuple(merged))
