"""Relational substrate: schemas, relations, Wisconsin data, hash joins.

This package is the data layer under the reproduction: real, executable
relational algebra that the local execution engine runs to validate
that every parallel strategy computes the same answer.
"""

from .hashjoin import (
    PipeliningHashJoin,
    SimpleHashJoin,
    concat_rows,
    first_result_position,
    pipelining_hash_join,
    simple_hash_join,
)
from .operators import project, scan, split, union, wisconsin_combine
from .partition import bucket, fragment_sizes, hash_partition, skew
from .query import (
    JoinKeyError,
    JoinResolution,
    natural_join,
    natural_join_key,
    natural_resolution,
    wisconsin_resolution,
)
from .relation import Relation
from .schema import Attribute, Schema
from .wisconsin import (
    WISCONSIN_SCHEMA,
    WISCONSIN_TUPLE_BYTES,
    expected_join_cardinality,
    make_query_relations,
    make_wisconsin,
    wisconsin_join_project,
)

__all__ = [
    "Attribute",
    "PipeliningHashJoin",
    "Relation",
    "Schema",
    "SimpleHashJoin",
    "WISCONSIN_SCHEMA",
    "WISCONSIN_TUPLE_BYTES",
    "JoinKeyError",
    "JoinResolution",
    "bucket",
    "natural_join",
    "natural_join_key",
    "natural_resolution",
    "wisconsin_resolution",
    "concat_rows",
    "expected_join_cardinality",
    "first_result_position",
    "fragment_sizes",
    "hash_partition",
    "make_query_relations",
    "make_wisconsin",
    "pipelining_hash_join",
    "project",
    "scan",
    "simple_hash_join",
    "skew",
    "split",
    "union",
    "wisconsin_combine",
    "wisconsin_join_project",
]
