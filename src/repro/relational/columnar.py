"""Columnar (NumPy-vectorized) equi-join kernels for the real executor.

The row-at-a-time hash joins in :mod:`repro.relational.hashjoin` are
the *reference* semantics; this module computes the same joins on
columnar key batches with ``argsort``/``searchsorted``/``repeat``
instead of a Python-level dict probe per tuple.  The kernels return
``(left_index, right_index)`` match pairs **in the exact emission
order of the reference drive** — probe order with build-insertion
tie-breaks for the simple join, alternating-arrival order for the
pipelining join — so the vectorized executor produces not just the
same bag but the same row sequence, and result rows are assembled from
the original Python row objects (no ``np.int64`` leaking into tuples).

NumPy is optional: the import is gated, ``HAVE_NUMPY`` advertises
availability, and callers fall back to the row-at-a-time classes when
it is absent or when the caller pins ``use_columnar=False``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

try:  # pragma: no cover - exercised implicitly by HAVE_NUMPY branches
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

#: Whether the vectorized kernels are usable in this interpreter.
HAVE_NUMPY = _np is not None

Row = Tuple


def _keys(rows: Sequence[Row], key_index: int) -> "_np.ndarray":
    """The key column of ``rows`` as an int64 array."""
    return _np.fromiter(
        (row[key_index] for row in rows), dtype=_np.int64, count=len(rows)
    )


def _match_pairs(
    probe_keys: "_np.ndarray", build_keys: "_np.ndarray"
) -> Tuple["_np.ndarray", "_np.ndarray"]:
    """All (probe_index, build_index) matches, probe-major.

    Pairs come out grouped by probe index in ascending order; within
    one probe row, build indices appear in build *insertion* order
    (the stable argsort preserves it among equal keys) — exactly the
    bucket-list order the dict-based joins emit.
    """
    order = _np.argsort(build_keys, kind="stable")
    sorted_keys = build_keys[order]
    lo = _np.searchsorted(sorted_keys, probe_keys, side="left")
    hi = _np.searchsorted(sorted_keys, probe_keys, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = _np.empty(0, dtype=_np.int64)
        return empty, empty
    probe_idx = _np.repeat(_np.arange(probe_keys.size), counts)
    starts = _np.cumsum(counts) - counts
    positions = (
        _np.arange(total) - _np.repeat(starts, counts) + _np.repeat(lo, counts)
    )
    return probe_idx, order[positions]


def simple_join_pairs(
    build_keys: "_np.ndarray", probe_keys: "_np.ndarray"
) -> Tuple["_np.ndarray", "_np.ndarray"]:
    """(build_index, probe_index) pairs in ``SimpleHashJoin`` emission
    order: probe rows in arrival order, matches per probe in build
    insertion order."""
    probe_idx, build_idx = _match_pairs(probe_keys, build_keys)
    return build_idx, probe_idx


def pipelining_join_pairs(
    left_keys: "_np.ndarray", right_keys: "_np.ndarray"
) -> Tuple["_np.ndarray", "_np.ndarray"]:
    """(left_index, right_index) pairs in ``PipeliningHashJoin``
    emission order under the executor's alternating drive
    (``insert_left(l_i)`` then ``insert_right(r_i)`` per round).

    A match ``(l, r)`` is emitted when its *second* constituent
    arrives: at the right insert of round ``r`` when ``l <= r`` (the
    same-round left insert precedes it), else at the left insert of
    round ``l``.  Within one insert, matches follow the other table's
    insertion order.
    """
    left_idx, right_idx = _match_pairs(left_keys, right_keys)
    if left_idx.size == 0:
        return left_idx, right_idx
    emitted_right = right_idx >= left_idx
    round_ = _np.where(emitted_right, right_idx, left_idx)
    side = emitted_right.astype(_np.int8)  # left insert (0) precedes right (1)
    other = _np.where(emitted_right, left_idx, right_idx)
    emission = _np.lexsort((other, side, round_))
    return left_idx[emission], right_idx[emission]


def join_fragment_rows(
    left_rows: Sequence[Row],
    right_rows: Sequence[Row],
    key_index: int,
    algorithm: str,
    build_side: str,
) -> List[Row]:
    """One fragment join, vectorized, in Wisconsin combine semantics.

    Returns result rows ``(left.u2, right.u2, left.filler)`` in the
    same sequence the row-at-a-time executor produces, built from the
    original Python row objects.
    """
    if _np is None:  # pragma: no cover - callers gate on HAVE_NUMPY
        raise RuntimeError("columnar kernels need numpy")
    left_keys = _keys(left_rows, key_index)
    right_keys = _keys(right_rows, key_index)
    if algorithm == "simple":
        if build_side == "left":
            build_idx, probe_idx = simple_join_pairs(left_keys, right_keys)
            left_of, right_of = build_idx, probe_idx
        else:
            build_idx, probe_idx = simple_join_pairs(right_keys, left_keys)
            left_of, right_of = probe_idx, build_idx
    else:
        left_of, right_of = pipelining_join_pairs(left_keys, right_keys)
    return [
        (left_rows[i][1], right_rows[j][1], left_rows[i][2])
        for i, j in zip(left_of.tolist(), right_of.tolist())
    ]


__all__ = [
    "HAVE_NUMPY",
    "join_fragment_rows",
    "pipelining_join_pairs",
    "simple_join_pairs",
]
