"""Small relational operators used by the execution engines.

These are the non-join pieces of the XRA fragment the paper exercises:
scan, projection, split (redistribution) and union (collecting
fragments), plus the Wisconsin-specific join combiner that keeps every
intermediate result a Wisconsin relation (Section 4.1).
"""

from __future__ import annotations

from typing import List, Sequence

from .partition import hash_partition
from .relation import Relation, Row
from .schema import Schema
from .wisconsin import WISCONSIN_SCHEMA


def wisconsin_combine(left: Row, right: Row) -> Row:
    """Join combiner of the paper's regular query.

    Matching Wisconsin tuples ``(u1, u2, filler)`` are combined into
    ``(left.u2, right.u2, left.filler)`` so the result is again a
    Wisconsin relation whose first attribute is a permutation and can
    key the next join.
    """
    return (left[1], right[1], left[2])


#: Result schema of a Wisconsin join step (identical to the operands').
WISCONSIN_JOIN_SCHEMA: Schema = WISCONSIN_SCHEMA


def scan(relation: Relation) -> Relation:
    """Identity scan (exists so plans have an explicit leaf operator)."""
    return relation


def split(relation: Relation, key: str, fragments: int) -> List[Relation]:
    """Redistribute a relation into ``fragments`` by hashing ``key``.

    This is the XRA split primitive: the output of a join operator is
    split and sent to the processors of the consumer operator.
    """
    return hash_partition(relation, key, fragments)


def union(fragments: Sequence[Relation]) -> Relation:
    """Collect fragments into one relation (bag union)."""
    return Relation.union_all(list(fragments))


def project(relation: Relation, names: Sequence[str]) -> Relation:
    """Bag projection onto ``names``."""
    return relation.project(names)
