"""Natural-join queries over arbitrary schemas.

The paper closes with: "The experiments reported in this paper are
done using a regular query on a synthetic database.  It would be quite
interesting to use the strategies presented here for real-life
applications."  This module supplies the relational machinery for
that: *natural* equi-joins — the join key is the single attribute name
the two operand schemas share, the result drops the duplicate column —
which is exactly how star/snowflake foreign-key queries compose.

The generalized local executor (:func:`repro.engine.local.
execute_natural_schedule`) uses these helpers to run any parallel
schedule on any foreign-key-joinable set of relations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .relation import Relation, Row
from .schema import Schema


class JoinKeyError(ValueError):
    """Operand schemas do not determine a unique natural join key."""


def natural_join_key(left: Schema, right: Schema) -> str:
    """The single attribute name shared by both schemas.

    Natural-join composition requires exactly one shared attribute —
    zero means a cartesian product, several an ambiguous predicate;
    both are rejected.
    """
    shared = [name for name in left.names() if name in right]
    if not shared:
        raise JoinKeyError(
            f"no shared attribute between {left.names()} and {right.names()}"
        )
    if len(shared) > 1:
        raise JoinKeyError(
            f"ambiguous natural join: shared attributes {shared}"
        )
    return shared[0]


def natural_result_schema(left: Schema, right: Schema) -> Schema:
    """Result schema: left's columns, then right's minus the join key."""
    key = natural_join_key(left, right)
    kept = [name for name in right.names() if name != key]
    return Schema(tuple(left.attributes) + tuple(right.project(kept).attributes))


def natural_combiner(left: Schema, right: Schema):
    """Row combiner matching :func:`natural_result_schema`."""
    key = natural_join_key(left, right)
    keep = [i for i, name in enumerate(right.names()) if name != key]

    def combine(left_row: Row, right_row: Row) -> Row:
        return left_row + tuple(right_row[i] for i in keep)

    return combine


@dataclass(frozen=True)
class JoinResolution:
    """Everything an executor needs to join two operand schemas."""

    left_key: str
    right_key: str
    combine: "object"          # Combine callable (left_row, right_row) -> row
    result_schema: Schema


def natural_resolution(left: Schema, right: Schema) -> JoinResolution:
    """Natural-join semantics: key = the single shared attribute."""
    key = natural_join_key(left, right)
    return JoinResolution(
        left_key=key,
        right_key=key,
        combine=natural_combiner(left, right),
        result_schema=natural_result_schema(left, right),
    )


def wisconsin_resolution(left: Schema, right: Schema) -> JoinResolution:
    """The paper's regular-query semantics (Section 4.1): join on
    ``unique1``, project to ``(left.unique2, right.unique2,
    left.filler)`` so the result is again a Wisconsin relation."""
    from .operators import wisconsin_combine
    from .wisconsin import WISCONSIN_SCHEMA

    for schema in (left, right):
        if schema.names() != WISCONSIN_SCHEMA.names():
            raise ValueError(
                f"wisconsin_resolution needs Wisconsin operands, got "
                f"{schema.names()}"
            )
    return JoinResolution(
        left_key="unique1",
        right_key="unique1",
        combine=wisconsin_combine,
        result_schema=WISCONSIN_SCHEMA,
    )


def natural_join(left: Relation, right: Relation) -> Relation:
    """Hash-based natural join (the sequential oracle)."""
    key = natural_join_key(left.schema, right.schema)
    left_idx = left.schema.index_of(key)
    right_idx = right.schema.index_of(key)
    combine = natural_combiner(left.schema, right.schema)
    table: Dict[object, List[Row]] = {}
    for row in left:
        table.setdefault(row[left_idx], []).append(row)
    rows: List[Row] = []
    for row in right:
        for match in table.get(row[right_idx], ()):
            rows.append(combine(match, row))
    return Relation(natural_result_schema(left.schema, right.schema), rows)
