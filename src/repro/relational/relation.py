"""In-memory relations.

A :class:`Relation` is an immutable bag of tuples with a
:class:`~repro.relational.schema.Schema`.  Tuples are plain Python
tuples in schema order; this is the representation every operator and
both hash-join algorithms work on.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Sequence, Tuple

from .schema import Schema

Row = Tuple


class Relation:
    """An immutable, ordered bag of tuples with a schema.

    The order of rows is preserved (it is the insertion order of the
    producing operator) but carries no semantic meaning; equality of
    relations is bag equality via :meth:`same_bag`.
    """

    __slots__ = ("schema", "_rows")

    def __init__(self, schema: Schema, rows: Iterable[Row] = ()):
        self.schema = schema
        materialized: List[Row] = []
        width = len(schema)
        for row in rows:
            if len(row) != width:
                raise ValueError(
                    f"row arity {len(row)} does not match schema arity {width}: {row!r}"
                )
            materialized.append(tuple(row))
        self._rows = materialized

    # -- basic container protocol -------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __repr__(self) -> str:
        return f"Relation({self.schema.names()}, {len(self)} rows)"

    @property
    def rows(self) -> Sequence[Row]:
        """The rows as an immutable view (do not mutate)."""
        return self._rows

    def cardinality(self) -> int:
        """Number of tuples."""
        return len(self._rows)

    def bytes(self) -> int:
        """Approximate storage size: cardinality times tuple width."""
        return len(self._rows) * self.schema.tuple_width()

    # -- derivation helpers --------------------------------------------

    def column(self, name: str) -> List:
        """All values of attribute ``name`` in row order."""
        idx = self.schema.index_of(name)
        return [row[idx] for row in self._rows]

    def project(self, names: Sequence[str]) -> "Relation":
        """Relation restricted to ``names`` (bag projection, keeps duplicates)."""
        idxs = [self.schema.index_of(n) for n in names]
        schema = self.schema.project(names)
        return Relation(schema, (tuple(row[i] for i in idxs) for row in self._rows))

    def select(self, predicate: Callable[[Row], bool]) -> "Relation":
        """Rows satisfying ``predicate``."""
        return Relation(self.schema, (row for row in self._rows if predicate(row)))

    def extend(self, rows: Iterable[Row]) -> "Relation":
        """A new relation with ``rows`` appended."""
        out = Relation(self.schema, self._rows)
        for row in rows:
            if len(row) != len(self.schema):
                raise ValueError(f"row arity mismatch: {row!r}")
            out._rows.append(tuple(row))
        return out

    def same_bag(self, other: "Relation") -> bool:
        """Bag (multiset) equality of rows, ignoring order and schema names."""
        if len(self) != len(other):
            return False
        return sorted(self._rows) == sorted(other._rows)

    @staticmethod
    def union_all(parts: Sequence["Relation"]) -> "Relation":
        """Bag union of fragments sharing a schema (the XRA ``union``)."""
        if not parts:
            raise ValueError("union_all of no relations")
        schema = parts[0].schema
        for part in parts[1:]:
            if part.schema.names() != schema.names():
                raise ValueError("union_all over incompatible schemas")
        rows: List[Row] = []
        for part in parts:
            rows.extend(part.rows)
        return Relation(schema, rows)
