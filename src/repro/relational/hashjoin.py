"""The two hash-join algorithms of the paper (Section 2.3.2, Figure 1).

* :class:`SimpleHashJoin` — the classic two-phase build/probe join
  [ScD89]: the build operand is fully hashed first, then the probe
  operand streams through.  No result tuple appears before the build
  phase is complete, so the only pipelining it allows is along the
  probe operand.

* :class:`PipeliningHashJoin` — the symmetric main-memory algorithm of
  [WiA90, WiA91]: one phase, one hash table *per operand*.  As a tuple
  arrives from either side it probes the part of the other operand's
  hash table built so far, emits any matches, and is then inserted into
  its own table.  Results appear as early as possible, enabling
  pipelining along *both* operands, at the cost of a second hash table.

Both classes are incremental so the execution engines can drive them
tuple-at-a-time; convenience functions run them to completion on whole
relations.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .relation import Relation, Row
from .schema import Schema

#: Builds one result row from a matching (left_row, right_row) pair.
Combine = Callable[[Row, Row], Row]


def concat_rows(left: Row, right: Row) -> Row:
    """Default combiner: concatenation (the plain relational join)."""
    return left + right


class SimpleHashJoin:
    """Two-phase build/probe hash join over integer keys.

    Drive it with :meth:`build` for every build-operand tuple, then
    :meth:`end_build`, then :meth:`probe` for every probe-operand
    tuple.  ``probe`` returns the result tuples produced by that input
    tuple.  Probing before the build phase ended is a protocol error —
    this is exactly the constraint that makes left-deep pipelines
    ineffective in Schneider's analysis [Sch90].
    """

    def __init__(
        self,
        build_key: int,
        probe_key: int,
        combine: Combine = concat_rows,
    ):
        self._build_key = build_key
        self._probe_key = probe_key
        self._combine = combine
        self._table: Dict[object, List[Row]] = {}
        self._built = False
        self.build_count = 0
        self.probe_count = 0
        self.result_count = 0

    def build(self, row: Row) -> None:
        """Insert one build-operand tuple into the hash table."""
        if self._built:
            raise RuntimeError("build() after end_build()")
        self._table.setdefault(row[self._build_key], []).append(row)
        self.build_count += 1

    def end_build(self) -> None:
        """Mark the build phase complete; probing may start."""
        self._built = True

    def probe(self, row: Row) -> List[Row]:
        """Probe with one tuple; returns the (possibly empty) matches."""
        if not self._built:
            raise RuntimeError("probe() before end_build(); "
                               "the simple hash-join cannot pipeline its build operand")
        self.probe_count += 1
        matches = self._table.get(row[self._probe_key])
        if not matches:
            return []
        out = [self._combine(build_row, row) for build_row in matches]
        self.result_count += len(out)
        return out

    def hash_tables(self) -> int:
        """Number of hash tables held (always 1 — the memory advantage)."""
        return 1

    def table_size(self) -> int:
        """Tuples currently resident in the build table."""
        return self.build_count


class PipeliningHashJoin:
    """Symmetric one-phase hash join with a hash table per operand.

    Drive it with :meth:`insert_left` / :meth:`insert_right` in any
    interleaving; each call returns the result tuples formed by
    matching the new tuple against the *already arrived* part of the
    other operand.  Every match is produced exactly once, when its
    second constituent arrives.
    """

    def __init__(
        self,
        left_key: int,
        right_key: int,
        combine: Combine = concat_rows,
    ):
        self._left_key = left_key
        self._right_key = right_key
        self._combine = combine
        self._left_table: Dict[object, List[Row]] = {}
        self._right_table: Dict[object, List[Row]] = {}
        self.left_count = 0
        self.right_count = 0
        self.result_count = 0

    def insert_left(self, row: Row) -> List[Row]:
        """Process one left-operand tuple: probe right table, then insert."""
        self.left_count += 1
        key = row[self._left_key]
        matches = self._right_table.get(key)
        out = [self._combine(row, right_row) for right_row in matches] if matches else []
        self._left_table.setdefault(key, []).append(row)
        self.result_count += len(out)
        return out

    def insert_right(self, row: Row) -> List[Row]:
        """Process one right-operand tuple: probe left table, then insert."""
        self.right_count += 1
        key = row[self._right_key]
        matches = self._left_table.get(key)
        out = [self._combine(left_row, row) for left_row in matches] if matches else []
        self._right_table.setdefault(key, []).append(row)
        self.result_count += len(out)
        return out

    def hash_tables(self) -> int:
        """Number of hash tables held (always 2 — the memory cost)."""
        return 2

    def table_sizes(self) -> Tuple[int, int]:
        """Tuples resident in the (left, right) hash tables."""
        return (self.left_count, self.right_count)


def simple_hash_join(
    build: Relation,
    probe: Relation,
    build_key: str,
    probe_key: str,
    combine: Combine = concat_rows,
    schema: Optional[Schema] = None,
) -> Relation:
    """Run a complete :class:`SimpleHashJoin` over two relations."""
    join = SimpleHashJoin(
        build.schema.index_of(build_key), probe.schema.index_of(probe_key), combine
    )
    for row in build:
        join.build(row)
    join.end_build()
    rows: List[Row] = []
    for row in probe:
        rows.extend(join.probe(row))
    if schema is None:
        schema = build.schema.concat(probe.schema, prefix="r_")
    return Relation(schema, rows)


def pipelining_hash_join(
    left: Relation,
    right: Relation,
    left_key: str,
    right_key: str,
    combine: Combine = concat_rows,
    schema: Optional[Schema] = None,
    interleave: int = 1,
) -> Relation:
    """Run a complete :class:`PipeliningHashJoin` over two relations.

    ``interleave`` controls how many tuples are taken from each operand
    per round, mimicking two producers streaming concurrently; the
    result bag is independent of the interleaving.
    """
    if interleave <= 0:
        raise ValueError("interleave must be positive")
    join = PipeliningHashJoin(
        left.schema.index_of(left_key), right.schema.index_of(right_key), combine
    )
    rows: List[Row] = []
    left_iter = iter(left)
    right_iter = iter(right)
    left_done = right_done = False
    while not (left_done and right_done):
        for _ in range(interleave):
            row = next(left_iter, None)
            if row is None:
                left_done = True
                break
            rows.extend(join.insert_left(row))
        for _ in range(interleave):
            row = next(right_iter, None)
            if row is None:
                right_done = True
                break
            rows.extend(join.insert_right(row))
    if schema is None:
        schema = left.schema.concat(right.schema, prefix="r_")
    return Relation(schema, rows)


def first_result_position(
    left: Relation,
    right: Relation,
    left_key: str,
    right_key: str,
) -> Optional[int]:
    """Input index at which a strictly alternating pipelining join
    emits its first result tuple, or ``None`` if the join is empty.

    This quantifies Figure 1: the pipelining algorithm produces output
    *during* input consumption, whereas the simple hash join cannot
    emit anything before ``len(build)`` inputs have been consumed.
    """
    join = PipeliningHashJoin(
        left.schema.index_of(left_key), right.schema.index_of(right_key)
    )
    consumed = 0
    for l_row, r_row in zip(left, right):
        consumed += 1
        if join.insert_left(l_row):
            return consumed
        consumed += 1
        if join.insert_right(r_row):
            return consumed
    # Drain whichever operand is longer.
    longer, insert = (left, join.insert_left) if len(left) > len(right) else (right, join.insert_right)
    for row in list(longer)[min(len(left), len(right)):]:
        consumed += 1
        if insert(row):
            return consumed
    return None
