"""Wisconsin benchmark relations and the paper's regular join query.

Section 4.1 of the paper: the test query joins ten relations of equal
cardinality, each holding Wisconsin tuples [BDT83] of 208 bytes with
two unique integer attributes.  Relations are joined one-by-one on
their first integer attribute, and after each join the result is
projected to the second integer attributes plus the filler of one
operand, so that every intermediate result is again a Wisconsin
relation of the same cardinality.  The PRISMA data generator took care
that no correlation exists between the two unique attributes of one
relation nor between unique attributes of different relations; we do
the same with independently seeded shuffles.
"""

from __future__ import annotations

import random
from typing import List

from .relation import Relation
from .schema import Attribute, Schema

#: Total Wisconsin tuple width in bytes (two 4-byte ints + filler).
WISCONSIN_TUPLE_BYTES = 208

#: Width of the single filler attribute standing in for the Wisconsin
#: string/padding columns.
FILLER_BYTES = WISCONSIN_TUPLE_BYTES - 8

#: Schema shared by every base and intermediate Wisconsin relation.
WISCONSIN_SCHEMA = Schema.of(
    Attribute("unique1", "int", 4),
    Attribute("unique2", "int", 4),
    Attribute("filler", "str", FILLER_BYTES),
)


def make_wisconsin(cardinality: int, seed: int = 0, name: str = "rel") -> Relation:
    """Generate a Wisconsin relation of ``cardinality`` tuples.

    ``unique1`` and ``unique2`` are independent uniform permutations of
    ``0 .. cardinality-1`` (so every equi-join between any two such
    attributes is one-to-one), and ``filler`` is a short tag standing in
    for the 200 bytes of Wisconsin padding.  Different ``seed`` values
    give decorrelated relations.
    """
    if cardinality < 0:
        raise ValueError("cardinality must be non-negative")
    rng1 = random.Random(f"{seed}/unique1")
    rng2 = random.Random(f"{seed}/unique2")
    unique1 = list(range(cardinality))
    unique2 = list(range(cardinality))
    rng1.shuffle(unique1)
    rng2.shuffle(unique2)
    rows = (
        (unique1[i], unique2[i], f"{name}#{i}")
        for i in range(cardinality)
    )
    return Relation(WISCONSIN_SCHEMA, rows)


def make_query_relations(
    count: int, cardinality: int, seed: int = 0, prefix: str = "R"
) -> List[Relation]:
    """The paper's base data: ``count`` decorrelated Wisconsin relations.

    The 5K experiment is ``make_query_relations(10, 5000)`` and the 40K
    experiment ``make_query_relations(10, 40000)``.
    """
    return [
        make_wisconsin(cardinality, seed=seed * 1000 + i, name=f"{prefix}{i}")
        for i in range(count)
    ]


def wisconsin_join_project(left: Relation, right: Relation) -> Relation:
    """One step of the paper's regular query: join + Wisconsin projection.

    Joins ``left`` and ``right`` on their first integer attribute
    (``unique1``) and projects the result to ``(left.unique2,
    right.unique2, left.filler)`` so that it is again a Wisconsin
    relation: the new ``unique1`` is the old ``left.unique2`` — a
    permutation — so the result can feed the next join unchanged.

    This function is the *oracle* implementation (nested dictionaries on
    real data); the execution engines must agree with it.
    """
    _check_wisconsin(left)
    _check_wisconsin(right)
    by_key = {}
    for l_u1, l_u2, l_fill in left:
        if l_u1 in by_key:
            raise ValueError(f"left operand is not unique on unique1: {l_u1}")
        by_key[l_u1] = (l_u2, l_fill)
    rows = []
    for r_u1, r_u2, _r_fill in right:
        match = by_key.get(r_u1)
        if match is not None:
            l_u2, l_fill = match
            rows.append((l_u2, r_u2, l_fill))
    return Relation(WISCONSIN_SCHEMA, rows)


def _check_wisconsin(relation: Relation) -> None:
    if relation.schema.names() != WISCONSIN_SCHEMA.names():
        raise ValueError(
            f"expected a Wisconsin relation, got schema {relation.schema.names()}"
        )


def expected_join_cardinality(left: Relation, right: Relation) -> int:
    """Cardinality of :func:`wisconsin_join_project` for generated data.

    For permutation-keyed Wisconsin relations of equal cardinality the
    join is one-to-one, so the result size equals the operand size.
    """
    return min(left.cardinality(), right.cardinality())
