"""Reproduction of Wilschut, Flokstra & Apers,
"Parallel evaluation of multi-join queries" (SIGMOD 1995).

The package implements the paper's four parallel execution strategies
for multi-join queries (SP, SE, RD, FP), the PRISMA/DB-style substrate
they run on (relational algebra with simple and pipelining hash-joins,
an XRA-like plan language, and a discrete-event simulation of a
shared-nothing multiprocessor), the two-phase optimizer context, and a
benchmark harness regenerating every figure and table of the paper's
evaluation.

Quickstart::

    from repro import run

    result = run("wide_bushy", "FP", processors=40)
    print(result.response_time)

(:func:`repro.api.run` is the unified facade over all four execution
backends; :mod:`repro.runner` fans whole experiment grids out over
worker processes.)
"""

from .core import (
    Catalog,
    CostModel,
    Join,
    JoinTask,
    Leaf,
    ParallelSchedule,
    SHAPE_NAMES,
    Strategy,
    example_tree,
    get_strategy,
    make_shape,
    mirror,
    paper_relation_names,
    strategy_names,
)
from .relational import (
    PipeliningHashJoin,
    Relation,
    Schema,
    SimpleHashJoin,
    make_query_relations,
    make_wisconsin,
    wisconsin_join_project,
)

__version__ = "1.0.0"

__all__ = [
    "Catalog",
    "CostModel",
    "Join",
    "JoinTask",
    "Leaf",
    "MachineConfig",
    "ParallelSchedule",
    "PipeliningHashJoin",
    "Relation",
    "SHAPE_NAMES",
    "Schema",
    "SimpleHashJoin",
    "SimulationResult",
    "Strategy",
    "XRAPlan",
    "advise_strategy",
    "compile_schedule",
    "example_tree",
    "execute_schedule",
    "get_strategy",
    "make_query_relations",
    "make_shape",
    "make_wisconsin",
    "mirror",
    "paper_relation_names",
    "run",
    "run_cluster",
    "run_workload",
    "simulate_schedule",
    "strategy_names",
    "sweep",
    "two_phase_optimize",
    "wisconsin_join_project",
    "__version__",
]


def __getattr__(name):
    """Lazily expose the heavier subsystems so importing :mod:`repro`
    stays cheap while benchmarks pull in only what they use."""
    if name in ("MachineConfig", "SimulationResult", "simulate_schedule", "execute_schedule"):
        from . import engine
        return getattr(engine, name)
    if name in ("run", "sweep", "run_workload", "run_cluster"):
        from . import api
        return getattr(api, name)
    if name in ("XRAPlan", "compile_schedule"):
        from . import xra
        return getattr(xra, name)
    if name in ("advise_strategy", "two_phase_optimize"):
        from . import optimizer
        return getattr(optimizer, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
