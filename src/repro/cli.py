"""Command-line interface.

Every major capability of the reproduction behind one entry point::

    python -m repro simulate --shape wide_bushy --cardinality 5000 \\
                             --strategy FP --processors 40
    python -m repro plan     --shape right_bushy --strategy RD --processors 20
    python -m repro sweep    --shape wide_bushy --cardinality 5000
    python -m repro diagram  --strategy SE --processors 10
    python -m repro advise   --shape left_bushy --cardinality 40000 --processors 80
    python -m repro memory   --shape wide_bushy --cardinality 40000 \\
                             --strategy FP --processors 30
    python -m repro optimize --relations 10 --cardinality 5000 --processors 40
    python -m repro workload --shape wide_bushy --arrivals poisson \\
                             --rate 5 --duration 60 --seed 1
    python -m repro cluster  --shards 4 --placement hash \\
                             --autoscale reactive --rate 4 --duration 60
    python -m repro faults   --strategies SP,SE,RD,FP \\
                             --crash-rates 0,0.002,0.01 --recovery restart
    python -m repro perf     --profile --top 25
    python -m repro serve    < requests.jsonl
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from .core import Catalog, get_strategy, make_shape, paper_relation_names
from .core.shapes import SHAPE_NAMES
from .sim import MachineConfig

#: Default directory for CLI result artifacts (JSONL, traces).  The
#: subcommands used to drop ``workload_*.jsonl``/``faults_*.jsonl``
#: into the current directory; they now land here unless ``--out``/
#: ``--jsonl`` says otherwise, so a default run never litters the
#: repository root.
RESULTS_DIR = pathlib.Path("benchmarks") / "results"


def _results_path(name: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR / name


def _add_common(parser: argparse.ArgumentParser, strategy: bool = True) -> None:
    parser.add_argument(
        "--shape", choices=SHAPE_NAMES, default="wide_bushy",
        help="query tree shape (Figure 8)",
    )
    parser.add_argument(
        "--relations", type=int, default=10, help="number of base relations"
    )
    parser.add_argument(
        "--cardinality", type=int, default=5000,
        help="tuples per relation (5000 and 40000 are the paper's sizes)",
    )
    parser.add_argument(
        "--processors", type=int, default=40, help="machine size"
    )
    if strategy:
        parser.add_argument(
            "--strategy", choices=["SP", "SE", "RD", "FP"], default="FP",
            help="parallel execution strategy (Section 3)",
        )


def _context(args):
    names = paper_relation_names(args.relations)
    tree = make_shape(args.shape, names)
    catalog = Catalog.regular(names, args.cardinality)
    return names, tree, catalog


def _cmd_simulate(args) -> int:
    from .sim.run import QueryAbortedError, simulate

    _names, tree, catalog = _context(args)
    schedule = get_strategy(args.strategy).schedule(tree, catalog, args.processors)
    try:
        result = simulate(
            schedule, catalog, MachineConfig.paper(), skew_theta=args.skew,
            deadline=args.deadline,
        )
    except QueryAbortedError as exc:
        print(f"aborted at t={exc.at:.3f}s: {exc.reason}")
        return 1
    print(result.summary())
    breakdown = result.busy_by_kind()
    print(
        f"  work {breakdown['work']:.1f}s CPU, "
        f"handshakes {breakdown['handshake']:.1f}s CPU, "
        f"startup span {result.startup_time():.2f}s, "
        f"{result.events} events"
    )
    if args.diagram:
        from .engine import utilization_diagram

        print(utilization_diagram(result, width=args.width))
    return 0


def _cmd_plan(args) -> int:
    from .xra import generate_plan_text

    _names, tree, catalog = _context(args)
    print(generate_plan_text(tree, catalog, args.strategy, args.processors))
    return 0


def _cmd_sweep(args) -> int:
    from .bench import Experiment, evaluate_claims
    from .bench.plot import ascii_plot
    from .runner import SweepSpec, run_sweep, to_sweep_result

    processors = tuple(
        range(args.min_processors, args.processors + 1, args.step)
    )
    spec = SweepSpec(
        shapes=(args.shape,),
        cardinalities=(args.cardinality,),
        processors=processors,
        skew_thetas=(args.skew,),
    )

    def progress(outcome, done, total):
        if args.quiet:
            return
        source = outcome.source
        timing = "" if source == "cache" else f" {outcome.elapsed:.2f}s"
        print(
            f"  [{done}/{total}] {outcome.job.label()} ({source}{timing})",
            file=sys.stderr,
        )

    run = run_sweep(
        spec,
        workers=args.workers,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        timeout=args.timeout,
        progress=progress,
    )
    jsonl_path = args.jsonl
    if jsonl_path is None:
        name = f"sweep_{args.shape}_{args.cardinality}.jsonl"
        if run.cache_dir is not None:
            jsonl_path = run.cache_dir / name
        else:
            jsonl_path = _results_path(name)
    run.write_jsonl(jsonl_path)

    experiment = Experiment(args.shape, args.cardinality, processors)
    sweep = to_sweep_result(run.rows(), experiment)
    print(sweep.table())
    print()
    print(ascii_plot(sweep, width=args.width))
    seconds, strategy, procs = sweep.best_cell()
    print(f"\nbest: {seconds:.2f}s ({strategy}@{procs})")
    if args.claims:
        for outcome in evaluate_claims(sweep):
            print(outcome.line())
    print(f"runner: {run.summary()}")
    print(f"results: {jsonl_path}")
    return 0


def _cmd_diagram(args) -> int:
    from .engine import ideal_diagram

    print(ideal_diagram(args.strategy, args.processors, width=args.width))
    return 0


def _cmd_advise(args) -> int:
    from .optimizer import advise_strategy

    _names, tree, catalog = _context(args)
    advice = advise_strategy(
        tree, catalog, args.processors,
        memory_holds_one_join=not args.disk_bound,
    )
    print(advice)
    if advice.runner_up:
        print(f"runner-up: {advice.runner_up}")
    return 0


def _cmd_memory(args) -> int:
    from .core.memory import memory_report, minimum_processors

    _names, tree, catalog = _context(args)
    strategy = get_strategy(args.strategy)
    schedule = strategy.schedule(tree, catalog, args.processors)
    print(memory_report(schedule, catalog))
    floor = minimum_processors(strategy, tree, catalog)
    if floor is None:
        print("does not fit at any machine size up to 512 nodes")
    else:
        print(f"smallest machine that fits this plan: {floor} nodes")
    return 0


def _cmd_optimize(args) -> int:
    from .optimizer import QueryGraph, two_phase_optimize
    from .core import render

    names = paper_relation_names(args.relations)
    graph = QueryGraph.regular(names, args.cardinality)
    plan = two_phase_optimize(
        graph, args.processors, mode="guidelines" if args.guidelines else "simulate"
    )
    print(render(plan.tree))
    print(plan.summary())
    return 0


def _cmd_workload(args) -> int:
    import json

    from .api import run_workload

    tenants = None
    if args.tenants is not None:
        tenants = json.loads(pathlib.Path(args.tenants).read_text())
    faults = None
    if args.crash_rate > 0:
        from .faults import FaultSchedule

        faults = FaultSchedule.generate(
            machine_size=args.machine_size,
            horizon=args.duration,
            seed=args.seed,
            crash_rate=args.crash_rate,
            repair_time=args.repair_time,
        )
    result = run_workload(
        args.shape if not args.paper_mix else "paper",
        arrivals=args.arrivals,
        rate=args.rate,
        duration=args.duration,
        seed=args.seed,
        machine_size=args.machine_size,
        policy=args.policy,
        share=args.share,
        strategy=args.strategy,
        cardinality=args.cardinality,
        relations=args.relations,
        clients=args.clients,
        think_time=args.think,
        queries_per_client=args.queries_per_client,
        max_concurrent=args.max_concurrent,
        queue_limit=args.queue_limit,
        memory_budget_bytes=(
            args.memory_budget_mb * 1024 * 1024
            if args.memory_budget_mb is not None else None
        ),
        skew_theta=args.skew,
        faults=faults,
        recovery=args.recovery,
        deadline=args.deadline,
        shed=args.shed,
        scheduler=args.scheduler,
        pool_size=args.pool_size,
        scheduling_cost=args.scheduling_cost,
        tenants=tenants,
        fast_path=not args.no_fast_path,
    )
    jsonl_path = args.jsonl
    if jsonl_path is None:
        jsonl_path = _results_path(
            f"workload_{args.shape}_{args.arrivals}.jsonl"
        )
    result.write_jsonl(jsonl_path)
    if not args.quiet:
        print(result.summary())
        print(f"results: {jsonl_path}")
    return 0


def _cmd_cluster(args) -> int:
    import json

    from .api import _open_pairs, _resolve_mix, run_cluster
    from .cluster import Trace
    from .workload import make_tenants

    tenants = None
    if args.tenants is not None:
        tenants = json.loads(pathlib.Path(args.tenants).read_text())
    shape = args.shape if not args.paper_mix else "paper"
    faults = None
    if args.crash_rate > 0:
        from .cluster import shard_seed
        from .faults import FaultSchedule

        # Engine-level (processor) faults, one independent seeded
        # schedule per shard — shards fail on their own timelines.
        faults = [
            FaultSchedule.generate(
                machine_size=args.machine_size,
                horizon=args.duration,
                seed=shard_seed(args.seed, shard),
                crash_rate=args.crash_rate,
                repair_time=args.repair_time,
            )
            for shard in range(args.shards)
        ]
    shard_faults = None
    if args.shard_crash_rate > 0:
        from .faults import FaultSchedule

        # Cluster-level faults: crash events name whole shards.
        shard_faults = FaultSchedule.generate(
            machine_size=args.shards,
            horizon=args.duration,
            seed=args.seed,
            crash_rate=args.shard_crash_rate,
            repair_time=args.shard_repair_time,
        )
    options = dict(
        shards=args.shards,
        placement=args.placement,
        autoscale=args.autoscale,
        scale_max=args.scale_max,
        scale_min=args.scale_min,
        scale_cooldown=args.scale_cooldown,
        workers=args.workers,
        seed=args.seed,
        machine_size=args.machine_size,
        policy=args.policy,
        share=args.share,
        strategy=args.strategy,
        cardinality=args.cardinality,
        relations=args.relations,
        queue_limit=args.queue_limit,
        skew_theta=args.skew,
        deadline=args.deadline,
        shed=args.shed,
        scheduler=args.scheduler,
        tenants=tenants,
        fast_path=not args.no_fast_path,
        faults=faults,
        recovery=args.recovery,
        shard_faults=shard_faults,
        retry_budget=args.retry_budget,
        hedge=args.hedge,
        breaker=True if args.breaker else None,
        throttle=True if args.throttle else None,
        failover=False if args.no_failover else None,
    )
    if args.trace is not None:
        trace = Trace.read(args.trace)
        result = run_cluster(shape, trace=trace, **options)
    elif args.arrivals == "closed":
        result = run_cluster(
            shape,
            arrivals="closed",
            clients=args.clients,
            think_time=args.think,
            queries_per_client=args.queries_per_client,
            duration=args.duration,
            **options,
        )
    else:
        if args.record is not None:
            # Freeze the exact stream this run will serve, then replay
            # it — the recorded trace reproduces this run bit for bit.
            mix = _resolve_mix(
                shape, args.strategy, args.cardinality, args.relations
            )
            pairs = _open_pairs(
                mix, make_tenants(tenants), args.arrivals, args.rate,
                args.duration, args.seed,
            )
            trace = Trace.from_arrivals(pairs, seed=args.seed)
            trace.write(args.record)
            if not args.quiet:
                print(f"trace: {args.record} ({len(trace)} queries)")
            result = run_cluster(shape, trace=trace, **options)
        else:
            result = run_cluster(
                shape,
                arrivals=args.arrivals,
                rate=args.rate,
                duration=args.duration,
                **options,
            )
    jsonl_path = args.jsonl
    if jsonl_path is None:
        jsonl_path = _results_path(
            f"cluster_{args.shards}x_{args.placement}_{args.autoscale}.jsonl"
        )
    result.write_jsonl(jsonl_path)
    if not args.quiet:
        print(result.summary())
        print(f"results: {jsonl_path}")
    return 0


def _cmd_chaos(args) -> int:
    import json

    from .cluster import run_chaos_campaign

    shapes = []
    for token in args.shapes.split(","):
        token = token.strip()
        if not token:
            continue
        shards, _, size = token.partition("x")
        shapes.append((int(shards), int(size)))
    rates = [float(r) for r in args.crash_rates.split(",")]
    fixture_dir = args.fixtures
    if fixture_dir is None:
        fixture_dir = RESULTS_DIR / "chaos_fixtures"
    result = run_chaos_campaign(
        cluster_shapes=tuple(shapes),
        crash_rates=tuple(rates),
        queries=args.queries,
        arrival_rate=args.rate,
        horizon=args.horizon,
        repair_time=args.repair_time,
        retry_budget=args.retry_budget,
        placement=args.placement,
        seed=args.seed,
        workers=args.workers,
        fixture_dir=fixture_dir,
    )
    out_path = args.out
    if out_path is None:
        out_path = _results_path("chaos_campaign.json")
    pathlib.Path(out_path).write_text(
        json.dumps(result.to_payload(), indent=2, sort_keys=True) + "\n"
    )
    if not args.quiet:
        print(result.summary())
        for violation in result.violations():
            print(
                f"  VIOLATION point {violation['point']} "
                f"[{violation['invariant']}]: {violation['detail']}"
            )
        for fixture in result.fixtures:
            print(f"  shrunken repro: {fixture}")
        print(f"results: {out_path}")
    return 0 if result.ok else 1


def _cmd_faults(args) -> int:
    from .faults import fault_rate_sweep
    from .runner.results import write_jsonl

    strategies = [s.strip() for s in args.strategies.split(",") if s.strip()]
    rates = [float(r) for r in args.crash_rates.split(",")]
    points = fault_rate_sweep(
        strategies=strategies,
        crash_rates=rates,
        recovery=args.recovery,
        duration=args.duration,
        rate=args.rate,
        machine_size=args.machine_size,
        seed=args.seed,
        repair_time=args.repair_time,
        cardinality=args.cardinality,
        relations=args.relations,
        policy=args.policy,
        share=args.share,
        max_retries=args.max_retries,
        retry_backoff=args.retry_backoff,
    )
    if not args.quiet:
        print(
            f"{'strategy':>8} {'crash/s':>9} {'done':>5} {'fail':>5} "
            f"{'retry':>6} {'goodput':>9} {'wasted':>7} {'mttr':>8}"
        )
        for pt in points:
            mttr = "n/a" if pt.mttr is None else f"{pt.mttr:.1f}s"
            print(
                f"{pt.strategy:>8} {pt.crash_rate:>9.4f} {pt.completed:>5} "
                f"{pt.failed:>5} {pt.retries:>6} {pt.goodput:>9.4f} "
                f"{pt.wasted_fraction:>7.1%} {mttr:>8}"
            )
    jsonl_path = args.jsonl
    if jsonl_path is None:
        jsonl_path = _results_path(f"faults_{args.recovery}.jsonl")
    write_jsonl(jsonl_path, [pt.row() for pt in points])
    if not args.quiet:
        print(f"results: {jsonl_path}")
    return 0


def _cmd_perf(args) -> int:
    """A small self-contained hot-path bench: every strategy through
    the simulator plus a repeat-heavy hosted workload, optionally under
    ``cProfile`` so perf work starts from measured hot spots instead of
    guesses (the committed numbers live in ``benchmarks/bench_perf.py``;
    this command is for finding where the time goes)."""
    import time

    from .api import run, run_workload
    from .sim import turbo

    repeats = 1 if args.smoke else args.repeats
    queries = 8 if args.smoke else 24

    def bench() -> None:
        turbo.clear_cache()
        for strategy in ("SP", "SE", "RD", "FP"):
            for _ in range(repeats):
                run(
                    "wide_bushy",
                    strategy,
                    args.processors,
                    cardinality=args.cardinality,
                )
        run_workload(
            "wide_bushy",
            arrivals="closed",
            clients=1,
            think_time=0.5,
            queries_per_client=queries,
            duration=1e9,
            seed=3,
            machine_size=args.processors,
            policy="exclusive",
            strategy="FP",
            cardinality=args.cardinality,
            fast_path=not args.no_fast_path,
        )

    if args.profile:
        import cProfile
        import io
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        bench()
        profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(args.top)
        print(stream.getvalue(), end="")
    else:
        started = time.perf_counter()
        bench()
        elapsed = time.perf_counter() - started
        print(
            f"perf bench: {elapsed:.3f}s wall "
            f"({repeats}x4 strategies @ {args.cardinality} tuples, "
            f"{queries}-query closed loop); turbo {turbo.cache_stats()}"
        )
    return 0


def _cmd_serve(args) -> int:
    from .service import serve

    if args.requests is not None:
        with open(args.requests, "r", encoding="utf-8") as in_stream:
            served = serve(in_stream, sys.stdout)
    else:
        served = serve(sys.stdin, sys.stdout)
    if not args.quiet:
        print(f"served {served} requests", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Parallel evaluation of multi-join "
        "queries' (SIGMOD 1995)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="simulate one strategy on one tree")
    _add_common(p)
    p.add_argument("--skew", type=float, default=0.0,
                   help="Zipf partitioning skew (0 = the paper's assumption)")
    p.add_argument("--diagram", action="store_true",
                   help="also print the processor-utilization diagram")
    p.add_argument("--deadline", type=float, default=None,
                   help="simulated-time response bound; the run aborts "
                        "(exit 1) if still unfinished at the deadline")
    p.add_argument("--width", type=int, default=72)
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser("plan", help="print the XRA execution plan")
    _add_common(p)
    p.set_defaults(fn=_cmd_plan)

    p = sub.add_parser("sweep", help="one figure: all strategies × processors")
    _add_common(p, strategy=False)
    # The paper's 5K sweeps run to 80 processors; "--processors" is the
    # sweep's upper end here, not a single machine size.
    p.set_defaults(processors=80)
    p.add_argument("--min-processors", type=int, default=20)
    p.add_argument("--step", type=int, default=10)
    p.add_argument("--skew", type=float, default=0.0,
                   help="Zipf partitioning skew for every point")
    p.add_argument("--claims", action="store_true",
                   help="also check the Section 4.4 claims")
    p.add_argument("--width", type=int, default=64)
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: fan out over the CPUs)")
    p.add_argument("--no-cache", action="store_true",
                   help="recompute every point, bypassing .repro_cache/")
    p.add_argument("--cache-dir", default=None,
                   help="result cache directory (default: .repro_cache/ "
                        "or $REPRO_CACHE_DIR)")
    p.add_argument("--jsonl", "--out", dest="jsonl", default=None,
                   help="JSONL results path (default: inside the cache "
                        "dir, or benchmarks/results/ without a cache)")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="per-job timeout in seconds")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-job progress on stderr")
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser("diagram", help="idealized Figure 3/4/6/7 diagram")
    p.add_argument("--strategy", choices=["SP", "SE", "RD", "FP"], default="SP")
    p.add_argument("--processors", type=int, default=10)
    p.add_argument("--width", type=int, default=72)
    p.set_defaults(fn=_cmd_diagram)

    p = sub.add_parser("advise", help="Section 5 strategy guideline")
    _add_common(p, strategy=False)
    p.add_argument("--disk-bound", action="store_true",
                   help="memory cannot hold one join entirely (Section 4.4)")
    p.set_defaults(fn=_cmd_advise)

    p = sub.add_parser("memory", help="per-node memory analysis")
    _add_common(p)
    p.set_defaults(fn=_cmd_memory)

    p = sub.add_parser("optimize", help="two-phase optimization")
    p.add_argument("--relations", type=int, default=10)
    p.add_argument("--cardinality", type=int, default=5000)
    p.add_argument("--processors", type=int, default=40)
    p.add_argument("--guidelines", action="store_true",
                   help="use the Section 5 rules instead of simulation")
    p.set_defaults(fn=_cmd_optimize)

    p = sub.add_parser(
        "workload", help="serve a multi-query workload on one shared machine"
    )
    p.add_argument("--shape", choices=SHAPE_NAMES, default="wide_bushy",
                   help="query tree shape (Figure 8)")
    p.add_argument("--paper-mix", action="store_true",
                   help="draw from all five shapes instead of --shape")
    p.add_argument("--relations", type=int, default=10)
    p.add_argument("--cardinality", type=int, default=5000)
    p.add_argument("--strategy",
                   choices=["SP", "SE", "RD", "FP", "auto"], default="FP",
                   help="execution strategy ('auto': Section 5 guideline)")
    p.add_argument("--arrivals", choices=["poisson", "fixed", "closed"],
                   default="poisson",
                   help="open-loop arrival process, or a closed loop")
    p.add_argument("--rate", type=float, default=1.0,
                   help="open-loop arrival rate (queries/second)")
    p.add_argument("--duration", type=float, default=60.0,
                   help="simulated arrival horizon in seconds")
    p.add_argument("--clients", type=int, default=4,
                   help="closed-loop client population")
    p.add_argument("--think", type=float, default=0.0,
                   help="closed-loop think time between queries")
    p.add_argument("--queries-per-client", type=int, default=None,
                   help="closed-loop per-client query budget")
    p.add_argument("--machine-size", type=int, default=40,
                   help="processors in the shared pool")
    p.add_argument("--policy",
                   choices=["exclusive", "round_robin", "guideline"],
                   default="exclusive", help="processor allocation policy")
    p.add_argument("--share", type=int, default=None,
                   help="processors per query (policy-specific default)")
    p.add_argument("--max-concurrent", type=int, default=None,
                   help="admission gate: concurrent query bound")
    p.add_argument("--queue-limit", type=int, default=None,
                   help="admission queue bound (extra arrivals rejected)")
    p.add_argument("--memory-budget-mb", type=float, default=None,
                   help="admission gate: analytic memory budget (MB)")
    p.add_argument("--skew", type=float, default=0.0,
                   help="Zipf partitioning skew for every query")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for arrivals, mix sampling and think loops")
    p.add_argument("--crash-rate", type=float, default=0.0,
                   help="seeded processor crash rate (crashes/second "
                        "machine-wide; 0 = fault-free)")
    p.add_argument("--repair-time", type=float, default=60.0,
                   help="seconds until a crashed processor rejoins")
    p.add_argument("--recovery",
                   choices=["fail", "restart", "reassign"], default="fail",
                   help="what happens to a crashed query")
    p.add_argument("--deadline", type=float, default=None,
                   help="per-query deadline in simulated seconds from "
                        "arrival (queued queries expire, running ones "
                        "abort at the deadline)")
    p.add_argument("--shed",
                   choices=["drop_newest", "drop_oldest", "deadline_aware"],
                   default=None,
                   help="load-shedding policy at admission")
    p.add_argument("--scheduler",
                   choices=["fifo", "edf", "sjf", "priority", "wfq"],
                   default=None,
                   help="queue-ordering policy (default: the legacy "
                        "FIFO deque; 'fifo' is its byte-identical alias)")
    p.add_argument("--pool-size", type=int, default=None,
                   help="scheduler visibility pool: examine only the "
                        "first K queued queries per decision")
    p.add_argument("--scheduling-cost", type=float, default=0.0,
                   help="simulated seconds charged per admission decision")
    p.add_argument("--tenants", default=None, metavar="SPEC_JSON",
                   help="path to a tenant spec file: "
                        '{"tenants": [{"name": ..., "weight": ..., '
                        '"rate": ...}, ...]}')
    p.add_argument("--no-fast-path", action="store_true",
                   help="force every query onto the classic event loop "
                        "(results are bit-identical either way)")
    p.add_argument("--jsonl", "--out", dest="jsonl", default=None,
                   help="per-query JSONL path (default: benchmarks/results/"
                        "workload_<shape>_<arrivals>.jsonl)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the summary line")
    p.set_defaults(fn=_cmd_workload)

    p = sub.add_parser(
        "cluster",
        help="serve traffic on a shared-nothing cluster of workload shards",
    )
    p.add_argument("--shape", choices=SHAPE_NAMES, default="wide_bushy",
                   help="query tree shape (Figure 8)")
    p.add_argument("--paper-mix", action="store_true",
                   help="draw from all five shapes instead of --shape")
    p.add_argument("--relations", type=int, default=10)
    p.add_argument("--cardinality", type=int, default=5000)
    p.add_argument("--strategy",
                   choices=["SP", "SE", "RD", "FP", "auto"], default="FP",
                   help="execution strategy ('auto': Section 5 guideline)")
    p.add_argument("--shards", type=int, default=2,
                   help="independent workload-engine shards")
    p.add_argument("--placement",
                   choices=["hash", "least_loaded", "round_robin"],
                   default="hash",
                   help="tenant→shard routing policy")
    p.add_argument("--autoscale",
                   choices=["static", "reactive", "predictive"],
                   default="static",
                   help="per-shard elasticity policy")
    p.add_argument("--scale-max", type=int, default=None,
                   help="elastic capacity ceiling per shard "
                        "(default: 2x --machine-size)")
    p.add_argument("--scale-min", type=int, default=None,
                   help="elastic capacity floor per shard "
                        "(default: --machine-size)")
    p.add_argument("--scale-cooldown", type=float, default=None,
                   help="simulated seconds between scale events")
    p.add_argument("--workers", type=int, default=None,
                   help="run shards on a process pool (byte-identical "
                        "to the serial run)")
    p.add_argument("--trace", default=None, metavar="TRACE_JSON",
                   help="replay this recorded trace instead of "
                        "generating traffic")
    p.add_argument("--record", default=None, metavar="TRACE_JSON",
                   help="record the generated open-loop stream to this "
                        "trace file, then serve it")
    p.add_argument("--arrivals", choices=["poisson", "fixed", "closed"],
                   default="poisson",
                   help="open-loop arrival process, or a closed loop")
    p.add_argument("--rate", type=float, default=1.0,
                   help="open-loop arrival rate (queries/second, "
                        "cluster-wide)")
    p.add_argument("--duration", type=float, default=60.0,
                   help="simulated arrival horizon in seconds")
    p.add_argument("--clients", type=int, default=4,
                   help="closed-loop client population (split round-robin "
                        "across shards)")
    p.add_argument("--think", type=float, default=0.0,
                   help="closed-loop think time between queries")
    p.add_argument("--queries-per-client", type=int, default=None,
                   help="closed-loop per-client query budget")
    p.add_argument("--machine-size", type=int, default=40,
                   help="processors per shard")
    p.add_argument("--policy",
                   choices=["exclusive", "round_robin", "guideline"],
                   default="exclusive", help="processor allocation policy")
    p.add_argument("--share", type=int, default=None,
                   help="processors per query (policy-specific default)")
    p.add_argument("--queue-limit", type=int, default=None,
                   help="per-shard admission queue bound")
    p.add_argument("--skew", type=float, default=0.0,
                   help="Zipf partitioning skew for every query")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for arrivals, mix sampling and deadlines")
    p.add_argument("--deadline", type=float, default=None,
                   help="per-query deadline in simulated seconds")
    p.add_argument("--shed",
                   choices=["drop_newest", "drop_oldest", "deadline_aware"],
                   default=None,
                   help="load-shedding policy at admission")
    p.add_argument("--scheduler",
                   choices=["fifo", "edf", "sjf", "priority", "wfq"],
                   default=None,
                   help="per-shard queue-ordering policy")
    p.add_argument("--tenants", default=None, metavar="SPEC_JSON",
                   help="path to a tenant spec file")
    p.add_argument("--no-fast-path", action="store_true",
                   help="force every query onto the classic event loop")
    p.add_argument("--crash-rate", type=float, default=0.0,
                   help="per-shard processor crash rate (crashes/second; "
                        "each shard draws its own seeded schedule)")
    p.add_argument("--repair-time", type=float, default=60.0,
                   help="seconds until a crashed processor rejoins")
    p.add_argument("--recovery",
                   choices=["fail", "restart", "reassign"], default="fail",
                   help="per-shard recovery policy for crashed queries")
    p.add_argument("--shard-crash-rate", type=float, default=0.0,
                   help="whole-shard crash rate (crashes/second across "
                        "the cluster; switches to the coordinated "
                        "resilient mode)")
    p.add_argument("--shard-repair-time", type=float, default=30.0,
                   help="seconds until a crashed shard rejoins the ring")
    p.add_argument("--retry-budget", type=int, default=None,
                   help="cluster-level re-dispatches per aborted query "
                        "(resilient mode; exponential backoff)")
    p.add_argument("--hedge", type=float, default=None, metavar="PCT",
                   help="hedge requests whose forecast exceeds this "
                        "percentile of recent latencies (resilient mode)")
    p.add_argument("--breaker", action="store_true",
                   help="per-shard circuit breakers (resilient mode)")
    p.add_argument("--throttle", action="store_true",
                   help="per-tenant token-bucket rate SLOs at cluster "
                        "admission (resilient mode)")
    p.add_argument("--no-failover", action="store_true",
                   help="resilient mode without failover: a dead home "
                        "shard fails its queries (baseline comparisons)")
    p.add_argument("--jsonl", "--out", dest="jsonl", default=None,
                   help="per-query JSONL path (default: benchmarks/results/"
                        "cluster_<shards>x_<placement>_<autoscale>.jsonl)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the summary line")
    p.set_defaults(fn=_cmd_cluster)

    p = sub.add_parser(
        "chaos",
        help="seeded fault-campaign sweep over cluster shapes with "
             "invariant checks and failure shrinking",
    )
    p.add_argument("--shapes", default="2x8,4x8",
                   help="comma-separated cluster shapes as "
                        "SHARDSxPROCESSORS (e.g. '2x8,4x16')")
    p.add_argument("--crash-rates", default="0,0.05",
                   help="comma-separated whole-shard crash rates "
                        "(crashes/second)")
    p.add_argument("--queries", type=int, default=30,
                   help="open-loop queries per campaign point")
    p.add_argument("--rate", type=float, default=2.0,
                   help="arrival rate per point (queries/second)")
    p.add_argument("--horizon", type=float, default=60.0,
                   help="fault-schedule horizon in simulated seconds")
    p.add_argument("--repair-time", type=float, default=15.0,
                   help="seconds until a crashed shard rejoins")
    p.add_argument("--retry-budget", type=int, default=3,
                   help="cluster-level retries per aborted query")
    p.add_argument("--placement",
                   choices=["hash", "least_loaded", "round_robin"],
                   default="hash", help="routing policy for every point")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (points derive their own)")
    p.add_argument("--workers", type=int, default=None,
                   help="fan campaign points over a process pool "
                        "(payload is identical at any worker count)")
    p.add_argument("--fixtures", default=None, metavar="DIR",
                   help="directory for shrunken-schedule repro fixtures "
                        "(default: benchmarks/results/chaos_fixtures/)")
    p.add_argument("--out", default=None,
                   help="campaign JSON payload path (default: benchmarks/"
                        "results/chaos_campaign.json)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the summary lines")
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser(
        "faults",
        help="strategy-vs-fault-rate resilience sweep on the workload engine",
    )
    p.add_argument("--strategies", default="SP,SE,RD,FP",
                   help="comma-separated strategies to compare")
    p.add_argument("--crash-rates", default="0,0.002,0.01",
                   help="comma-separated crash rates (crashes/second)")
    p.add_argument("--recovery",
                   choices=["fail", "restart", "reassign"],
                   default="restart", help="recovery policy for every cell")
    p.add_argument("--rate", type=float, default=0.05,
                   help="open-loop arrival rate (queries/second)")
    p.add_argument("--duration", type=float, default=300.0,
                   help="simulated arrival horizon in seconds")
    p.add_argument("--machine-size", type=int, default=40,
                   help="processors in the shared pool")
    p.add_argument("--policy",
                   choices=["exclusive", "round_robin", "guideline"],
                   default="exclusive", help="processor allocation policy")
    p.add_argument("--share", type=int, default=None,
                   help="processors per query (policy-specific default)")
    p.add_argument("--relations", type=int, default=10)
    p.add_argument("--cardinality", type=int, default=5000)
    p.add_argument("--repair-time", type=float, default=60.0,
                   help="seconds until a crashed processor rejoins")
    p.add_argument("--max-retries", type=int, default=3,
                   help="extra attempts before a crashed query fails")
    p.add_argument("--retry-backoff", type=float, default=1.0,
                   help="base of the exponential restart backoff")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for arrivals, mix and fault generation")
    p.add_argument("--jsonl", "--out", dest="jsonl", default=None,
                   help="per-cell JSONL path (default: benchmarks/results/"
                        "faults_<recovery>.jsonl)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the table")
    p.set_defaults(fn=_cmd_faults)

    p = sub.add_parser(
        "perf",
        help="hot-path micro-bench, optionally under cProfile "
             "(committed numbers come from benchmarks/bench_perf.py)",
    )
    p.add_argument("--profile", action="store_true",
                   help="wrap the bench in cProfile and print the "
                        "hottest functions by cumulative time")
    p.add_argument("--top", type=int, default=25,
                   help="profile rows to print (with --profile)")
    p.add_argument("--repeats", type=int, default=3,
                   help="simulator runs per strategy")
    p.add_argument("--cardinality", type=int, default=2000,
                   help="tuples per relation")
    p.add_argument("--processors", type=int, default=40,
                   help="machine size")
    p.add_argument("--smoke", action="store_true",
                   help="minimal work (CI artifact generation)")
    p.add_argument("--no-fast-path", action="store_true",
                   help="profile the classic event loop instead of "
                        "the turbo fast path")
    p.set_defaults(fn=_cmd_perf)

    p = sub.add_parser(
        "serve", help="JSONL query service: one request per line on stdin"
    )
    p.add_argument("--requests", default=None,
                   help="read requests from this file instead of stdin")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the served-count line on stderr")
    p.set_defaults(fn=_cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
