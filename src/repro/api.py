"""The unified execution facade.

Historically the reproduction grew four divergent front-ends — the
machine simulation (:func:`repro.engine.simulate_strategy`), real
local execution (:func:`repro.engine.execute_schedule`), the threaded
dataflow executor (:func:`repro.engine.execute_threaded`), and the
zero-overhead idealized runs (:func:`repro.engine.ideal_simulation`) —
each with its own argument spelling.  :func:`run` is the single entry
point over all four; the legacy names remain available from
:mod:`repro.engine` as deprecated aliases.

Quickstart::

    from repro.api import run

    result = run("wide_bushy", "FP", 40)          # simulate (default)
    print(result.summary())

    ideal = run("wide_bushy", "SP", 10, "ideal")  # Figure 3-style run
    real = run("wide_bushy", "SE", 6, "local",    # real data, oracle-checked
               cardinality=200)

Sweeps over many points go through :func:`sweep` (the parallel runner
of :mod:`repro.runner`), and multi-query traffic on one shared machine
through :func:`run_workload` (the workload engine of
:mod:`repro.workload`).
"""

from __future__ import annotations

from typing import Optional, Union

from .core.cost import Catalog, CostModel
from .core.shapes import SHAPE_NAMES, make_shape, paper_relation_names
from .core.strategies import Strategy, get_strategy
from .core.trees import Join, Leaf, Node, leaves
from .sim.machine import MachineConfig
from .sim.watchdog import DEFAULT_MAX_EVENTS_PER_INSTANT

#: The execution backends :func:`run` dispatches between.
BACKENDS = ("sim", "local", "threaded", "ideal")

#: Default number of base relations when a shape name is given.
DEFAULT_RELATIONS = 10

#: Default tuples per relation (the paper's 5K experiment).
DEFAULT_CARDINALITY = 5_000

#: The frozen (v1) keyword-only surface of :func:`run`.  The execution
#: context (``catalog``/``config``/``cost_model``/``skew_theta``/
#: ``cardinality``/``faults``/``deadline``) is spelled identically in
#: :func:`run_workload`; the rest are front-end-specific.
RUN_KEYWORDS = (
    "catalog", "config", "cost_model", "skew_theta", "cardinality",
    "relations", "resolve", "timeout", "faults", "deadline",
)

#: The frozen (v1) keyword-only surface of :func:`run_workload`.
#: Extended additively post-freeze by the scheduling/multi-tenancy
#: keywords (``scheduler``/``pool_size``/``scheduling_cost``/
#: ``tenants``) and the turbo-v2 ``fast_path`` toggle — existing call
#: sites are untouched.
RUN_WORKLOAD_KEYWORDS = (
    "arrivals", "rate", "duration", "seed", "machine_size", "policy",
    "share", "strategy", "cardinality", "relations", "clients",
    "think_time", "queries_per_client", "max_concurrent", "queue_limit",
    "memory_budget_bytes", "config", "cost_model", "skew_theta",
    "faults", "recovery", "max_retries", "retry_backoff",
    "rejected_retry_delay", "deadline", "shed", "cancellations",
    "watchdog_limit", "scheduler", "pool_size", "scheduling_cost",
    "tenants", "fast_path",
)

#: The frozen keyword-only surface of :func:`run_cluster`.  The
#: traffic/engine keywords are spelled identically to
#: :func:`run_workload` (same defaults), so a 1-shard static cluster
#: is a drop-in spelling of the same run; the cluster-specific prefix
#: (``trace`` through ``workers``) is new surface.
RUN_CLUSTER_KEYWORDS = (
    "trace", "shards", "placement", "autoscale", "scale_max",
    "scale_min", "scale_cooldown", "workers",
    "arrivals", "rate", "duration", "seed", "machine_size", "policy",
    "share", "strategy", "cardinality", "relations", "clients",
    "think_time", "queries_per_client", "max_concurrent", "queue_limit",
    "memory_budget_bytes", "config", "cost_model", "skew_theta",
    "rejected_retry_delay", "deadline", "shed", "watchdog_limit",
    "scheduler", "pool_size", "scheduling_cost", "tenants", "fast_path",
    # Extended additively post-freeze by the resilience surface:
    # engine-level per-shard faults, and the coordinated-mode knobs
    # (any of shard_faults/retry_budget/hedge/breaker/throttle/failover
    # switches the run to the single-clock resilient cluster).
    "faults", "recovery", "max_retries", "retry_backoff",
    "shard_faults", "retry_budget", "hedge", "breaker", "throttle",
    "failover",
)


def _reject_unknown_keywords(func_name: str, unknown, accepted) -> None:
    """Shared keyword gate of the v1 surface.

    Both entry points funnel their ``**kwargs`` through here so a typo
    fails the same way everywhere: a :class:`TypeError` naming the
    rejected keywords *and* the full accepted set (plain ``def``
    signatures reject unknowns too, but name only the first offender
    and never say what would have been accepted).
    """
    if unknown:
        raise TypeError(
            f"{func_name}() got unexpected keyword argument(s) "
            f"{sorted(unknown)}; accepted keywords: {', '.join(accepted)}"
        )


def run(
    tree_or_shape: Union[str, Node],
    strategy: Union[str, Strategy] = "FP",
    processors: int = 40,
    backend: str = "sim",
    *,
    catalog: Optional[Catalog] = None,
    config: Optional[MachineConfig] = None,
    cost_model: Optional[CostModel] = None,
    skew_theta: float = 0.0,
    cardinality: int = DEFAULT_CARDINALITY,
    relations=None,
    resolve=None,
    timeout: Optional[float] = None,
    faults=None,
    deadline: Optional[float] = None,
    **unknown,
):
    """Plan ``tree_or_shape`` with ``strategy`` and execute it on one
    of the four backends.

    ``tree_or_shape``
        A :class:`~repro.core.trees.Node` join tree, or one of the
        paper's shape names (``"wide_bushy"``, ...) which is built over
        ten relations.
    ``backend``
        ``"sim"`` — discrete-event machine simulation; returns a
        :class:`~repro.sim.metrics.SimulationResult`.
        ``"ideal"`` — the same simulation on the zero-overhead machine
        (Figures 3/4/6/7); returns a ``SimulationResult``.
        ``"local"`` — real execution on actual relations; returns an
        :class:`~repro.engine.local.ExecutionResult`.
        ``"threaded"`` — the concurrent dataflow executor; returns the
        result :class:`~repro.relational.Relation`.
    ``catalog`` / ``cardinality``
        ``catalog`` defaults to the paper's regular catalog over the
        tree's leaves at ``cardinality`` tuples each.
    ``config`` / ``cost_model`` / ``skew_theta``
        The uniform execution context of the simulating backends.  The
        real-data backends (``local``/``threaded``) reject ``config``
        and ``skew_theta`` — they execute, rather than model, the run.
    ``relations``
        Mapping of leaf name to :class:`~repro.relational.Relation`
        for the real-data backends; generated Wisconsin data at
        ``cardinality`` tuples when omitted.
    ``resolve``
        Join-semantics resolver for ``backend="threaded"`` (defaults
        to natural-join semantics, or Wisconsin semantics when this
        call generated the Wisconsin data itself).
    ``timeout``
        Wall-clock bound in seconds for ``backend="threaded"`` — the
        only backend that can be abandoned mid-run (its dataflow
        threads are daemons); defaults to 60 seconds there.  The other
        backends run to completion on the calling thread and cannot
        honor a wall-clock bound; passing ``timeout`` with them is an
        error (v1 freeze — it was silently ignored pre-facade, then a
        :class:`DeprecationWarning` for one release).
    ``faults``
        A :class:`~repro.faults.FaultSchedule` (or prepared
        :class:`~repro.faults.FaultInjector`) armed against the
        simulating backends; a crash that hits the query raises
        :class:`~repro.faults.QueryAbortedError` (a single query on a
        dedicated machine has nothing to recover to — recovery
        policies live in :func:`run_workload`).  An empty schedule is
        a bit-for-bit no-op.  Rejected by the real-data backends.
    ``deadline``
        Response-time bound in *simulated* seconds for the simulating
        backends: a run still unfinished at the deadline instant is
        aborted through the same machinery
        (:class:`~repro.faults.QueryAbortedError` with
        ``reason="deadline ..."``).  A deadline the run beats leaves
        the result bit-for-bit identical to a deadline-free run.
        Rejected by the real-data backends (use ``timeout`` for a
        wall-clock bound on ``threaded``).
    """
    _reject_unknown_keywords("run", unknown, RUN_KEYWORDS)
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if timeout is not None and backend != "threaded":
        raise ValueError(
            f"'timeout' applies to backend='threaded' only; backend "
            f"{backend!r} runs to completion on the calling thread and "
            f"cannot honor a wall-clock bound (use 'deadline' for a "
            f"simulated-time bound on the simulating backends)"
        )
    if timeout is not None and timeout <= 0:
        raise ValueError("timeout must be positive")
    tree = _resolve_tree(tree_or_shape)
    names = [leaf.name for leaf in leaves(tree)]
    if catalog is None:
        catalog = Catalog.regular(names, cardinality)
    if isinstance(strategy, str):
        strategy = get_strategy(strategy)
    schedule = strategy.schedule(
        tree, catalog, processors, cost_model or CostModel()
    )

    if backend in ("sim", "ideal"):
        if relations is not None or resolve is not None:
            raise ValueError(
                f"backend {backend!r} simulates; 'relations' and "
                f"'resolve' do not apply"
            )
        from .sim.run import simulate

        if config is None:
            config = (
                MachineConfig.ideal() if backend == "ideal"
                else MachineConfig.paper()
            )
        return simulate(
            schedule, catalog, config,
            cost_model=cost_model, skew_theta=skew_theta,
            faults=faults, deadline=deadline,
        )

    # Real-data backends: they execute rather than model, so the
    # simulation-only knobs are rejected instead of silently ignored.
    if faults is not None:
        raise ValueError(
            f"backend {backend!r} runs on real data; fault injection "
            f"applies to the simulating backends only"
        )
    if deadline is not None:
        raise ValueError(
            f"backend {backend!r} runs on real data; a simulated-time "
            f"deadline does not apply (use 'timeout' for wall-clock "
            f"bounds on backend='threaded')"
        )
    if config is not None:
        raise ValueError(
            f"backend {backend!r} runs on real data; 'config' does not apply"
        )
    if skew_theta != 0.0:
        raise ValueError(
            f"backend {backend!r} runs on real data; data skew is a "
            f"property of the relations, not a parameter"
        )
    generated = relations is None
    if generated:
        from .relational.wisconsin import make_query_relations

        relations = dict(
            zip(names, make_query_relations(len(names), cardinality, seed=0))
        )

    if backend == "local":
        if resolve is not None:
            raise ValueError("'resolve' applies to backend='threaded' only")
        from .engine.local import execute_schedule

        return execute_schedule(schedule, relations)

    from .engine.threaded import execute_threaded

    if resolve is None:
        if generated:
            from .relational.query import wisconsin_resolution

            resolve = wisconsin_resolution
        else:
            from .relational.query import natural_resolution

            resolve = natural_resolution
    return execute_threaded(
        schedule,
        relations,
        timeout=timeout if timeout is not None else 60.0,
        resolve=resolve,
    )


def sweep(spec, **options):
    """Run a :class:`~repro.runner.SweepSpec` on the parallel runner.

    Thin convenience over :func:`repro.runner.run_sweep`; accepts the
    same keyword options (``workers``, ``cache``, ``cache_dir``,
    ``timeout``, ``retries``, ``progress``).
    """
    from .runner import run_sweep

    return run_sweep(spec, **options)


def run_workload(
    mix_or_shape="wide_bushy",
    *,
    arrivals: str = "poisson",
    rate: float = 1.0,
    duration: float = 60.0,
    seed: int = 0,
    machine_size: int = 40,
    policy: str = "exclusive",
    share: Optional[int] = None,
    strategy: str = "FP",
    cardinality: int = DEFAULT_CARDINALITY,
    relations: int = DEFAULT_RELATIONS,
    clients: int = 4,
    think_time: float = 0.0,
    queries_per_client: Optional[int] = None,
    max_concurrent: Optional[int] = None,
    queue_limit: Optional[int] = None,
    memory_budget_bytes: Optional[float] = None,
    config: Optional[MachineConfig] = None,
    cost_model: Optional[CostModel] = None,
    skew_theta: float = 0.0,
    faults=None,
    recovery: str = "fail",
    max_retries: int = 3,
    retry_backoff: float = 1.0,
    rejected_retry_delay: Optional[float] = None,
    deadline=None,
    shed=None,
    cancellations=None,
    watchdog_limit: Optional[int] = DEFAULT_MAX_EVENTS_PER_INSTANT,
    scheduler=None,
    pool_size: Optional[int] = None,
    scheduling_cost: float = 0.0,
    tenants=None,
    fast_path: bool = True,
    **unknown,
):
    """Serve a stream of queries on one shared simulated machine.

    ``mix_or_shape``
        A :class:`~repro.workload.QueryMix`, one of the paper's shape
        names (a single-spec mix over ``strategy``/``cardinality``),
        or ``"paper"`` for the uniform mix over all five shapes and
        the four strategies at ``cardinality``.
    ``arrivals``
        ``"poisson"`` / ``"fixed"`` — open loop at ``rate`` queries
        per simulated second for ``duration`` seconds; ``"closed"`` —
        ``clients`` users with ``think_time``, stopping at
        ``queries_per_client`` or the ``duration`` horizon.
    ``policy`` / ``share``
        Allocation policy name (:data:`repro.workload.POLICY_NAMES`)
        and its per-query processor share (policy-specific default).
    ``faults`` / ``recovery`` / ``max_retries`` / ``retry_backoff``
        Optional :class:`~repro.faults.FaultSchedule` and the recovery
        policy (:data:`repro.workload.RECOVERY_POLICIES`) applied to
        crashed queries; see :class:`~repro.workload.WorkloadEngine`.
        The result then carries resilience metrics
        (``resilience_summary()``).
    ``rejected_retry_delay``
        Zero-think-time closed-loop retry delay after a rejection
        (default :data:`repro.workload.REJECTED_RETRY_DELAY`).
    ``deadline`` / ``shed``
        Request-lifecycle knobs: ``deadline`` is the default per-query
        response-time bound in simulated seconds from arrival (a float,
        or a ``(lo, hi)`` tuple sampled per query with the run's
        ``seed``; per-spec deadlines override it), and ``shed`` names
        the load-shedding policy
        (:data:`repro.workload.SHED_POLICY_NAMES`; ``None`` keeps the
        bare ``queue_limit`` bounce).  The result then carries
        lifecycle metrics (``lifecycle_summary()``).
    ``cancellations``
        Optional sequence of ``(time, query_index)`` pairs: each
        schedules a cancellation of that submission-order query at the
        simulated instant (unknown indices and already-terminal
        queries are no-ops).
    ``watchdog_limit``
        Livelock-watchdog trip threshold (events at one simulated
        instant); ``None`` disables the watchdog.
    ``scheduler`` / ``pool_size`` / ``scheduling_cost``
        Queue-ordering policy: ``None`` keeps the legacy FIFO deque
        (bit-for-bit), a name from
        :data:`repro.workload.SCHEDULER_NAMES` (``"fifo"`` / ``"edf"``
        / ``"sjf"`` / ``"priority"`` / ``"wfq"``) or a
        :class:`~repro.workload.Scheduler` instance plugs the decision
        in.  ``pool_size`` bounds the scheduler's visibility to the
        first K queued queries; ``scheduling_cost`` charges each
        admission decision on the simulated clock.
    ``tenants``
        Per-tenant contracts — :class:`~repro.workload.TenantSpec`
        instances, payload dicts, or a ``{"tenants": [...]}`` JSON
        document (every form :func:`repro.workload.make_tenants`
        accepts).  Tenants with a ``rate`` get their own seeded
        open-loop arrival stream (specs tagged with the tenant name,
        streams merged in time order); the per-tenant weights,
        priorities, default deadlines, and queue/concurrency caps
        apply either way.  The result then carries per-tenant metrics
        (``tenant_summary()``, ``latency_stats(tenant=...)``).
    ``fast_path``
        Attempt the turbo analytic fast path for single-occupancy
        epochs (default on).  Results are bit-identical either way;
        ``False`` forces every query onto the classic event loop
        (useful for benchmarking and equivalence tests).  The result's
        ``fast_path_queries`` counts the epochs that replayed
        analytically.

    Returns a :class:`~repro.workload.WorkloadResult`; its
    ``write_jsonl`` emits one deterministic row per query.
    """
    _reject_unknown_keywords("run_workload", unknown, RUN_WORKLOAD_KEYWORDS)
    from .workload import (
        REJECTED_RETRY_DELAY,
        WorkloadEngine,
        make_policy,
        make_tenants,
    )

    mix = _resolve_mix(mix_or_shape, strategy, cardinality, relations)
    tenant_map = make_tenants(tenants)
    engine = WorkloadEngine(
        machine_size,
        make_policy(policy, share),
        config=config,
        cost_model=cost_model,
        skew_theta=skew_theta,
        max_concurrent=max_concurrent,
        queue_limit=queue_limit,
        memory_budget_bytes=memory_budget_bytes,
        faults=faults,
        recovery=recovery,
        max_retries=max_retries,
        retry_backoff=retry_backoff,
        rejected_retry_delay=(
            REJECTED_RETRY_DELAY
            if rejected_retry_delay is None
            else rejected_retry_delay
        ),
        deadline=deadline,
        deadline_seed=seed,
        shed=shed,
        watchdog_limit=watchdog_limit,
        scheduler=scheduler,
        pool_size=pool_size,
        scheduling_cost=scheduling_cost,
        tenants=tenant_map,
        fast_path=fast_path,
    )
    for when, index in cancellations or ():
        engine.cancel_at(when, index)
    if arrivals == "closed":
        return engine.run_closed(
            mix,
            clients,
            think_time=think_time,
            queries_per_client=queries_per_client,
            duration=duration,
            seed=seed,
        )
    return engine.run_open(
        _open_pairs(mix, tenant_map, arrivals, rate, duration, seed)
    )


def _resolve_mix(mix_or_shape, strategy, cardinality, relations):
    """The shared mix spelling of :func:`run_workload` and
    :func:`run_cluster`: a :class:`~repro.workload.QueryMix` passes
    through, ``"paper"`` builds the uniform paper mix, and any other
    string is a shape name wrapped in a single-spec mix."""
    from .workload import QueryMix, QuerySpec

    if isinstance(mix_or_shape, QueryMix):
        return mix_or_shape
    if mix_or_shape == "paper":
        return QueryMix.paper(
            cardinalities=(cardinality,),
            strategies=(strategy,) if strategy != "auto" else ("auto",),
            relations=relations,
        )
    return QueryMix.single(
        QuerySpec(mix_or_shape, cardinality, strategy, relations)
    )


def _open_pairs(mix, tenant_map, arrivals, rate, duration, seed):
    """The shared open-loop arrival stream of :func:`run_workload` and
    :func:`run_cluster` — identical bytes through either facade.

    With rated tenants: one seeded stream per rated tenant, specs
    tagged with the tenant name, merged in (time, tenant) order —
    deterministic regardless of tenant count, and each tenant's own
    stream is unchanged by the others' rates (isolation sweeps vary
    one tenant's load without perturbing the rest).
    """
    from .workload import make_arrivals, sample_specs

    rated = [
        (name, spec) for name, spec in sorted(tenant_map.items())
        if spec.rate is not None
    ]
    if rated:
        from dataclasses import replace as _replace

        pairs = []
        for position, (name, tenant) in enumerate(rated):
            tenant_seed = seed + 1_000_003 * (position + 1)
            times = make_arrivals(
                arrivals, tenant.rate, duration, tenant_seed
            )
            specs = sample_specs(mix, len(times), tenant_seed)
            pairs.extend(
                (time, _replace(spec, tenant=name))
                for time, spec in zip(times, specs)
            )
        pairs.sort(key=lambda pair: (pair[0], pair[1].tenant))
        return pairs
    times = make_arrivals(arrivals, rate, duration, seed)
    specs = sample_specs(mix, len(times), seed)
    return list(zip(times, specs))


def run_cluster(
    mix_or_shape="wide_bushy",
    *,
    trace=None,
    shards: int = 2,
    placement: str = "hash",
    autoscale: str = "static",
    scale_max: Optional[int] = None,
    scale_min: Optional[int] = None,
    scale_cooldown: Optional[float] = None,
    workers: Optional[int] = None,
    arrivals: str = "poisson",
    rate: float = 1.0,
    duration: float = 60.0,
    seed: int = 0,
    machine_size: int = 40,
    policy: str = "exclusive",
    share: Optional[int] = None,
    strategy: str = "FP",
    cardinality: int = DEFAULT_CARDINALITY,
    relations: int = DEFAULT_RELATIONS,
    clients: int = 4,
    think_time: float = 0.0,
    queries_per_client: Optional[int] = None,
    max_concurrent: Optional[int] = None,
    queue_limit: Optional[int] = None,
    memory_budget_bytes: Optional[float] = None,
    config: Optional[MachineConfig] = None,
    cost_model: Optional[CostModel] = None,
    skew_theta: float = 0.0,
    rejected_retry_delay: Optional[float] = None,
    deadline=None,
    shed=None,
    watchdog_limit: Optional[int] = DEFAULT_MAX_EVENTS_PER_INSTANT,
    scheduler=None,
    pool_size: Optional[int] = None,
    scheduling_cost: float = 0.0,
    tenants=None,
    fast_path: bool = True,
    faults=None,
    recovery: str = "fail",
    max_retries: int = 3,
    retry_backoff: float = 1.0,
    shard_faults=None,
    retry_budget: Optional[int] = None,
    hedge=None,
    breaker=None,
    throttle=None,
    failover: Optional[bool] = None,
    **unknown,
):
    """Serve traffic on a shared-nothing cluster of workload shards.

    Every shard is an independent :class:`~repro.workload.WorkloadEngine`
    (its own simulated clock, processor pool, scheduler, and admission
    control) of ``machine_size`` processors; the router splits the
    arrival stream across them before any shard simulates.  The
    traffic/engine keywords are spelled exactly like
    :func:`run_workload` — a 1-shard static cluster is *byte-identical*
    to the single-engine run (pinned against the golden fixtures).

    ``trace``
        A :class:`~repro.cluster.Trace` (or a path to its JSON file) to
        replay instead of generating traffic: the trace's recorded
        arrivals are the exact open-loop stream, bit for bit.  Mutually
        exclusive with ``arrivals="closed"``; the generation knobs
        (``rate``/``duration``/``arrivals``) are ignored.
    ``shards`` / ``placement``
        Shard count and the routing policy
        (:data:`repro.cluster.PLACEMENT_NAMES`): ``"hash"`` —
        consistent tenant→shard hashing on a SHA-1 ring (untenanted
        queries spread by submission index); ``"least_loaded"`` — the
        shard with the earliest analytic busy-until forecast;
        ``"round_robin"`` — submission order modulo shard count.
        Closed-loop traffic splits its *clients* round-robin instead
        (there is no global arrival stream to place).
    ``autoscale`` / ``scale_max`` / ``scale_min`` / ``scale_cooldown``
        Per-shard elasticity (:data:`repro.cluster.AUTOSCALE_NAMES`):
        ``"static"`` pins every shard at ``machine_size``;
        ``"reactive"`` steps capacity on queue-depth thresholds;
        ``"predictive"`` jumps to the analytic backlog forecast.
        Capacity moves between ``scale_min`` (default ``machine_size``)
        and ``scale_max`` (default ``2 * machine_size``) with
        ``scale_cooldown`` simulated seconds between scale events
        (default :data:`repro.cluster.DEFAULT_COOLDOWN`); scale-up
        repairs drained processors, scale-down drains without aborting
        running queries.
    ``workers``
        Fan the shards over a process pool (the output is byte-identical
        to the serial run; reports merge in shard order).
    ``faults`` / ``recovery`` / ``max_retries`` / ``retry_backoff``
        Engine-level (processor) fault injection, per shard: a single
        :class:`~repro.faults.FaultSchedule` applies to every shard, a
        sequence of length ``shards`` (``None`` holes) or a
        ``{shard: schedule}`` dict targets shards individually; the
        recovery knobs are spelled like :func:`run_workload`.
    ``shard_faults`` / ``retry_budget`` / ``hedge`` / ``breaker`` /
    ``throttle`` / ``failover``
        The resilience surface (DESIGN.md §7e).  Passing *any* of them
        switches to the coordinated single-clock cluster
        (:class:`~repro.cluster.ResilientCluster`): ``shard_faults`` is
        a cluster-level :class:`~repro.faults.FaultSchedule` whose
        crash events name *shards*; ``retry_budget`` re-dispatches of
        aborted queries (exponential backoff in simulated time);
        ``hedge``/``breaker``/``throttle`` take ``True``, a policy
        dict, or a policy instance
        (:class:`~repro.cluster.HedgePolicy` /
        :class:`~repro.cluster.BreakerPolicy` /
        :class:`~repro.cluster.ThrottlePolicy`); ``failover=False``
        keeps the pre-routed loss behavior (a dead home shard fails
        its queries) for baseline comparisons.  The coordinated mode
        serves open-loop traffic on static shards and returns a
        :class:`~repro.cluster.ResilientClusterResult` (one logical
        row per query, however many shard attempts served it).

    Returns a :class:`~repro.cluster.ClusterResult`; its ``write_jsonl``
    emits one deterministic row per query (tagged with its shard when
    ``shards > 1``).
    """
    _reject_unknown_keywords("run_cluster", unknown, RUN_CLUSTER_KEYWORDS)
    from .cluster import DEFAULT_COOLDOWN, Trace, run_cluster_shards
    from .workload import REJECTED_RETRY_DELAY, make_tenants

    mix = _resolve_mix(mix_or_shape, strategy, cardinality, relations)
    tenant_map = make_tenants(tenants)
    engine_options = {
        "machine_size": machine_size,
        "policy": policy,
        "share": share,
        "config": config,
        "cost_model": cost_model,
        "skew_theta": skew_theta,
        "max_concurrent": max_concurrent,
        "queue_limit": queue_limit,
        "memory_budget_bytes": memory_budget_bytes,
        "rejected_retry_delay": (
            REJECTED_RETRY_DELAY
            if rejected_retry_delay is None
            else rejected_retry_delay
        ),
        "deadline": deadline,
        "deadline_seed": seed,
        "shed": shed,
        "watchdog_limit": watchdog_limit,
        "scheduler": scheduler,
        "pool_size": pool_size,
        "scheduling_cost": scheduling_cost,
        "tenants": tenant_map,
        "fast_path": fast_path,
        "faults": faults,
        "recovery": recovery,
        "max_retries": max_retries,
        "retry_backoff": retry_backoff,
    }
    resilient = any(
        value is not None
        for value in (
            shard_faults, retry_budget, hedge, breaker, throttle, failover
        )
    )
    if resilient:
        if arrivals == "closed" and trace is None:
            raise ValueError(
                "the resilient (coordinated) cluster serves open-loop "
                "traffic; closed-loop clients stay on the pre-routed path"
            )
        if autoscale not in (None, "static"):
            raise ValueError(
                "resilience and autoscale cannot combine: the "
                "coordinated cluster runs static shards"
            )
        from .cluster import run_resilient_cluster

        if trace is not None:
            if not isinstance(trace, Trace):
                trace = Trace.read(trace)
            pairs = trace.arrivals()
        else:
            pairs = _open_pairs(
                mix, tenant_map, arrivals, rate, duration, seed
            )
        return run_resilient_cluster(
            open_arrivals=pairs,
            shards=shards,
            engine_options=engine_options,
            placement=placement,
            shard_faults=shard_faults,
            retry_budget=0 if retry_budget is None else retry_budget,
            hedge=hedge,
            breaker=breaker,
            throttle=throttle,
            failover=True if failover is None else failover,
            workers=workers,
        )
    common = dict(
        shards=shards,
        placement=placement,
        autoscale=autoscale,
        engine_options=engine_options,
        scale_max=scale_max,
        scale_min=scale_min,
        scale_cooldown=(
            DEFAULT_COOLDOWN if scale_cooldown is None else scale_cooldown
        ),
        workers=workers,
        placement_context={
            "machine_size": machine_size,
            "config": config,
            "cost_model": cost_model,
        },
    )
    if trace is not None:
        if arrivals == "closed":
            raise ValueError(
                "a trace replays as an open-loop stream; it cannot be "
                "combined with arrivals='closed'"
            )
        if not isinstance(trace, Trace):
            trace = Trace.read(trace)
        return run_cluster_shards(open_arrivals=trace.arrivals(), **common)
    if arrivals == "closed":
        return run_cluster_shards(
            closed={
                "mix": mix,
                "clients": clients,
                "think_time": think_time,
                "queries_per_client": queries_per_client,
                "duration": duration,
                "seed": seed,
            },
            **common,
        )
    return run_cluster_shards(
        open_arrivals=_open_pairs(
            mix, tenant_map, arrivals, rate, duration, seed
        ),
        **common,
    )


def _resolve_tree(tree_or_shape: Union[str, Node]) -> Node:
    if isinstance(tree_or_shape, (Leaf, Join)):
        return tree_or_shape
    if isinstance(tree_or_shape, str):
        if tree_or_shape not in SHAPE_NAMES:
            raise ValueError(
                f"unknown shape {tree_or_shape!r}; expected one of "
                f"{SHAPE_NAMES} or a Node"
            )
        return make_shape(
            tree_or_shape, paper_relation_names(DEFAULT_RELATIONS)
        )
    raise TypeError(
        f"tree_or_shape must be a shape name or a Node, "
        f"got {type(tree_or_shape).__name__}"
    )


__all__ = [
    "BACKENDS",
    "DEFAULT_CARDINALITY",
    "DEFAULT_RELATIONS",
    "RUN_CLUSTER_KEYWORDS",
    "RUN_KEYWORDS",
    "RUN_WORKLOAD_KEYWORDS",
    "run",
    "run_cluster",
    "run_workload",
    "sweep",
]
