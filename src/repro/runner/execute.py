"""Parallel sweep execution.

Experiment points are embarrassingly parallel — each is one planning +
simulation run with no shared state — so the executor fans the job
list of a :class:`~repro.runner.spec.SweepSpec` out over a
:class:`~concurrent.futures.ProcessPoolExecutor`:

* cache hits are resolved first (no process ever starts for them);
* remaining jobs are submitted in job order and collected in job
  order, each with a per-job timeout;
* a job that times out, raises, or loses its worker (broken pool)
  falls back to serial in-process execution with bounded retries —
  parallelism is an optimization, never a correctness risk;
* results are returned (and emitted as JSONL) in deterministic job
  order regardless of completion order or worker count.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.cost import Catalog
from ..core.shapes import make_shape, paper_relation_names
from ..core.strategies import get_strategy
from ..sim.run import QueryAbortedError, simulate
from .cache import ResultCache
from .results import JobOutcome, SweepRun
from .spec import Job, SweepSpec, WorkloadTraffic

try:  # pragma: no cover - import location is version-dependent
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover
    BrokenProcessPool = RuntimeError  # type: ignore[assignment,misc]

#: progress(outcome, done_count, total_count)
ProgressFn = Callable[[JobOutcome, int, int], None]


class JobFailed(RuntimeError):
    """A job kept failing after the serial fallback retries."""

    def __init__(self, job: Job, attempts: int, cause: BaseException):
        super().__init__(
            f"job {job.label()} failed after {attempts} attempts: {cause!r}"
        )
        self.job = job
        self.attempts = attempts
        self.cause = cause


def run_job(job: Job) -> Tuple[Dict, Dict]:
    """Execute one experiment point; returns ``(row, meta)``.

    ``row`` is the deterministic result record (configuration +
    simulation metrics); ``meta`` carries the nondeterministic
    diagnostics (compute seconds, worker pid) that stay out of the row.
    This function is the process-pool entry point, so it must remain a
    module-level, picklable callable.
    """
    started = time.perf_counter()
    if job.scheduler is not None:
        return _run_workload_job(job, started)
    names = paper_relation_names(job.relations)
    tree = make_shape(job.shape, names)
    catalog = Catalog.regular(names, job.cardinality)
    schedule = get_strategy(job.strategy).schedule(
        tree, catalog, job.processors, job.cost_model
    )
    try:
        result = simulate(
            schedule,
            catalog,
            job.config,
            cost_model=job.cost_model,
            skew_theta=job.skew_theta,
            faults=job.faults,
            deadline=job.deadline,
        )
    except QueryAbortedError as exc:
        # A scheduled crash (or an expired deadline) killed the query;
        # record the abort as a deterministic row so sweeps over fault
        # schedules and deadlines still cache and replay bit-for-bit.
        row = {
            **job.payload(),
            "metrics": {
                "aborted": True,
                "aborted_at": exc.at,
                "reason": exc.reason,
            },
        }
        meta = {"elapsed": time.perf_counter() - started, "pid": os.getpid()}
        return row, meta
    breakdown = result.busy_by_kind()
    row = {
        **job.payload(),
        "metrics": {
            "response_time": result.response_time,
            "utilization": result.utilization(),
            "busy_work": breakdown["work"],
            "busy_handshake": breakdown["handshake"],
            "startup_time": result.startup_time(),
            "operation_processes": result.operation_processes,
            "stream_count": result.stream_count,
            "events": result.events,
            "result_tuples": result.result_tuples,
        },
    }
    meta = {"elapsed": time.perf_counter() - started, "pid": os.getpid()}
    return row, meta


def _run_workload_job(job: Job, started: float) -> Tuple[Dict, Dict]:
    """Run a scheduler-bearing cell as a whole workload.

    ``job.processors`` is the shared machine size and ``job.workload``
    (default :class:`WorkloadTraffic`) shapes the open-loop traffic;
    the row's metrics summarize the workload instead of one query.
    """
    traffic = job.workload or WorkloadTraffic()
    if traffic.shards > 1:
        return _run_cluster_job(job, traffic, started)
    from ..api import run_workload

    result = run_workload(
        job.shape,
        arrivals=traffic.arrivals,
        rate=traffic.rate,
        duration=traffic.duration,
        seed=traffic.seed,
        machine_size=job.processors,
        policy=traffic.policy,
        share=traffic.share,
        strategy=job.strategy,
        cardinality=job.cardinality,
        relations=job.relations,
        queue_limit=traffic.queue_limit,
        shed=traffic.shed,
        config=job.config,
        cost_model=job.cost_model,
        skew_theta=job.skew_theta,
        faults=job.faults,
        deadline=job.deadline,
        scheduler=job.scheduler,
        pool_size=traffic.pool_size,
        scheduling_cost=traffic.scheduling_cost,
        fast_path=traffic.fast_path,
    )
    latency = result.latency_stats()
    row = {
        **job.payload(),
        "metrics": {
            "submitted": len(result.records),
            "completed": len(result.completed()),
            "rejected": result.rejected_count(),
            "shed": result.shed_count(),
            "expired": result.deadline_missed_count(),
            "makespan": result.makespan,
            "throughput": result.throughput(),
            "goodput": result.goodput(),
            "utilization": result.utilization(),
            "latency_p50": latency["p50"],
            "latency_p95": latency["p95"],
            "scheduling_decisions": result.scheduling_decisions,
        },
    }
    meta = {"elapsed": time.perf_counter() - started, "pid": os.getpid()}
    return row, meta


def _run_cluster_job(
    job: Job, traffic: WorkloadTraffic, started: float
) -> Tuple[Dict, Dict]:
    """Run a ``shards > 1`` cell through the cluster front-end.

    ``job.processors`` is the *per-shard* machine size.  The job runs
    its shards serially — the sweep's own process pool is the
    parallelism budget; nesting pools would oversubscribe it.
    """
    from ..api import run_cluster

    result = run_cluster(
        job.shape,
        shards=traffic.shards,
        placement=traffic.placement,
        autoscale=traffic.autoscale,
        scale_max=traffic.scale_max,
        arrivals=traffic.arrivals,
        rate=traffic.rate,
        duration=traffic.duration,
        seed=traffic.seed,
        machine_size=job.processors,
        policy=traffic.policy,
        share=traffic.share,
        strategy=job.strategy,
        cardinality=job.cardinality,
        relations=job.relations,
        queue_limit=traffic.queue_limit,
        shed=traffic.shed,
        config=job.config,
        cost_model=job.cost_model,
        skew_theta=job.skew_theta,
        deadline=job.deadline,
        scheduler=job.scheduler,
        pool_size=traffic.pool_size,
        scheduling_cost=traffic.scheduling_cost,
        fast_path=traffic.fast_path,
    )
    latency = result.latency_stats()
    row = {
        **job.payload(),
        "metrics": {
            "submitted": result.submitted_count(),
            "completed": result.completed_count(),
            "rejected": result.rejected_count(),
            "useful": result.useful_count(),
            "makespan": result.makespan,
            "throughput": result.throughput(),
            "goodput": result.goodput(),
            "latency_p50": latency["p50"],
            "latency_p95": latency["p95"],
            "latency_p99": latency["p99"],
            "shards": len(result.shards),
            "migrations": result.migrations,
            "scale_ups": result.scale_ups(),
            "scale_downs": result.scale_downs(),
        },
    }
    meta = {"elapsed": time.perf_counter() - started, "pid": os.getpid()}
    return row, meta


def default_workers(pending: int) -> int:
    """Worker-count default: fan out (at least two processes) but never
    start more workers than there are uncached jobs."""
    if pending <= 1:
        return 1
    return min(max(2, os.cpu_count() or 1), pending)


def run_sweep(
    spec: Union[SweepSpec, Sequence[Job]],
    *,
    workers: Optional[int] = None,
    cache: bool = True,
    cache_dir: Optional[Union[str, Path]] = None,
    timeout: float = 300.0,
    retries: int = 1,
    progress: Optional[ProgressFn] = None,
) -> SweepRun:
    """Run every job of ``spec`` and return the ordered results.

    ``workers=None`` picks :func:`default_workers`; ``workers=1``
    forces serial in-process execution (no pool).  ``timeout`` bounds
    each job's wall-clock seconds in the pool; a timed-out or crashed
    job is retried serially up to ``retries`` times before
    :class:`JobFailed` is raised.
    """
    jobs = spec.expand() if isinstance(spec, SweepSpec) else list(spec)
    if retries < 0:
        raise ValueError("retries must be non-negative")
    store = ResultCache(cache_dir) if cache else None
    started = time.perf_counter()
    outcomes: Dict[int, JobOutcome] = {}
    done = 0

    def record(index: int, outcome: JobOutcome) -> None:
        nonlocal done
        outcomes[index] = outcome
        done += 1
        if progress is not None:
            progress(outcome, done, len(jobs))

    pending: List[Tuple[int, Job]] = []
    for index, job in enumerate(jobs):
        row = store.get(job.key()) if store is not None else None
        if row is not None:
            record(index, JobOutcome(job, row, "cache", 0.0, os.getpid(), 0))
        else:
            pending.append((index, job))

    if workers is None:
        workers = default_workers(len(pending))
    workers = max(1, workers)

    failed: List[Tuple[int, Job]] = []
    if pending and workers > 1:
        failed = _run_pool(pending, workers, timeout, record)
    elif pending:
        failed = list(pending)

    # Serial path: both the workers=1 mode and the fallback for jobs
    # the pool could not finish.
    for index, job in failed:
        record(index, _run_serial(job, retries))

    if store is not None:
        for index, job in pending:
            store.put(job.key(), outcomes[index].row)

    return SweepRun(
        jobs=jobs,
        outcomes=[outcomes[i] for i in range(len(jobs))],
        workers=workers if pending else 0,
        elapsed=time.perf_counter() - started,
        cache_dir=store.root if store is not None else None,
    )


def _run_pool(
    pending: List[Tuple[int, Job]],
    workers: int,
    timeout: float,
    record: Callable[[int, JobOutcome], None],
) -> List[Tuple[int, Job]]:
    """Fan ``pending`` out over a process pool; returns jobs that must
    be re-run serially (timeout, worker crash, or job exception)."""
    collected: set = set()
    failed: List[Tuple[int, Job]] = []
    pool = ProcessPoolExecutor(max_workers=workers)
    abandoned = False  # a timed-out future may still occupy a worker
    try:
        futures = [(i, job, pool.submit(run_job, job)) for i, job in pending]
        for index, job, future in futures:
            try:
                row, meta = future.result(timeout=timeout)
            except FutureTimeoutError:
                future.cancel()
                abandoned = True
            except BrokenProcessPool:
                # The pool is gone; everything not yet collected falls
                # back to serial execution.
                break
            except Exception:
                pass
            else:
                collected.add(index)
                record(
                    index,
                    JobOutcome(job, row, "pool", meta["elapsed"], meta["pid"], 1),
                )
    finally:
        pool.shutdown(wait=not abandoned, cancel_futures=True)
    failed.extend((i, job) for i, job in pending if i not in collected)
    return failed


def _run_serial(job: Job, retries: int) -> JobOutcome:
    """Run one job in-process, retrying up to ``retries`` extra times."""
    attempts = 0
    last_error: Optional[BaseException] = None
    while attempts <= retries:
        attempts += 1
        try:
            row, meta = run_job(job)
        except Exception as exc:  # noqa: BLE001 - reported via JobFailed
            last_error = exc
        else:
            return JobOutcome(
                job, row, "serial", meta["elapsed"], meta["pid"], attempts
            )
    assert last_error is not None
    raise JobFailed(job, attempts, last_error) from last_error
