"""Content-addressed on-disk result cache.

Each finished job's result row is stored as one small JSON file under
``.repro_cache/`` (or ``$REPRO_CACHE_DIR``), named by the sha256 of
the job's complete configuration (:meth:`repro.runner.spec.Job.key`).
Repeated benchmark runs therefore cost one file read per point, and
changing *any* parameter — a machine constant, a cost-model
coefficient, the skew — changes the key and forces recomputation.

Writes are atomic (temp file + rename), so concurrent sweeps sharing a
cache directory never observe torn entries; a corrupt or unreadable
entry is treated as a miss and silently recomputed.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro_cache/`` in the cwd."""
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


class ResultCache:
    """Keyed JSON blobs on disk, fanned into 256 subdirectories."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        """The cached row for ``key``, or None on miss/corruption."""
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                row = json.load(handle)
        except (OSError, ValueError):
            return None
        return row if isinstance(row, dict) else None

    def put(self, key: str, row: Dict) -> None:
        """Store ``row`` under ``key`` atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(row, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for entry in self.root.glob("*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
