"""Declarative sweep specifications.

The paper's evaluation is a grid — strategy × tree shape × processor
count × problem size (plus, in this reproduction's ablations, skew and
machine-constant variations).  A :class:`SweepSpec` names such a grid
declaratively; :meth:`SweepSpec.expand` turns it into a deterministic,
ordered list of independent :class:`Job`\\ s that the executor
(:mod:`repro.runner.execute`) fans out over worker processes.

Every job is content-addressed: :meth:`Job.key` hashes the *complete*
configuration (including every machine constant and cost-model
coefficient), so the on-disk result cache is automatically invalidated
when any parameter changes and shared between sweeps that overlap.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.cost import CostModel
from ..core.shapes import SHAPE_NAMES
from ..core.strategies import strategy_names
from ..faults.schedule import FaultSchedule
from ..sim.machine import MachineConfig

#: Bump when the job payload or result-row layout changes incompatibly;
#: part of every cache key, so stale cache entries are never read.
CACHE_VERSION = 1


def _default_strategies() -> Tuple[str, ...]:
    return tuple(strategy_names())


@dataclass(frozen=True)
class WorkloadTraffic:
    """Traffic shape of a workload-mode sweep cell.

    A job with a ``scheduler`` runs a whole workload
    (:func:`repro.api.run_workload`) instead of one query; this frozen
    block carries the traffic knobs that are not already sweep axes.
    """

    arrivals: str = "poisson"
    rate: float = 0.05
    duration: float = 120.0
    seed: int = 0
    policy: str = "exclusive"
    share: Optional[int] = None
    queue_limit: Optional[int] = None
    shed: Optional[str] = None
    pool_size: Optional[int] = None
    scheduling_cost: float = 0.0
    #: Attempt the turbo fast path for single-occupancy epochs.  Like
    #: ``workers``, this is an execution detail, not an experiment
    #: parameter: results are bit-identical either way, so it is
    #: deliberately absent from the cache payload — both settings
    #: share one content address.
    fast_path: bool = True
    #: Cluster axis: ``shards > 1`` runs the cell through
    #: :func:`repro.api.run_cluster` (``processors`` is the per-shard
    #: machine size) with this placement and autoscaling policy.  The
    #: defaults describe the classic single-engine cell and are deleted
    #: from the cache payload at ``shards == 1``, so every pre-cluster
    #: cache entry keeps its content address.
    shards: int = 1
    placement: str = "hash"
    autoscale: str = "static"
    scale_max: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.pool_size is not None and self.pool_size < 1:
            raise ValueError("pool_size must be positive")
        if self.scheduling_cost < 0:
            raise ValueError("scheduling_cost must be non-negative")
        if self.shards < 1:
            raise ValueError("a cluster needs at least one shard")
        from ..cluster import AUTOSCALE_NAMES, PLACEMENT_NAMES

        if self.placement not in PLACEMENT_NAMES:
            raise ValueError(
                f"unknown placement {self.placement!r}; expected one of "
                f"{PLACEMENT_NAMES}"
            )
        if self.autoscale not in AUTOSCALE_NAMES:
            raise ValueError(
                f"unknown autoscale policy {self.autoscale!r}; expected "
                f"one of {AUTOSCALE_NAMES}"
            )
        if self.scale_max is not None and self.scale_max < 1:
            raise ValueError("scale_max must be positive")


@dataclass(frozen=True)
class Job:
    """One experiment point: everything needed to reproduce one cell."""

    shape: str
    strategy: str
    processors: int
    cardinality: int
    skew_theta: float = 0.0
    relations: int = 10
    config: MachineConfig = field(default_factory=MachineConfig.paper)
    cost_model: CostModel = field(default_factory=CostModel)
    faults: Optional[FaultSchedule] = None
    deadline: Optional[float] = None
    #: A scheduler name turns the cell into a *workload* point: the
    #: executor runs :func:`repro.api.run_workload` with this queue
    #: ordering (``processors`` becomes the machine size) instead of
    #: one single-query simulation.
    scheduler: Optional[str] = None
    workload: Optional[WorkloadTraffic] = None

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (simulated seconds)")
        if self.scheduler is not None:
            from ..workload.sched import SCHEDULER_NAMES

            if self.scheduler not in SCHEDULER_NAMES:
                raise ValueError(
                    f"unknown scheduler {self.scheduler!r}; expected one "
                    f"of {SCHEDULER_NAMES}"
                )
        if self.workload is not None and self.scheduler is None:
            raise ValueError(
                "workload traffic needs a scheduler (single-query cells "
                "have no admission queue)"
            )
        if (
            self.workload is not None
            and self.workload.shards > 1
            and self.faults is not None
        ):
            raise ValueError(
                "cluster cells (shards > 1) do not take a fault schedule; "
                "elasticity already drives the fault/repair machinery"
            )

    def payload(self) -> Dict:
        """The job's full configuration as plain JSON-able data.

        The ``faults``, ``deadline``, ``scheduler``, and ``workload``
        keys appear only when set, so every pre-existing cache entry
        keeps its content address.
        """
        data = {
            "shape": self.shape,
            "strategy": self.strategy,
            "processors": self.processors,
            "cardinality": self.cardinality,
            "skew_theta": self.skew_theta,
            "relations": self.relations,
            "config": asdict(self.config),
            "cost_model": asdict(self.cost_model),
        }
        if self.faults is not None:
            data["faults"] = self.faults.to_payload()
        if self.deadline is not None:
            data["deadline"] = self.deadline
        if self.scheduler is not None:
            data["scheduler"] = self.scheduler
            data["workload"] = asdict(self.workload or WorkloadTraffic())
            # Bit-identical either way (house invariant), so the fast
            # path must not split the cache address space.
            del data["workload"]["fast_path"]
            if data["workload"]["shards"] == 1:
                # A 1-shard cell is byte-identical to the pre-cluster
                # single-engine cell (house invariant), so the cluster
                # keys must not split its cache address either.
                for key in ("shards", "placement", "autoscale", "scale_max"):
                    del data["workload"][key]
        return data

    def key(self) -> str:
        """Content address: sha256 over the canonical payload JSON."""
        canonical = json.dumps(
            {"v": CACHE_VERSION, **self.payload()},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human label for progress lines."""
        parts = [f"{self.strategy}@{self.processors}p",
                 self.shape, str(self.cardinality)]
        if self.skew_theta:
            parts.append(f"theta={self.skew_theta}")
        if self.faults is not None and not self.faults.is_empty:
            parts.append(f"faults={self.faults.event_count}")
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline:g}s")
        if self.scheduler is not None:
            parts.append(f"sched={self.scheduler}")
        return " ".join(parts)


@dataclass(frozen=True)
class SweepSpec:
    """A grid of experiment points.

    Expansion order is fixed (shapes, cardinalities, configs,
    cost_models, fault_schedules, deadlines, schedulers, skew_thetas,
    strategies, processors — processors innermost) so that job
    indices, JSONL row order and progress numbering are identical from
    run to run regardless of worker count.
    """

    shapes: Tuple[str, ...] = ("wide_bushy",)
    strategies: Tuple[str, ...] = field(default_factory=_default_strategies)
    processors: Tuple[int, ...] = (20, 30, 40, 50, 60, 70, 80)
    cardinalities: Tuple[int, ...] = (5_000,)
    skew_thetas: Tuple[float, ...] = (0.0,)
    configs: Tuple[MachineConfig, ...] = field(
        default_factory=lambda: (MachineConfig.paper(),)
    )
    cost_models: Tuple[CostModel, ...] = field(
        default_factory=lambda: (CostModel(),)
    )
    #: Fault-schedule axis; ``None`` entries are fault-free points.
    fault_schedules: Tuple[Optional[FaultSchedule], ...] = (None,)
    #: Deadline axis (simulated seconds); ``None`` entries are unbounded.
    deadlines: Tuple[Optional[float], ...] = (None,)
    #: Scheduler axis: ``None`` entries are classic single-query cells;
    #: a scheduler name runs the cell as a whole workload under that
    #: queue ordering (``workload`` shapes its traffic).
    schedulers: Tuple[Optional[str], ...] = (None,)
    workload: Optional[WorkloadTraffic] = None
    relations: int = 10

    def __post_init__(self) -> None:
        for shape in self.shapes:
            if shape not in SHAPE_NAMES:
                raise ValueError(f"unknown shape {shape!r}")
        known = set(strategy_names())
        for strategy in self.strategies:
            if strategy not in known:
                raise ValueError(f"unknown strategy {strategy!r}")
        if not all(p >= 1 for p in self.processors):
            raise ValueError("processor counts must be positive")
        if not all(c >= 1 for c in self.cardinalities):
            raise ValueError("cardinalities must be positive")
        if self.relations < 2:
            raise ValueError("a join tree needs at least two relations")
        for axis in ("shapes", "strategies", "processors",
                     "cardinalities", "skew_thetas", "configs",
                     "cost_models", "fault_schedules", "deadlines",
                     "schedulers"):
            if not getattr(self, axis):
                raise ValueError(f"sweep axis {axis!r} is empty")
        for schedule in self.fault_schedules:
            if schedule is not None and not isinstance(schedule, FaultSchedule):
                raise ValueError(
                    "fault_schedules entries must be FaultSchedule or None"
                )
        for deadline in self.deadlines:
            if deadline is not None and deadline <= 0:
                raise ValueError("deadlines entries must be positive or None")
        for scheduler in self.schedulers:
            if scheduler is not None:
                from ..workload.sched import SCHEDULER_NAMES

                if scheduler not in SCHEDULER_NAMES:
                    raise ValueError(
                        f"unknown scheduler {scheduler!r}; expected one of "
                        f"{SCHEDULER_NAMES} or None"
                    )
        if self.workload is not None and all(
            scheduler is None for scheduler in self.schedulers
        ):
            raise ValueError(
                "workload traffic needs at least one scheduler entry"
            )

    def expand(self) -> List[Job]:
        """The grid as an ordered job list (deterministic)."""
        jobs: List[Job] = []
        for shape in self.shapes:
            for cardinality in self.cardinalities:
                for config in self.configs:
                    for cost_model in self.cost_models:
                        for faults in self.fault_schedules:
                            for deadline in self.deadlines:
                                for scheduler in self.schedulers:
                                    for theta in self.skew_thetas:
                                        for strategy in self.strategies:
                                            for procs in self.processors:
                                                jobs.append(Job(
                                                    shape=shape,
                                                    strategy=strategy,
                                                    processors=procs,
                                                    cardinality=cardinality,
                                                    skew_theta=theta,
                                                    relations=self.relations,
                                                    config=config,
                                                    cost_model=cost_model,
                                                    faults=faults,
                                                    deadline=deadline,
                                                    scheduler=scheduler,
                                                    workload=(
                                                        self.workload
                                                        if scheduler
                                                        is not None
                                                        else None
                                                    ),
                                                ))
        return jobs

    def __len__(self) -> int:
        return (
            len(self.shapes) * len(self.strategies) * len(self.processors)
            * len(self.cardinalities) * len(self.skew_thetas)
            * len(self.configs) * len(self.cost_models)
            * len(self.fault_schedules) * len(self.deadlines)
            * len(self.schedulers)
        )

    @classmethod
    def paper(cls, shape: str, cardinality: int) -> "SweepSpec":
        """The spec of one paper figure sweep (one shape, one size)."""
        from ..bench.workloads import (
            LARGE_CARDINALITY,
            LARGE_PROCESSORS,
            SMALL_PROCESSORS,
        )

        processors = (
            LARGE_PROCESSORS if cardinality >= LARGE_CARDINALITY
            else SMALL_PROCESSORS
        )
        return cls(
            shapes=(shape,),
            cardinalities=(cardinality,),
            processors=processors,
        )
