"""Parallel sweep runner.

Declarative experiment grids (:class:`SweepSpec`), process-pool
execution with per-job timeout, retry and serial fallback
(:func:`run_sweep`), a content-addressed on-disk result cache
(:class:`ResultCache`), and deterministic JSONL result emission.

Quickstart::

    from repro.runner import SweepSpec, run_sweep

    spec = SweepSpec(shapes=("wide_bushy",), cardinalities=(5000,))
    run = run_sweep(spec)            # fans out over worker processes
    run.write_jsonl("sweep.jsonl")   # identical bytes for any workers=
    print(run.summary())
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache, default_cache_dir
from .execute import JobFailed, default_workers, run_job, run_sweep
from .results import (
    JobOutcome,
    SweepRun,
    jsonl_line,
    read_jsonl,
    to_sweep_result,
    write_jsonl,
)
from .spec import CACHE_VERSION, Job, SweepSpec, WorkloadTraffic

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "Job",
    "JobFailed",
    "JobOutcome",
    "ResultCache",
    "SweepRun",
    "SweepSpec",
    "WorkloadTraffic",
    "default_cache_dir",
    "default_workers",
    "jsonl_line",
    "read_jsonl",
    "run_job",
    "run_sweep",
    "to_sweep_result",
    "write_jsonl",
]
