"""Result rows, JSONL emission, and bridges back to the bench types.

A *row* is the deterministic, JSON-able record of one finished job:
the job's full configuration plus the simulation metrics.  Rows
deliberately exclude anything nondeterministic (wall-clock timing,
worker pids) so that a sweep's JSONL output is byte-identical no
matter how many workers ran it or how many points came from the cache;
the per-job timing lives next door on :class:`JobOutcome`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from .spec import Job


def jsonl_line(row: Dict) -> str:
    """Canonical single-line JSON for one row (sorted keys)."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def write_jsonl(path: Union[str, Path], rows: Iterable[Dict]) -> Path:
    """Write ``rows`` as JSON Lines; returns the path written."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(jsonl_line(row))
            handle.write("\n")
    return path


def read_jsonl(path: Union[str, Path]) -> List[Dict]:
    """Read back a JSONL result file."""
    out: List[Dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


@dataclass(frozen=True)
class JobOutcome:
    """One job's result plus how it was obtained.

    ``source`` is ``"cache"`` (disk hit), ``"pool"`` (worker process),
    or ``"serial"`` (in-process, including the retry fallback).
    ``elapsed`` is the job's own compute seconds (0 for cache hits) and
    ``pid`` the process that computed it — diagnostics only, never part
    of the emitted row.
    """

    job: Job
    row: Dict
    source: str
    elapsed: float = 0.0
    pid: int = 0
    attempts: int = 0


@dataclass
class SweepRun:
    """Everything one executed sweep produced, in job order."""

    jobs: List[Job]
    outcomes: List[JobOutcome]
    workers: int
    elapsed: float
    cache_dir: Optional[Path] = None

    def rows(self) -> List[Dict]:
        """Deterministic result rows, one per job, in job order."""
        return [outcome.row for outcome in self.outcomes]

    def jsonl(self) -> str:
        return "".join(jsonl_line(row) + "\n" for row in self.rows())

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        return write_jsonl(path, self.rows())

    # -- timing / provenance ---------------------------------------------

    def cached_count(self) -> int:
        return sum(1 for o in self.outcomes if o.source == "cache")

    def computed_count(self) -> int:
        return len(self.outcomes) - self.cached_count()

    def worker_pids(self) -> List[int]:
        """Distinct worker-process pids that computed pool jobs."""
        return sorted({o.pid for o in self.outcomes if o.source == "pool"})

    def compute_seconds(self) -> float:
        """Total per-job compute time (sum over jobs, not wall clock)."""
        return sum(o.elapsed for o in self.outcomes)

    def slowest(self, count: int = 3) -> List[JobOutcome]:
        """The ``count`` slowest computed jobs."""
        computed = [o for o in self.outcomes if o.source != "cache"]
        return sorted(computed, key=lambda o: -o.elapsed)[:count]

    def summary(self) -> str:
        """One-line human summary of the run."""
        pids = self.worker_pids()
        parts = [
            f"{len(self.jobs)} jobs",
            f"{self.cached_count()} cached",
            f"{self.computed_count()} computed",
        ]
        if pids:
            parts.append(f"{len(pids)} worker processes")
        parts.append(f"{self.elapsed:.2f}s wall")
        if self.computed_count():
            parts.append(f"{self.compute_seconds():.2f}s cpu")
        return ", ".join(parts)


def to_sweep_result(rows: Iterable[Dict], experiment=None):
    """Regroup runner rows into a :class:`repro.bench.SweepResult`.

    The rows must form one rectangular sweep — a single (shape,
    cardinality, config, skew) over strategies × processors — which is
    what a one-shape :class:`~repro.runner.spec.SweepSpec` expands to.
    """
    # Imported lazily: repro.bench imports repro.runner for its
    # parallel sweep, so a module-level import here would be circular.
    from ..bench.workloads import Experiment, Series, SweepResult

    rows = list(rows)
    if not rows:
        raise ValueError("cannot build a SweepResult from zero rows")
    by_strategy: Dict[str, List[Dict]] = {}
    for row in rows:
        by_strategy.setdefault(row["strategy"], []).append(row)
    processor_counts = tuple(
        row["processors"] for row in next(iter(by_strategy.values()))
    )
    for strategy, group in by_strategy.items():
        got = tuple(row["processors"] for row in group)
        if got != processor_counts:
            raise ValueError(
                f"ragged sweep: strategy {strategy} covers processors "
                f"{got}, expected {processor_counts}"
            )
    if experiment is None:
        first = rows[0]
        experiment = Experiment(
            first["shape"], first["cardinality"], processor_counts
        )
    series = {
        strategy: Series(
            strategy,
            processor_counts,
            tuple(row["metrics"]["response_time"] for row in group),
        )
        for strategy, group in by_strategy.items()
    }
    return SweepResult(experiment, series)
