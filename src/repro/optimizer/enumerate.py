"""Phase one: join-tree enumeration with minimal total cost.

Dynamic programming over connected subsets of the query graph
(bushy trees, cartesian products excluded) — the full space whose size
[LVZ93] worries about, affordable here because the paper's queries
have ten relations.  The objective is the paper's total-cost formula
(Section 4.3): intermediate operands cost twice what base operands do
and results cost two units per tuple.

For the regular Wisconsin query every tree without cartesian products
has the same total cost (Section 4.1) — the tests pin that property —
so phase one's tie-breaking prefers bushy trees, which Section 5
recommends: "if it is possible to choose between a linear and a bushy
tree with (almost) equal processing costs, the bushy one should be
chosen".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional

from ..core.cost import Catalog, CostModel
from ..core.trees import Join, Leaf, Node, height
from .graph import QueryGraph


@dataclass(frozen=True)
class PlanEntry:
    """Best plan found for one relation subset."""

    tree: Node
    total_cost: float
    cardinality: float
    height: int


def optimal_bushy_tree(
    graph: QueryGraph,
    cost_model: CostModel = CostModel(),
    prefer_bushy: bool = True,
) -> PlanEntry:
    """The minimum-total-cost join tree over all bushy shapes.

    Ties (equal cost within a relative tolerance) are broken toward
    lower tree height when ``prefer_bushy`` is set, implementing the
    paper's advice to pick the bushy variant of equally priced trees.
    """
    names = graph.relations
    if len(names) < 2:
        raise ValueError("need at least two relations")
    best: Dict[FrozenSet[str], PlanEntry] = {}
    for name in names:
        subset = frozenset((name,))
        best[subset] = PlanEntry(
            Leaf(name), 0.0, float(graph.cardinalities[name]), 0
        )

    full = frozenset(names)
    for size in range(2, len(names) + 1):
        for combo in itertools.combinations(names, size):
            subset = frozenset(combo)
            if not graph.connected(subset):
                continue
            entry = _best_split(subset, best, graph, cost_model, prefer_bushy)
            if entry is not None:
                best[subset] = entry
    if full not in best:
        raise ValueError("query graph is disconnected; no cartesian-free tree")
    return best[full]


def _best_split(
    subset: FrozenSet[str],
    best: Dict[FrozenSet[str], PlanEntry],
    graph: QueryGraph,
    cost_model: CostModel,
    prefer_bushy: bool,
) -> Optional[PlanEntry]:
    members = sorted(subset)
    anchor = members[0]
    chosen: Optional[PlanEntry] = None
    result_card = graph.subset_cardinality(subset)
    # Enumerate splits once (anchor always on the left half);
    # mask 0 puts the anchor alone, the all-ones mask (everything on
    # the left) is excluded.
    for mask in range(0, (1 << (len(members) - 1)) - 1):
        left = frozenset(
            [anchor]
            + [members[i + 1] for i in range(len(members) - 1) if mask >> i & 1]
        )
        right = subset - left
        left_entry = best.get(left)
        right_entry = best.get(right)
        if left_entry is None or right_entry is None:
            continue
        if not graph.joinable(left, right):
            continue
        for lhs, rhs in ((left_entry, right_entry), (right_entry, left_entry)):
            join_cost = cost_model.join_cost(
                lhs.cardinality,
                rhs.cardinality,
                result_card,
                isinstance(lhs.tree, Leaf),
                isinstance(rhs.tree, Leaf),
            )
            total = lhs.total_cost + rhs.total_cost + join_cost
            entry = PlanEntry(
                Join(lhs.tree, rhs.tree),
                total,
                result_card,
                1 + max(lhs.height, rhs.height),
            )
            if chosen is None or _better(entry, chosen, prefer_bushy):
                chosen = entry
    return chosen


def _better(candidate: PlanEntry, incumbent: PlanEntry, prefer_bushy: bool) -> bool:
    scale = max(abs(incumbent.total_cost), 1.0)
    if candidate.total_cost < incumbent.total_cost - 1e-9 * scale:
        return True
    if candidate.total_cost > incumbent.total_cost + 1e-9 * scale:
        return False
    if prefer_bushy:
        return candidate.height < incumbent.height
    return False


def tree_total_cost(
    graph: QueryGraph, tree: Node, cost_model: CostModel = CostModel()
) -> float:
    """Total cost of an arbitrary tree under the graph's estimates."""
    catalog = catalog_for(graph)
    return cost_model.total_cost(tree, catalog)


def catalog_for(graph: QueryGraph) -> Catalog:
    """A :class:`Catalog` whose cardinality estimates come from the
    query graph (subset-aware, so shared with the strategies)."""
    return Catalog(
        cardinalities=dict(graph.cardinalities),
        subset_estimator=graph.subset_cardinality,
    )


def all_trees(graph: QueryGraph) -> Iterable[Node]:
    """Every cartesian-product-free join tree (small queries only).

    Exponential; used by tests to verify the DP optimum and the
    regular query's equal-cost property.
    """
    names = graph.relations
    if len(names) > 8:
        raise ValueError("all_trees is for small queries (≤ 8 relations)")

    def trees_for(subset: FrozenSet[str]) -> List[Node]:
        if len(subset) == 1:
            return [Leaf(next(iter(subset)))]
        out: List[Node] = []
        members = sorted(subset)
        anchor = members[0]
        for mask in range(0, (1 << (len(members) - 1)) - 1):
            left = frozenset(
                [anchor]
                + [members[i + 1] for i in range(len(members) - 1) if mask >> i & 1]
            )
            right = subset - left
            if not (graph.connected(left) and graph.connected(right)):
                continue
            if not graph.joinable(left, right):
                continue
            for l_tree in trees_for(left):
                for r_tree in trees_for(right):
                    out.append(Join(l_tree, r_tree))
                    out.append(Join(r_tree, l_tree))
        return out

    return trees_for(frozenset(names))
