"""Two-phase optimization: tree enumeration, guidelines, strategy choice."""

from .enumerate import (
    PlanEntry,
    all_trees,
    catalog_for,
    optimal_bushy_tree,
    tree_total_cost,
)
from .graph import QueryGraph
from .guidelines import (
    Advice,
    advise_parallelism,
    advise_strategy,
    apply_advice,
    sp_processor_threshold,
    wide_bushiness,
)
from .linear import optimal_left_deep_tree, optimal_right_deep_tree
from .onephase import JointPlan, one_phase_optimize, two_phase_gap
from .twophase import OptimizedPlan, two_phase_optimize

__all__ = [
    "Advice",
    "JointPlan",
    "one_phase_optimize",
    "two_phase_gap",
    "OptimizedPlan",
    "PlanEntry",
    "QueryGraph",
    "advise_parallelism",
    "advise_strategy",
    "all_trees",
    "apply_advice",
    "catalog_for",
    "optimal_bushy_tree",
    "optimal_left_deep_tree",
    "optimal_right_deep_tree",
    "sp_processor_threshold",
    "tree_total_cost",
    "two_phase_optimize",
    "wide_bushiness",
]
