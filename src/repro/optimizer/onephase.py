"""One-phase (joint) optimization — testing the two-phase assumption.

Section 1.2: the paper adopts two-phase optimization ([HoS91]) while
noting "not all researchers agree on this assumption [SrE93]", and
argues that "missing the very best execution plan is not a big problem
as long as you can assure that you will not come up with a very bad
one" [KBZ86].

This module makes that argument checkable: it searches the *joint*
space — every cartesian-free join tree × every strategy — by
simulating each candidate plan, i.e. optimizing response time directly
instead of total cost first.  The space is "gigantic" (the paper's
word) so this is only feasible for small queries; the extension bench
compares the one-phase optimum against the two-phase choice and
reports the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cost import CostModel
from ..core.schedule import ParallelSchedule
from ..core.strategies import get_strategy, strategy_names
from ..core.trees import Node
from ..sim.machine import MachineConfig
from ..sim.run import simulate
from .enumerate import all_trees, catalog_for
from .graph import QueryGraph


@dataclass
class JointPlan:
    """The outcome of a joint (tree × strategy) search."""

    tree: Node
    strategy: str
    schedule: ParallelSchedule
    response_time: float
    candidates_tried: int
    #: Response time distribution over all candidates (min/median/max).
    spread: Tuple[float, float, float]


def one_phase_optimize(
    graph: QueryGraph,
    processors: int,
    config: Optional[MachineConfig] = None,
    strategies: Optional[Sequence[str]] = None,
    cost_model: CostModel = CostModel(),
    max_relations: int = 7,
) -> JointPlan:
    """Exhaustively search trees × strategies for minimal response time.

    Operand order is part of the plan (it decides build sides and
    right-deep segments), so every tree ``all_trees`` yields is a
    distinct candidate.  Guarded by ``max_relations`` — the joint
    space explodes.
    """
    if len(graph.relations) > max_relations:
        raise ValueError(
            f"one-phase search over {len(graph.relations)} relations is "
            f"not feasible (limit {max_relations}); use two_phase_optimize"
        )
    if config is None:
        config = MachineConfig.paper()
    if strategies is None:
        strategies = strategy_names()
    catalog = catalog_for(graph)

    best: Optional[JointPlan] = None
    times: List[float] = []
    tried = 0
    for tree in all_trees(graph):
        for name in strategies:
            try:
                schedule = get_strategy(name).schedule(
                    tree, catalog, processors, cost_model
                )
            except ValueError:
                continue
            result = simulate(schedule, catalog, config, cost_model=cost_model)
            tried += 1
            times.append(result.response_time)
            if best is None or result.response_time < best.response_time:
                best = JointPlan(
                    tree=tree,
                    strategy=name,
                    schedule=schedule,
                    response_time=result.response_time,
                    candidates_tried=0,
                    spread=(0.0, 0.0, 0.0),
                )
    if best is None:
        raise ValueError("no executable candidate plan found")
    times.sort()
    best.candidates_tried = tried
    best.spread = (times[0], times[len(times) // 2], times[-1])
    return best


def two_phase_gap(
    graph: QueryGraph,
    processors: int,
    config: Optional[MachineConfig] = None,
    cost_model: CostModel = CostModel(),
) -> Dict[str, float]:
    """Compare two-phase against the one-phase optimum.

    Returns the response times and the relative gap — the number the
    paper's two-phase argument stands on (small gap = assumption holds
    for this workload).
    """
    from .twophase import two_phase_optimize

    joint = one_phase_optimize(graph, processors, config, cost_model=cost_model)
    staged = two_phase_optimize(
        graph, processors, mode="simulate", config=config, cost_model=cost_model
    )
    staged_time = staged.candidates[staged.strategy]
    return {
        "one_phase": joint.response_time,
        "two_phase": staged_time,
        "gap": staged_time / joint.response_time - 1.0,
        "median_candidate": joint.spread[1],
        "worst_candidate": joint.spread[2],
        "candidates": float(joint.candidates_tried),
    }
