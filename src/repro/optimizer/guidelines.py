"""The paper's strategy-selection guidelines (Section 5).

The concluding section distills the experiments into rules:

* For a *small* number of processors, SP is the easiest and best
  (no cost function needed; startup/coordination overhead only grows
  with processors, and the threshold grows with problem size).
* SE works very well for wide bushy trees, degenerates toward SP on
  linear ones.
* RD works well for right-oriented trees; for left-linear it
  degenerates to SP, for right-linear to FP; trees can be *mirrored*
  for free to become right-oriented.
* FP gives the best overall performance for large processor counts
  over the whole range of shapes.
* Disk-based systems whose memory cannot hold one join entirely
  should always use SP (Section 4.4's discussion).

:func:`advise_strategy` encodes these rules; the ``sp_threshold``
scaling follows the √(problem size) law of Section 2.3.1 — the
optimal degree of parallelism grows with the square root of the
operand sizes, so the processor count below which SP wins scales the
same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Optional

from ..core.cost import Catalog, CostModel
from ..core.trees import (
    Node,
    is_linear,
    joins_postorder,
    mirror,
    num_joins,
    orientation,
)

#: Calibrated on the reproduction's own sweeps: SP stops winning once
#: processors exceed roughly this multiple of √(total work units).
SP_THRESHOLD_COEFFICIENT = 0.035


@dataclass(frozen=True)
class Advice:
    """A strategy recommendation with its §5 rationale."""

    strategy: str
    rationale: str
    mirrored: bool = False
    runner_up: Optional[str] = None

    def __str__(self) -> str:
        extra = " (after mirroring the tree)" if self.mirrored else ""
        return f"{self.strategy}{extra}: {self.rationale}"


def sp_processor_threshold(
    tree: Node, catalog: Catalog, cost_model: CostModel = CostModel()
) -> float:
    """Processor count below which SP is expected to win.

    Proportional to √(total work), per the [WFA92] observation that
    the optimal degree of parallelism scales with the square root of
    the problem size (Section 2.3.1).
    """
    total = cost_model.total_cost(tree, catalog)
    return SP_THRESHOLD_COEFFICIENT * sqrt(max(total, 0.0))


def wide_bushiness(tree: Node) -> float:
    """Fraction of joins with two join children — SE's opportunity.

    A wide bushy tree over n relations approaches ~0.5; long bushy
    trees stay low; linear trees are exactly 0.
    """
    joins = joins_postorder(tree)
    if not joins:
        return 0.0
    from ..core.trees import Join as JoinNode

    both = sum(
        1
        for j in joins
        if isinstance(j.left, JoinNode) and isinstance(j.right, JoinNode)
    )
    return both / len(joins)


def advise_strategy(
    tree: Node,
    catalog: Catalog,
    processors: int,
    cost_model: CostModel = CostModel(),
    memory_holds_one_join: bool = True,
    allow_mirroring: bool = True,
) -> Advice:
    """Choose a strategy for ``tree`` on ``processors`` per Section 5."""
    if not memory_holds_one_join:
        return Advice(
            "SP",
            "memory too small to host a single join entirely: inter-join "
            "parallelism would only increase disk traffic (Section 4.4)",
        )
    threshold = sp_processor_threshold(tree, catalog, cost_model)
    if processors <= threshold:
        return Advice(
            "SP",
            f"small machine ({processors} ≤ ~{threshold:.0f} processors for "
            "this problem size): SP avoids a cost function and its overhead "
            "has not yet started to dominate",
            runner_up="FP",
        )
    bushiness = wide_bushiness(tree)
    orient = orientation(tree)
    if bushiness >= 0.3:
        return Advice(
            "SE",
            f"wide bushy tree ({bushiness:.0%} of joins have two join "
            "children): independent subtrees give SE synchronous "
            "inter-operator parallelism",
            runner_up="FP",
        )
    if orient >= 0.5:
        return Advice(
            "RD",
            "right-oriented tree: long probe pipelines with independently "
            "computable build operands suit segmented right-deep execution "
            "(and RD needs only one hash table per join — less memory than FP)",
            runner_up="FP",
        )
    if orient <= -0.5 and allow_mirroring and not is_linear(tree):
        return Advice(
            "RD",
            "left-oriented tree mirrored right without cost penalty "
            "(join commutes), then executed segmented right-deep",
            mirrored=True,
            runner_up="FP",
        )
    return Advice(
        "FP",
        "large processor count: FP's overhead is smallest and shrinks with "
        "added processors, giving the best overall performance across "
        "query shapes",
        runner_up="RD" if orient > 0 else "SE",
    )


#: Calibrated companion of :data:`SP_THRESHOLD_COEFFICIENT`: the
#: processor count past which added parallelism stops paying for the
#: 5K query lands near the paper's best cells (30-50 processors).
PARALLELISM_COEFFICIENT = 0.08


def advise_parallelism(
    tree: Node,
    catalog: Catalog,
    machine_size: int,
    cost_model: CostModel = CostModel(),
    coefficient: float = PARALLELISM_COEFFICIENT,
) -> int:
    """Recommended degree of parallelism for one query of a workload.

    The [WFA92] square-root law again (Section 2.3.1): the optimal
    degree of parallelism grows with √(problem size), so a shared
    machine should hand each query ``coefficient · √(total work)``
    processors rather than the whole pool.  Clamped to
    ``[num_joins(tree), machine_size]`` so every strategy's plan is
    constructible on the allocation.
    """
    if machine_size < 1:
        raise ValueError("machine_size must be positive")
    total = cost_model.total_cost(tree, catalog)
    ideal = int(round(coefficient * sqrt(max(total, 0.0))))
    floor = min(num_joins(tree), machine_size)
    return max(1, floor, min(machine_size, ideal))


def apply_advice(tree: Node, advice: Advice) -> Node:
    """The tree the advised strategy should run on (mirrored if advised)."""
    return mirror(tree) if advice.mirrored else tree
