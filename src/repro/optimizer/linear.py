"""System-R style linear-tree optimization (Section 1.2 context).

System R [SAC79] restricted join trees to linear ones and picked the
cheapest left-deep tree without cartesian products; [KBZ86] then noted
the restriction may be poor for parallel systems.  This module
implements the linear-tree DP so the reproduction can quantify that
remark: the benchmarks compare the best linear tree against the best
bushy tree under the four parallel strategies.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Optional

from ..core.cost import CostModel
from ..core.trees import Join, Leaf
from .enumerate import PlanEntry
from .graph import QueryGraph


def optimal_left_deep_tree(
    graph: QueryGraph, cost_model: CostModel = CostModel()
) -> PlanEntry:
    """The minimum-total-cost *left-deep* tree (joins extend on the left
    spine, every right operand a base relation), cartesian-free."""
    names = graph.relations
    if len(names) < 2:
        raise ValueError("need at least two relations")
    best: Dict[FrozenSet[str], PlanEntry] = {}
    for name in names:
        subset = frozenset((name,))
        best[subset] = PlanEntry(
            Leaf(name), 0.0, float(graph.cardinalities[name]), 0
        )

    for size in range(2, len(names) + 1):
        for combo in itertools.combinations(names, size):
            subset = frozenset(combo)
            if not graph.connected(subset):
                continue
            chosen: Optional[PlanEntry] = None
            result_card = graph.subset_cardinality(subset)
            for last in subset:
                rest = subset - {last}
                rest_entry = best.get(rest)
                if rest_entry is None:
                    continue
                if not graph.joinable(rest, frozenset((last,))):
                    continue
                join_cost = cost_model.join_cost(
                    rest_entry.cardinality,
                    float(graph.cardinalities[last]),
                    result_card,
                    isinstance(rest_entry.tree, Leaf),
                    True,
                )
                total = rest_entry.total_cost + join_cost
                entry = PlanEntry(
                    Join(rest_entry.tree, Leaf(last)),
                    total,
                    result_card,
                    rest_entry.height + 1,
                )
                if chosen is None or entry.total_cost < chosen.total_cost:
                    chosen = entry
            if chosen is not None:
                best[subset] = chosen
    full = frozenset(names)
    if full not in best:
        raise ValueError("query graph is disconnected; no cartesian-free tree")
    return best[full]


def optimal_right_deep_tree(
    graph: QueryGraph, cost_model: CostModel = CostModel()
) -> PlanEntry:
    """The cheapest *right-deep* tree: the mirror of the left-deep
    optimum (join commutes, so the cost is identical — the mirroring
    trick of Section 5 that makes RD applicable)."""
    from ..core.trees import mirror

    entry = optimal_left_deep_tree(graph, cost_model)
    return PlanEntry(
        mirror(entry.tree), entry.total_cost, entry.cardinality, entry.height
    )
