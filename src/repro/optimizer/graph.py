"""Query graphs for the optimizer's phase one.

Phase one of two-phase optimization (Section 1.2, [HoS91]) picks the
join tree with minimal *total* cost.  Enumerating trees needs to know
which relation pairs have join predicates (to avoid cartesian
products, as System R does) and how selective they are (to estimate
intermediate cardinalities).  A :class:`QueryGraph` carries both.

The paper's regular Wisconsin query corresponds to a chain graph whose
every edge has selectivity ``1/cardinality``: any connected subset
then has cardinality exactly ``cardinality``, making all join trees
equal in total cost — the property Section 4.1 engineers on purpose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Mapping, Sequence, Tuple


@dataclass(frozen=True)
class QueryGraph:
    """Relations, join predicates, and selectivities."""

    cardinalities: Mapping[str, int]
    #: frozenset({a, b}) → selectivity of the predicate between a and b.
    selectivities: Mapping[FrozenSet[str], float]

    def __post_init__(self) -> None:
        for edge, selectivity in self.selectivities.items():
            if len(edge) != 2:
                raise ValueError(f"edges join exactly two relations: {set(edge)}")
            for name in edge:
                if name not in self.cardinalities:
                    raise ValueError(f"edge references unknown relation {name!r}")
            if selectivity < 0:
                raise ValueError("selectivities must be non-negative")

    # -- constructors ------------------------------------------------------

    @classmethod
    def chain(
        cls, names: Sequence[str], cardinalities, selectivity
    ) -> "QueryGraph":
        """A chain query: predicates between consecutive relations.

        ``cardinalities`` and ``selectivity`` may be scalars or
        sequences (one per relation / per edge).
        """
        cards = _per_item(cardinalities, names)
        sels = _per_edge(selectivity, len(names) - 1)
        edges = {
            frozenset((names[i], names[i + 1])): sels[i]
            for i in range(len(names) - 1)
        }
        return cls(dict(zip(names, cards)), edges)

    @classmethod
    def star(
        cls, center: str, satellites: Sequence[str], cardinalities, selectivity
    ) -> "QueryGraph":
        """A star query: every satellite joins the center relation."""
        names = [center] + list(satellites)
        cards = _per_item(cardinalities, names)
        sels = _per_edge(selectivity, len(satellites))
        edges = {
            frozenset((center, sat)): sels[i] for i, sat in enumerate(satellites)
        }
        return cls(dict(zip(names, cards)), edges)

    @classmethod
    def clique(cls, names: Sequence[str], cardinalities, selectivity) -> "QueryGraph":
        """A clique query: predicates between all pairs."""
        cards = _per_item(cardinalities, names)
        pairs = [
            frozenset((a, b)) for i, a in enumerate(names) for b in names[i + 1:]
        ]
        sels = _per_edge(selectivity, len(pairs))
        return cls(dict(zip(names, cards)), dict(zip(pairs, sels)))

    @classmethod
    def regular(cls, names: Sequence[str], cardinality: int) -> "QueryGraph":
        """The paper's regular query (Section 4.1): equal cardinalities
        and one-to-one joins, so every connected subset has cardinality
        ``cardinality`` and all join trees cost the same."""
        if cardinality <= 0:
            raise ValueError("cardinality must be positive")
        return cls.chain(names, cardinality, 1.0 / cardinality)

    # -- queries -------------------------------------------------------------

    @property
    def relations(self) -> Tuple[str, ...]:
        return tuple(self.cardinalities)

    def edges_between(
        self, left: FrozenSet[str], right: FrozenSet[str]
    ) -> List[FrozenSet[str]]:
        """Predicates connecting two disjoint relation sets."""
        return [
            edge
            for edge in self.selectivities
            if len(edge & left) == 1 and len(edge & right) == 1
        ]

    def joinable(self, left: FrozenSet[str], right: FrozenSet[str]) -> bool:
        """Whether joining the two sets avoids a cartesian product."""
        return bool(self.edges_between(left, right))

    def connected(self, subset: FrozenSet[str]) -> bool:
        """Whether ``subset`` induces a connected subgraph."""
        subset = frozenset(subset)
        if not subset:
            return False
        seen = {next(iter(subset))}
        frontier = list(seen)
        while frontier:
            node = frontier.pop()
            for edge in self.selectivities:
                if node in edge:
                    (other,) = edge - {node}
                    if other in subset and other not in seen:
                        seen.add(other)
                        frontier.append(other)
        return seen == set(subset)

    def subset_cardinality(self, subset: FrozenSet[str]) -> float:
        """Estimated cardinality of joining ``subset`` (independence
        assumption: product of cardinalities times the selectivities of
        all predicates inside the subset)."""
        card = 1.0
        for name in subset:
            card *= self.cardinalities[name]
        for edge, selectivity in self.selectivities.items():
            if edge <= subset:
                card *= selectivity
        return card

    def join_cardinality(self, left: FrozenSet[str], right: FrozenSet[str]) -> float:
        """Estimated result cardinality of joining two disjoint sets."""
        return self.subset_cardinality(left | right)


def _per_item(value, names) -> List[int]:
    if isinstance(value, (int, float)):
        return [int(value)] * len(names)
    out = [int(v) for v in value]
    if len(out) != len(names):
        raise ValueError("one cardinality per relation required")
    return out


def _per_edge(value, count: int) -> List[float]:
    if isinstance(value, (int, float)):
        return [float(value)] * count
    out = [float(v) for v in value]
    if len(out) != count:
        raise ValueError("one selectivity per edge required")
    return out
