"""Two-phase optimization (Section 1.2, [HoS91]).

Phase one picks the join tree with minimal total cost (standard query
optimization — here the bushy DP of :mod:`repro.optimizer.enumerate`).
Phase two finds a suitable parallelization for that tree — the
subject of the paper.  Two phase-two modes are provided:

* ``"guidelines"`` — apply the Section 5 rules (fast, no simulation);
* ``"simulate"`` — generate a plan per candidate strategy, run each on
  the simulated machine, and keep the best response time (what the
  paper's experiments do by hand).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..core.cost import Catalog, CostModel
from ..core.schedule import ParallelSchedule
from ..core.strategies import get_strategy, strategy_names
from ..core.trees import Node
from ..sim.machine import MachineConfig
from ..sim.metrics import SimulationResult
from ..sim.run import simulate
from .enumerate import catalog_for, optimal_bushy_tree
from .graph import QueryGraph
from .guidelines import Advice, advise_strategy, apply_advice


@dataclass
class OptimizedPlan:
    """The outcome of two-phase optimization."""

    tree: Node
    catalog: Catalog
    strategy: str
    schedule: ParallelSchedule
    total_cost: float
    advice: Optional[Advice] = None
    #: Response times per candidate strategy (simulate mode only).
    candidates: Optional[Dict[str, float]] = None
    #: Simulation of the chosen plan (simulate mode only).
    simulation: Optional[SimulationResult] = None

    def summary(self) -> str:
        lines = [
            f"phase 1: tree with total cost {self.total_cost:,.0f} units",
            f"phase 2: {self.strategy} on {self.schedule.processors} processors",
        ]
        if self.advice is not None:
            lines.append(f"  rationale: {self.advice.rationale}")
        if self.candidates:
            ranked = sorted(self.candidates.items(), key=lambda kv: kv[1])
            lines.append(
                "  candidates: "
                + ", ".join(f"{name}={rt:.2f}s" for name, rt in ranked)
            )
        return "\n".join(lines)


def two_phase_optimize(
    graph: QueryGraph,
    processors: int,
    mode: str = "simulate",
    config: Optional[MachineConfig] = None,
    strategies: Optional[Sequence[str]] = None,
    cost_model: CostModel = CostModel(),
) -> OptimizedPlan:
    """Optimize a multi-join query end to end."""
    if mode not in ("simulate", "guidelines"):
        raise ValueError(f"unknown phase-two mode {mode!r}")
    entry = optimal_bushy_tree(graph, cost_model)
    catalog = catalog_for(graph)
    if mode == "guidelines":
        advice = advise_strategy(entry.tree, catalog, processors, cost_model)
        tree = apply_advice(entry.tree, advice)
        schedule = get_strategy(advice.strategy).schedule(
            tree, catalog, processors, cost_model
        )
        return OptimizedPlan(
            tree=tree,
            catalog=catalog,
            strategy=advice.strategy,
            schedule=schedule,
            total_cost=entry.total_cost,
            advice=advice,
        )

    candidates = list(strategies) if strategies else strategy_names()
    results: Dict[str, float] = {}
    best_name: Optional[str] = None
    best_schedule: Optional[ParallelSchedule] = None
    best_result: Optional[SimulationResult] = None
    for name in candidates:
        schedule = get_strategy(name).schedule(
            entry.tree, catalog, processors, cost_model
        )
        result = simulate(schedule, catalog, config, cost_model=cost_model)
        results[name] = result.response_time
        if best_result is None or result.response_time < best_result.response_time:
            best_name = name
            best_schedule = schedule
            best_result = result
    assert best_name is not None and best_schedule is not None
    return OptimizedPlan(
        tree=entry.tree,
        catalog=catalog,
        strategy=best_name,
        schedule=best_schedule,
        total_cost=entry.total_cost,
        candidates=results,
        simulation=best_result,
    )
