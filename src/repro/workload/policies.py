"""Processor-allocation policies of the shared machine.

When several queries compete for one pool of processors, somebody has
to decide how many — and which — processors each admitted query gets.
Three policies span the design space the paper's Section 5 leaves
open:

* :class:`ExclusivePolicy` — each query gets a dedicated partition of
  ``share`` processors (the whole machine by default, which is exactly
  the paper's one-query-at-a-time regime run back to back).
* :class:`RoundRobinPolicy` — each query gets ``share`` processors
  picked round-robin over the whole pool, *without* claiming them:
  queries time-share processors, the machine never refuses work.
* :class:`GuidelinePolicy` — predictive sizing: the Section 2.3.1
  square-root law (:func:`repro.optimizer.guidelines.advise_parallelism`)
  sizes the partition from the analytic cost model, and specs with
  ``strategy="auto"`` are resolved through the Section 5 guidelines
  (:func:`~repro.optimizer.guidelines.advise_strategy`).

A policy returns ``None`` from :meth:`~AllocationPolicy.allocate` when
the query must wait (not enough free processors); the engine keeps it
queued and retries on every completion.  A share that can *never* run
the query's strategy raises :class:`InfeasibleQueryError`, which the
engine turns into a per-query rejection rather than a workload abort.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.allocation import claim_lowest
from ..core.cost import Catalog, CostModel
from ..core.trees import Node, num_joins
from ..optimizer.guidelines import (
    advise_parallelism,
    advise_strategy,
    apply_advice,
)
from .mix import QuerySpec

#: Policy names the CLI accepts.
POLICY_NAMES = ("exclusive", "round_robin", "guideline")


class InfeasibleQueryError(ValueError):
    """The policy's share can never run this query's strategy (e.g. FP
    with fewer processors than joins).  The engine catches this and
    rejects the one query instead of aborting the whole workload."""


@dataclass(frozen=True)
class Allocation:
    """One admitted query's processors and resolved plan inputs."""

    processors: Tuple[int, ...]   # physical processor ids
    strategy: str                 # resolved (never "auto")
    tree: Node                    # possibly mirrored by the guidelines
    exclusive: bool               # True: ids are claimed until completion


class MachineView(ABC):
    """What a policy may see of the machine (implemented by the engine's
    shared machine): total size and the sorted free-processor ids."""

    size: int

    @abstractmethod
    def free_ids(self) -> Tuple[int, ...]:
        """Currently unclaimed processor ids, ascending."""


class AllocationPolicy(ABC):
    """Strategy + processor-set decision for one queued query."""

    name: str = "abstract"

    @abstractmethod
    def allocate(
        self,
        spec: QuerySpec,
        tree: Node,
        catalog: Catalog,
        machine: MachineView,
        cost_model: CostModel,
    ) -> Optional[Allocation]:
        """Allocation for ``spec``, or ``None`` to keep it waiting."""

    # -- shared helpers ---------------------------------------------------

    def _resolve(
        self,
        spec: QuerySpec,
        tree: Node,
        catalog: Catalog,
        processors: int,
        cost_model: CostModel,
    ) -> Tuple[Node, str]:
        """Resolve ``strategy="auto"`` through the Section 5 rules."""
        if spec.strategy != "auto":
            return tree, spec.strategy
        advice = advise_strategy(tree, catalog, processors, cost_model)
        return apply_advice(tree, advice), advice.strategy

    def _check_feasible(self, strategy: str, tree: Node, share: int) -> None:
        if strategy == "FP" and share < num_joins(tree):
            raise InfeasibleQueryError(
                f"policy {self.name!r} grants {share} processors but FP "
                f"needs at least one per join ({num_joins(tree)}); "
                "raise the share or pick another strategy"
            )


class ExclusivePolicy(AllocationPolicy):
    """Dedicated partition of ``share`` processors per query (whole
    machine when ``share`` is None — the paper's regime, serialized)."""

    name = "exclusive"

    def __init__(self, share: Optional[int] = None):
        if share is not None and share < 1:
            raise ValueError("share must be positive")
        self.share = share

    def allocate(self, spec, tree, catalog, machine, cost_model):
        share = min(self.share or machine.size, machine.size)
        free = machine.free_ids()
        if len(free) < share:
            return None
        tree, strategy = self._resolve(spec, tree, catalog, share, cost_model)
        self._check_feasible(strategy, tree, share)
        return Allocation(
            processors=claim_lowest(free, share),
            strategy=strategy,
            tree=tree,
            exclusive=True,
        )


class RoundRobinPolicy(AllocationPolicy):
    """Time-shared slices: ``share`` processors per query, assigned
    round-robin over the pool without claiming them.  Concurrent
    queries overlap on processors and queue behind each other at chunk
    granularity — admission is bounded only by the engine's gates."""

    name = "round_robin"

    def __init__(self, share: int):
        if share < 1:
            raise ValueError("share must be positive")
        self.share = share
        self._cursor = 0

    def allocate(self, spec, tree, catalog, machine, cost_model):
        share = min(self.share, machine.size)
        tree, strategy = self._resolve(spec, tree, catalog, share, cost_model)
        self._check_feasible(strategy, tree, share)
        ids = tuple(
            (self._cursor + offset) % machine.size for offset in range(share)
        )
        self._cursor = (self._cursor + share) % machine.size
        return Allocation(
            processors=ids, strategy=strategy, tree=tree, exclusive=False
        )


class GuidelinePolicy(AllocationPolicy):
    """Predictive sizing from the analytic cost model: each query gets
    the √(problem size) partition of Section 2.3.1, capped by
    ``max_share``, claimed exclusively."""

    name = "guideline"

    def __init__(self, max_share: Optional[int] = None):
        if max_share is not None and max_share < 1:
            raise ValueError("max_share must be positive")
        self.max_share = max_share

    def allocate(self, spec, tree, catalog, machine, cost_model):
        cap = min(self.max_share or machine.size, machine.size)
        share = min(advise_parallelism(tree, catalog, cap, cost_model), cap)
        share = max(share, min(num_joins(tree), cap))
        free = machine.free_ids()
        if len(free) < share:
            return None
        tree, strategy = self._resolve(spec, tree, catalog, share, cost_model)
        self._check_feasible(strategy, tree, share)
        return Allocation(
            processors=claim_lowest(free, share),
            strategy=strategy,
            tree=tree,
            exclusive=True,
        )


def make_policy(
    name: str,
    share: Optional[int] = None,
) -> AllocationPolicy:
    """Policy factory used by the CLI and the api facade."""
    if name == "exclusive":
        return ExclusivePolicy(share)
    if name == "round_robin":
        if share is None:
            raise ValueError("round_robin needs an explicit per-query share")
        return RoundRobinPolicy(share)
    if name == "guideline":
        return GuidelinePolicy(share)
    raise ValueError(
        f"unknown policy {name!r}; expected one of {POLICY_NAMES}"
    )
