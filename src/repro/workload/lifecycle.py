"""Request-lifecycle policies: load shedding and overload sweeps.

Deadlines turn an overloaded workload from "slow" into "wasteful": an
engine that admits every arrival spends machine time on queries that
are already doomed to miss their deadline, and the paper-style
goodput-vs-load curve collapses past the saturation knee.  A
:class:`ShedPolicy` decides *which* arrivals not to serve:

* :class:`DropNewestPolicy` — the classic bounded-queue bounce: a
  newcomer that finds the admission queue full is rejected.  This is
  exactly what the engine's bare ``queue_limit`` has always done, so
  configuring it explicitly is a strict no-op.
* :class:`DropOldestPolicy` — on overflow evict the queue *head*
  instead: the query that has already burnt the most of its deadline
  budget waiting is the least worth keeping.
* :class:`DeadlineAwarePolicy` — predictive shedding at arrival: using
  the Section 3 analytic cost model (:func:`repro.model.analytic.predict`)
  and the current queue occupancy, estimate the newcomer's completion
  time; if the estimate already misses its deadline, shed it *before*
  it consumes queue space or machine time.

:func:`overload_sweep` drives the load axis past the knee for each
strategy and shedding configuration and reduces every cell to an
:class:`OverloadPoint` — the input of the report's overload section
and of ``benchmarks/bench_overload.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import WorkloadEngine
    from .metrics import QueryRecord, WorkloadResult
    from .mix import QuerySpec

#: Shed-policy names the engine, API, and CLI accept.
SHED_POLICY_NAMES = ("drop_newest", "drop_oldest", "deadline_aware")


class ShedPolicy:
    """Decides which queries an overloaded engine refuses to serve.

    Two hooks, both deterministic and side-effect free with respect to
    the simulation clock:

    ``shed_on_arrival(engine, record)``
        Called before the newcomer joins the queue.  Return ``True``
        to shed it immediately (predictive policies).
    ``overflow_victim(engine, newcomer)``
        Called when the queue exceeds ``queue_limit`` after an arrival
        failed to start.  Return the queued record to evict — the
        newcomer itself for drop-newest semantics, another queued
        record otherwise.  ``overflow_reason`` labels the eviction.
    """

    name = "abstract"
    #: Row label applied to overflow victims (the eviction mechanism).
    overflow_reason = "drop_newest"

    def shed_on_arrival(
        self, engine: "WorkloadEngine", record: "QueryRecord"
    ) -> bool:
        return False

    def overflow_victim(
        self, engine: "WorkloadEngine", newcomer: "QueryRecord"
    ) -> "QueryRecord":
        return newcomer


class DropNewestPolicy(ShedPolicy):
    """Reject the arrival that overflowed the queue (the legacy
    ``queue_limit`` bounce, now with a name)."""

    name = "drop_newest"
    overflow_reason = "drop_newest"


class DropOldestPolicy(ShedPolicy):
    """On overflow evict the queue head — it has waited longest and
    has the least deadline budget left; the newcomer stays."""

    name = "drop_oldest"
    overflow_reason = "drop_oldest"

    def overflow_victim(
        self, engine: "WorkloadEngine", newcomer: "QueryRecord"
    ) -> "QueryRecord":
        return engine._queue[0]


class DeadlineAwarePolicy(ShedPolicy):
    """Shed arrivals whose *predicted* completion already misses their
    deadline, before they occupy the queue.

    The estimate is first-order queueing arithmetic over the analytic
    cost model: with per-query share ``s`` the machine serves
    ``slots = size // s`` queries at once, so

    ``completion ≈ now + time_until_a_slot_frees
    + (queued analytic service estimates) / slots + own estimate``.

    With an exclusive whole-machine policy (``slots == 1``, the
    paper's regime) this is exact up to the model error, which is why
    goodput under ``deadline_aware`` stays near capacity past the
    knee: every admitted query still has time to finish.  Predictions
    are cached per ``(spec, share)`` — specs are frozen dataclasses —
    so the policy costs one cost-model evaluation per distinct query
    class, not per arrival.  Queries without a deadline are never
    shed here (they fall through to the overflow rule, drop-newest).
    """

    name = "deadline_aware"
    overflow_reason = "drop_newest"

    def __init__(self, share: Optional[int] = None):
        if share is not None and share < 1:
            raise ValueError("share must be positive")
        self.share = share
        self._estimates: Dict[Tuple["QuerySpec", int], Optional[float]] = {}

    # -- analytic plumbing ------------------------------------------------

    def _effective_share(self, engine: "WorkloadEngine") -> int:
        share = self.share
        if share is None:
            share = getattr(engine.policy, "share", None)
        if share is None:
            share = getattr(engine.policy, "max_share", None)
        if share is None:
            share = engine.machine.size
        return max(1, min(share, engine.machine.size))

    def service_estimate(
        self, engine: "WorkloadEngine", spec: "QuerySpec"
    ) -> Optional[float]:
        """Analytic response time of ``spec`` on this engine's share;
        ``None`` when the plan is infeasible at that share (admission
        will reject such a query anyway)."""
        share = self._effective_share(engine)
        key = (spec, share)
        if key not in self._estimates:
            from ..model.analytic import predict
            from ..optimizer.guidelines import advise_strategy, apply_advice

            try:
                tree = spec.tree()
                catalog = spec.catalog()
                strategy = spec.strategy
                if strategy == "auto":
                    advice = advise_strategy(
                        tree, catalog, share, engine.cost_model
                    )
                    tree = apply_advice(tree, advice)
                    strategy = advice.strategy
                self._estimates[key] = predict(
                    tree,
                    catalog,
                    strategy,
                    share,
                    engine.machine.config,
                    engine.cost_model,
                ).response_time
            except ValueError:
                self._estimates[key] = None
        return self._estimates[key]

    def predicted_completion(
        self, engine: "WorkloadEngine", record: "QueryRecord"
    ) -> Optional[float]:
        """Estimated absolute completion time if admitted now."""
        own = self.service_estimate(engine, record.spec)
        if own is None:
            return None
        now = engine.machine.clock.now
        share = self._effective_share(engine)
        slots = max(1, engine.machine.size // share)
        queued = 0.0
        for waiting in engine._queue:
            estimate = self.service_estimate(engine, waiting.spec)
            queued += estimate if estimate is not None else own
        free_in = 0.0
        if engine._in_flight >= slots and engine._active:
            residuals = []
            for active, _sim, _alloc, _mem, _prefix in engine._active.values():
                estimate = self.service_estimate(engine, active.spec)
                if estimate is None:
                    continue
                started = (
                    active.admitted if active.admitted is not None else now
                )
                residuals.append(max(0.0, estimate - (now - started)))
            if residuals:
                free_in = min(residuals)
        return now + free_in + queued / slots + own

    # -- the policy hook --------------------------------------------------

    def shed_on_arrival(
        self, engine: "WorkloadEngine", record: "QueryRecord"
    ) -> bool:
        if record.deadline is None:
            return False
        completion = self.predicted_completion(engine, record)
        if completion is None:
            return False
        return completion > record.arrival + record.deadline


def make_shed_policy(
    shed: Union[None, str, ShedPolicy],
) -> Optional[ShedPolicy]:
    """``None`` (no shedding beyond the bare queue bounce), a policy
    name from :data:`SHED_POLICY_NAMES`, or a ready instance."""
    if shed is None or isinstance(shed, ShedPolicy):
        return shed
    if shed == "drop_newest":
        return DropNewestPolicy()
    if shed == "drop_oldest":
        return DropOldestPolicy()
    if shed == "deadline_aware":
        return DeadlineAwarePolicy()
    raise ValueError(
        f"unknown shed policy {shed!r}; expected one of {SHED_POLICY_NAMES}"
    )


# -- overload sweeps ------------------------------------------------------


@dataclass(frozen=True)
class OverloadPoint:
    """One (strategy, offered load, shed policy) cell of an overload
    sweep, reduced to the goodput-under-overload story."""

    strategy: str
    load: float               # offered arrival rate, queries/s
    shed: Optional[str]       # shed policy name (None: admit everything)
    deadline: Optional[float]
    offered: int              # queries submitted
    completed: int
    shed_count: int           # rejected by shedding/expiry (never ran to term)
    expired: int              # shed because the deadline passed while queued
    deadline_aborted: int     # started, then aborted at the deadline
    cancelled: int
    goodput: float            # in-deadline completions per simulated second
    miss_rate: Optional[float]  # deadline misses among completed queries
    p95_latency: Optional[float]
    utilization: float

    @classmethod
    def of(
        cls,
        strategy: str,
        load: float,
        shed: Optional[str],
        deadline: Optional[float],
        result: "WorkloadResult",
    ) -> "OverloadPoint":
        return cls(
            strategy=strategy,
            load=load,
            shed=shed,
            deadline=deadline,
            offered=len(result.records),
            completed=len(result.completed()),
            shed_count=result.shed_count(),
            expired=result.expired_count(),
            deadline_aborted=result.deadline_aborted_count(),
            cancelled=result.cancelled_count(),
            goodput=result.goodput(),
            miss_rate=result.deadline_miss_rate(),
            p95_latency=result.latency_stats()["p95"],
            utilization=result.utilization(),
        )

    def row(self) -> Dict:
        return {
            "strategy": self.strategy,
            "load": self.load,
            "shed": self.shed,
            "deadline": self.deadline,
            "offered": self.offered,
            "completed": self.completed,
            "shed_count": self.shed_count,
            "expired": self.expired,
            "deadline_aborted": self.deadline_aborted,
            "cancelled": self.cancelled,
            "goodput": self.goodput,
            "miss_rate": self.miss_rate,
            "p95_latency": self.p95_latency,
            "utilization": self.utilization,
        }


def overload_sweep(
    *,
    strategies: Sequence[str] = ("SP", "SE", "RD", "FP"),
    loads: Sequence[float] = (0.02, 0.05, 0.1, 0.2),
    sheds: Sequence[Optional[str]] = (None, "deadline_aware"),
    deadline: float = 120.0,
    duration: float = 300.0,
    machine_size: int = 40,
    seed: int = 0,
    queue_limit: Optional[int] = 16,
    **workload_kwargs,
) -> List[OverloadPoint]:
    """One deadlined workload per (strategy, load, shed) cell.

    Every cell regenerates its arrivals from the same base seed, so
    the load and shed axes are the only things that vary along a row;
    extra keyword arguments pass straight to
    :func:`repro.api.run_workload`.
    """
    from .. import api

    points: List[OverloadPoint] = []
    for strategy in strategies:
        for load in loads:
            for shed in sheds:
                result = api.run_workload(
                    arrivals="poisson",
                    rate=load,
                    duration=duration,
                    seed=seed,
                    machine_size=machine_size,
                    strategy=strategy,
                    deadline=deadline,
                    shed=shed,
                    queue_limit=queue_limit,
                    **workload_kwargs,
                )
                points.append(
                    OverloadPoint.of(strategy, load, shed, deadline, result)
                )
    return points


__all__ = [
    "SHED_POLICY_NAMES",
    "ShedPolicy",
    "DropNewestPolicy",
    "DropOldestPolicy",
    "DeadlineAwarePolicy",
    "make_shed_policy",
    "OverloadPoint",
    "overload_sweep",
]
