"""Pluggable query schedulers and multi-tenant fair share.

The engine's admission queue used to be a hardwired FIFO: every layer
downstream of it (deadlines, shedding, recovery) was policy-rich while
the *ordering* decision was not.  A :class:`Scheduler` owns that
decision — :meth:`~Scheduler.enqueue` mirrors the admission queue,
:meth:`~Scheduler.pick` names the next query to try, and
:meth:`~Scheduler.remove` retires entries — and the engine consults it
instead of popping its deque head:

* :class:`FifoScheduler` — strict arrival order; a byte-identical
  alias of the legacy queue (the golden-identity tests pin this).
* :class:`EdfScheduler` — earliest absolute deadline
  (``arrival + deadline``) first; deadline-free queries go last.
* :class:`SjfScheduler` — shortest job first, where "short" is the
  Section 3 analytic response time at the query's *advised*
  parallelism (:class:`ServiceEstimator`).
* :class:`PriorityScheduler` — highest tenant priority first
  (:class:`TenantSpec.priority`), FIFO within a priority band.
* :class:`WfqScheduler` — weighted fair queueing over tenants with
  virtual-time accounting: each query gets a finish tag
  ``max(virtual_time, tenant_finish) + estimate / weight``, the
  smallest tag runs next, and the virtual clock advances to the tag
  of whatever was admitted.  Heavier tenants drain proportionally
  faster; an abusive tenant's backlog inflates only its *own* tags.

Two simulator-grade realism knobs ride along (both ideas from the
pmsim exemplar):

``pool_size``
    A bounded visibility pool: the scheduler examines only the first
    K queued queries (in arrival order) per decision, modelling a
    scheduler that cannot afford to scan an unbounded queue.
``scheduling_cost``
    An explicit per-decision cost charged on the *simulated* clock:
    each admission decision occupies the scheduler for that long
    before the query starts, so scheduling overhead itself becomes a
    measurable axis.

Multi-tenancy: tag specs with :attr:`QuerySpec.tenant` and describe
each tenant with a :class:`TenantSpec` (weight, priority, default
deadline, per-tenant queue/concurrency caps, optional open-loop
rate).  :func:`fairness_sweep` drives the isolation story —
one abusive tenant at a multiple of its fair rate against one
well-behaved tenant — and reduces every cell to a
:class:`FairnessPoint` for the report and
``benchmarks/bench_fairness.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import WorkloadEngine
    from .metrics import QueryRecord, WorkloadResult
    from .mix import QuerySpec
    from .policies import MachineView

#: Scheduler names the engine, API, CLI, and runner accept.
SCHEDULER_NAMES = ("fifo", "edf", "sjf", "priority", "wfq")


# -- tenants --------------------------------------------------------------


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's service contract.

    ``weight``
        Fair-share weight under :class:`WfqScheduler` — a tenant with
        twice the weight drains its backlog twice as fast.
    ``priority``
        Rank under :class:`PriorityScheduler` (higher runs first).
    ``deadline``
        Default per-query deadline in simulated seconds from arrival
        for this tenant's queries; a spec's own deadline still wins,
        and the engine-wide default applies to untenanted queries.
    ``queue_limit`` / ``max_concurrent``
        Per-tenant caps: arrivals beyond ``queue_limit`` queued
        queries are shed (``tenant_queue_limit``), and at most
        ``max_concurrent`` of the tenant's queries execute at once
        (others stay queued but are skipped by the scheduler).
    ``rate``
        Optional open-loop arrival rate (queries per simulated
        second).  :func:`repro.api.run_workload` builds one seeded
        arrival stream per rated tenant and merges them; tenants
        without a rate contribute no dedicated stream.
    """

    name: str
    weight: float = 1.0
    priority: int = 0
    deadline: Optional[float] = None
    queue_limit: Optional[int] = None
    max_concurrent: Optional[int] = None
    rate: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a tenant needs a non-empty name")
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("tenant deadline must be positive")
        if self.queue_limit is not None and self.queue_limit < 0:
            raise ValueError("tenant queue_limit must be non-negative")
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ValueError("tenant max_concurrent must be positive")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("tenant rate must be positive")

    def to_payload(self) -> Dict:
        """JSON-able form; optional fields appear only when set."""
        data: Dict = {"name": self.name}
        if self.weight != 1.0:
            data["weight"] = self.weight
        if self.priority != 0:
            data["priority"] = self.priority
        for field_name in ("deadline", "queue_limit", "max_concurrent", "rate"):
            value = getattr(self, field_name)
            if value is not None:
                data[field_name] = value
        return data

    @classmethod
    def from_payload(cls, data: Mapping) -> "TenantSpec":
        accepted = (
            "name", "weight", "priority", "deadline", "queue_limit",
            "max_concurrent", "rate",
        )
        unknown = sorted(key for key in data if key not in accepted)
        if unknown:
            raise ValueError(
                f"unknown tenant keys {unknown}; accepted: {accepted}"
            )
        if "name" not in data:
            raise ValueError("a tenant payload needs a 'name'")
        return cls(**dict(data))


def make_tenants(
    tenants: Union[
        None,
        Mapping,
        Sequence[Union[TenantSpec, Mapping]],
    ],
) -> Dict[str, TenantSpec]:
    """Normalize every accepted tenant spelling to ``{name: TenantSpec}``.

    Accepts ``None`` (no tenants), a ready ``{name: TenantSpec}``
    mapping, a sequence of :class:`TenantSpec` or payload dicts, or a
    JSON document of the form ``{"tenants": [...]}`` (what the CLI's
    ``--tenants spec.json`` and the service carry).
    """
    if tenants is None:
        return {}
    if isinstance(tenants, Mapping):
        if "tenants" in tenants:
            return make_tenants(tenants["tenants"])
        resolved: Dict[str, TenantSpec] = {}
        for name, spec in tenants.items():
            if not isinstance(spec, TenantSpec):
                raise TypeError(
                    "a tenant mapping must be {name: TenantSpec}; use "
                    "{'tenants': [...]} for the JSON payload form"
                )
            if spec.name != name:
                raise ValueError(
                    f"tenant key {name!r} does not match spec name "
                    f"{spec.name!r}"
                )
            resolved[name] = spec
        return resolved
    specs: List[TenantSpec] = []
    for entry in tenants:
        if isinstance(entry, TenantSpec):
            specs.append(entry)
        elif isinstance(entry, Mapping):
            specs.append(TenantSpec.from_payload(entry))
        else:
            raise TypeError(
                "tenants entries must be TenantSpec or payload dicts, "
                f"got {type(entry).__name__}"
            )
    resolved = {}
    for spec in specs:
        if spec.name in resolved:
            raise ValueError(f"duplicate tenant {spec.name!r}")
        resolved[spec.name] = spec
    return resolved


# -- analytic service estimates -------------------------------------------


class ServiceEstimator:
    """Analytic response-time estimates at advised parallelism.

    SJF and WFQ need a notion of job *size* before a query runs.  The
    Section 3 cost model supplies it: plan the spec the way admission
    would (resolving ``"auto"`` through the Section 5 guidelines),
    size it with :func:`~repro.optimizer.guidelines.advise_parallelism`
    clamped to the machine, and take the analytic response time.
    Estimates are cached per frozen spec, so the cost model runs once
    per distinct query class, not per arrival.  An infeasible spec
    estimates to ``None`` (SJF sends it last; WFQ charges a nominal
    slice — admission will reject it anyway).
    """

    def __init__(self) -> None:
        self._cache: Dict["QuerySpec", Optional[float]] = {}

    def estimate(
        self, engine: Optional["WorkloadEngine"], spec: "QuerySpec"
    ) -> Optional[float]:
        if spec in self._cache:
            return self._cache[spec]
        from ..core.cost import CostModel
        from ..core.trees import num_joins
        from ..model.analytic import predict
        from ..optimizer.guidelines import (
            advise_parallelism,
            advise_strategy,
            apply_advice,
        )

        if engine is not None:
            size = engine.machine.size
            config = engine.machine.config
            cost_model = engine.cost_model
        else:
            size, config, cost_model = 40, None, CostModel()
        try:
            tree = spec.tree()
            catalog = spec.catalog()
            strategy = spec.strategy
            if strategy == "auto":
                advice = advise_strategy(tree, catalog, size, cost_model)
                tree = apply_advice(tree, advice)
                strategy = advice.strategy
            processors = advise_parallelism(tree, catalog, size, cost_model)
            if strategy == "FP":
                # Pipelining needs one processor per join to be feasible.
                processors = max(processors, num_joins(tree))
            processors = max(1, min(processors, size))
            estimate = predict(
                tree, catalog, strategy, processors, config, cost_model
            ).response_time
        except ValueError:
            estimate = None
        self._cache[spec] = estimate
        return estimate


# -- the scheduler protocol -----------------------------------------------


class Scheduler:
    """Ordering policy over the admission queue.

    The engine mirrors queue membership into the scheduler
    (:meth:`enqueue` on arrival *and on recovery re-admission*,
    :meth:`remove` on admission/shedding/cancellation) and asks
    :meth:`pick` which queued query to try next.  ``pick`` scans the
    *visibility pool* — the first ``pool_size`` entries in arrival
    order (all of them when unbounded) — and returns the admissible
    entry with the smallest :meth:`rank`; ties resolve to the earliest
    enqueued, so every policy is deterministic under seeded traffic.

    A queued query whose tenant is at its concurrency cap is skipped,
    not blocked on: the head-of-line never starves other tenants.
    Expiry is *not* the scheduler's job — the engine re-checks the
    picked query's deadline at the admission instant (completion and
    expiry events can share an instant).
    """

    name = "abstract"

    def __init__(self) -> None:
        self._entries: List["QueryRecord"] = []
        self.pool_size: Optional[int] = None
        self.engine: Optional["WorkloadEngine"] = None

    def attach(
        self,
        engine: Optional["WorkloadEngine"],
        pool_size: Optional[int] = None,
    ) -> None:
        """Bind to one engine run (tenant lookups, machine context)."""
        if pool_size is not None and pool_size < 1:
            raise ValueError("pool_size must be positive")
        self.engine = engine
        self.pool_size = pool_size

    def __len__(self) -> int:
        return len(self._entries)

    def enqueue(self, record: "QueryRecord") -> None:
        """A query joined the admission queue.  Recovery re-admissions
        arrive here too, carrying their *original* ``record.arrival``
        — a retry is not a fresh arrival."""
        self._entries.append(record)

    def remove(self, record: "QueryRecord") -> bool:
        """Retire one entry by identity (records are mutable)."""
        for position, entry in enumerate(self._entries):
            if entry is record:
                del self._entries[position]
                return True
        return False

    def visible(self) -> List["QueryRecord"]:
        """The visibility pool: the first ``pool_size`` queued queries
        in arrival order (everything when unbounded)."""
        if self.pool_size is None:
            return list(self._entries)
        return self._entries[: self.pool_size]

    def pick(
        self, machine: "MachineView", now: float
    ) -> Optional["QueryRecord"]:
        """The queued query to try next; ``None`` when nothing in the
        pool is admissible."""
        best: Optional["QueryRecord"] = None
        best_rank: Optional[Tuple] = None
        for record in self.visible():
            if not self._admissible(record):
                continue
            rank = self.rank(record, machine, now)
            if best is None or rank < best_rank:
                best, best_rank = record, rank
        return best

    def admitted(self, record: "QueryRecord", now: float) -> None:
        """Hook: the engine started ``record`` (virtual-time advance)."""

    def rank(
        self, record: "QueryRecord", machine: "MachineView", now: float
    ) -> Tuple:
        raise NotImplementedError

    def _admissible(self, record: "QueryRecord") -> bool:
        if self.engine is None:
            return True
        return self.engine._tenant_can_run(record)


class FifoScheduler(Scheduler):
    """Strict enqueue order — the legacy queue with a name.  Crash
    retries re-enter at the tail, exactly as the deque did, so a
    ``fifo`` run is byte-identical to a scheduler-free one."""

    name = "fifo"

    def rank(
        self, record: "QueryRecord", machine: "MachineView", now: float
    ) -> Tuple:
        return ()  # all equal: the tie-break (enqueue order) decides

    def pick(
        self, machine: "MachineView", now: float
    ) -> Optional["QueryRecord"]:
        for record in self.visible():
            if self._admissible(record):
                return record
        return None


class EdfScheduler(Scheduler):
    """Earliest absolute deadline (``arrival + deadline``) first.
    Because re-admissions keep their original arrival, a crash retry
    keeps its original urgency instead of rejoining as a fresh
    arrival.  Deadline-free queries rank behind every deadlined one."""

    name = "edf"

    def rank(
        self, record: "QueryRecord", machine: "MachineView", now: float
    ) -> Tuple:
        if record.deadline is None:
            return (math.inf,)
        return (record.arrival + record.deadline,)


class SjfScheduler(Scheduler):
    """Shortest analytic job first; infeasible estimates go last."""

    name = "sjf"

    def __init__(self, estimator: Optional[ServiceEstimator] = None) -> None:
        super().__init__()
        self.estimator = estimator or ServiceEstimator()

    def rank(
        self, record: "QueryRecord", machine: "MachineView", now: float
    ) -> Tuple:
        estimate = self.estimator.estimate(self.engine, record.spec)
        return (math.inf if estimate is None else estimate,)


class PriorityScheduler(Scheduler):
    """Highest tenant priority first; FIFO within a band.  Untenanted
    queries (and tenants without a spec) run at priority 0."""

    name = "priority"

    def rank(
        self, record: "QueryRecord", machine: "MachineView", now: float
    ) -> Tuple:
        return (-self._priority(record),)

    def _priority(self, record: "QueryRecord") -> int:
        tenant = self._tenant_spec(record)
        return tenant.priority if tenant is not None else 0

    def _tenant_spec(self, record: "QueryRecord") -> Optional[TenantSpec]:
        if self.engine is None or record.spec.tenant is None:
            return None
        return self.engine.tenants.get(record.spec.tenant)


class WfqScheduler(Scheduler):
    """Weighted fair queueing over tenants (virtual-time accounting).

    Every enqueued query gets a finish tag
    ``max(virtual_time, tenant_last_finish) + estimate / weight``;
    the smallest tag runs next and the virtual clock catches up to
    it on admission.  Backlog from one tenant only pushes that
    tenant's own tags out, so a flooding tenant cannot starve a
    well-behaved one — the fairness bench pins this.  A re-admitted
    crash retry keeps the tag of its original arrival (the tag map is
    keyed by query index), so recovery does not grant a fresh share.
    Untenanted queries form one implicit tenant at weight 1.
    """

    name = "wfq"

    def __init__(self, estimator: Optional[ServiceEstimator] = None) -> None:
        super().__init__()
        self.estimator = estimator or ServiceEstimator()
        self._virtual = 0.0
        self._tenant_finish: Dict[Optional[str], float] = {}
        self._tags: Dict[int, float] = {}

    def enqueue(self, record: "QueryRecord") -> None:
        if record.index not in self._tags:
            tenant = record.spec.tenant
            start = max(
                self._virtual, self._tenant_finish.get(tenant, 0.0)
            )
            tag = start + self._slice(record)
            self._tags[record.index] = tag
            self._tenant_finish[tenant] = tag
        super().enqueue(record)

    def rank(
        self, record: "QueryRecord", machine: "MachineView", now: float
    ) -> Tuple:
        return (self._tags[record.index],)

    def admitted(self, record: "QueryRecord", now: float) -> None:
        tag = self._tags.get(record.index)
        if tag is not None and tag > self._virtual:
            self._virtual = tag

    def _slice(self, record: "QueryRecord") -> float:
        estimate = self.estimator.estimate(self.engine, record.spec)
        if estimate is None or not math.isfinite(estimate):
            estimate = 1.0  # infeasible: admission rejects it anyway
        weight = 1.0
        if self.engine is not None and record.spec.tenant is not None:
            spec = self.engine.tenants.get(record.spec.tenant)
            if spec is not None:
                weight = spec.weight
        return estimate / weight


def make_scheduler(
    scheduler: Union[None, str, Scheduler],
) -> Optional[Scheduler]:
    """``None`` (the legacy FIFO deque, untouched), a name from
    :data:`SCHEDULER_NAMES`, or a ready :class:`Scheduler` instance."""
    if scheduler is None or isinstance(scheduler, Scheduler):
        return scheduler
    factories = {
        "fifo": FifoScheduler,
        "edf": EdfScheduler,
        "sjf": SjfScheduler,
        "priority": PriorityScheduler,
        "wfq": WfqScheduler,
    }
    try:
        return factories[scheduler]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; expected one of "
            f"{SCHEDULER_NAMES}"
        ) from None


# -- fairness sweeps ------------------------------------------------------


@dataclass(frozen=True)
class FairnessPoint:
    """One (scheduler, abuse factor, tenant) cell of a fairness sweep:
    what one tenant got while another misbehaved."""

    scheduler: str
    abuse_factor: float       # abusive tenant's rate / its fair rate
    tenant: str
    offered: int              # queries this tenant submitted
    completed: int
    shed: int                 # shed/expired, never ran to term
    goodput: float            # in-deadline completions per second offered
    share: float              # this tenant's fraction of total goodput
    p95_latency: Optional[float]

    def row(self) -> Dict:
        return {
            "scheduler": self.scheduler,
            "abuse_factor": self.abuse_factor,
            "tenant": self.tenant,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "goodput": self.goodput,
            "share": self.share,
            "p95_latency": self.p95_latency,
        }


def fairness_sweep(
    *,
    schedulers: Sequence[str] = ("fifo", "wfq"),
    abuse_factors: Sequence[float] = (1.0, 2.0, 3.0),
    good_rate: float = 0.02,
    abuse_fair_rate: Optional[float] = None,
    deadline: float = 150.0,
    duration: float = 600.0,
    machine_size: int = 40,
    good_weight: float = 1.0,
    abuse_weight: float = 1.0,
    seed: int = 0,
    **workload_kwargs,
) -> List[FairnessPoint]:
    """Two open-loop tenants per cell: ``good`` at its steady rate and
    ``abuse`` at ``abuse_factor`` times its fair rate
    (``abuse_fair_rate``, defaulting to ``good_rate``).  Both carry the
    same per-tenant deadline, so goodput means in-deadline completions.
    Returns one :class:`FairnessPoint` per (scheduler, factor, tenant);
    extra keyword arguments pass to :func:`repro.api.run_workload`.
    """
    from .. import api

    fair = abuse_fair_rate if abuse_fair_rate is not None else good_rate
    points: List[FairnessPoint] = []
    for scheduler in schedulers:
        for factor in abuse_factors:
            tenants = (
                TenantSpec(
                    "good", weight=good_weight, deadline=deadline,
                    rate=good_rate,
                ),
                TenantSpec(
                    "abuse", weight=abuse_weight, deadline=deadline,
                    rate=fair * factor,
                ),
            )
            result = api.run_workload(
                arrivals="poisson",
                duration=duration,
                seed=seed,
                machine_size=machine_size,
                scheduler=scheduler,
                tenants=tenants,
                **workload_kwargs,
            )
            points.extend(fairness_points(result, scheduler, factor))
    return points


def fairness_points(
    result: "WorkloadResult", scheduler: str, abuse_factor: float
) -> List[FairnessPoint]:
    """Reduce one multi-tenant run to per-tenant fairness points."""
    summary = result.tenant_summary()
    total_goodput = sum(cell["goodput"] for cell in summary.values())
    points = []
    for tenant in sorted(summary):
        cell = summary[tenant]
        points.append(FairnessPoint(
            scheduler=scheduler,
            abuse_factor=abuse_factor,
            tenant=tenant,
            offered=cell["submitted"],
            completed=cell["completed"],
            shed=cell["shed"],
            goodput=cell["goodput"],
            share=(
                cell["goodput"] / total_goodput if total_goodput > 0 else 0.0
            ),
            p95_latency=cell["latency"]["p95"],
        ))
    return points


__all__ = [
    "SCHEDULER_NAMES",
    "EdfScheduler",
    "FairnessPoint",
    "FifoScheduler",
    "PriorityScheduler",
    "Scheduler",
    "ServiceEstimator",
    "SjfScheduler",
    "TenantSpec",
    "WfqScheduler",
    "fairness_points",
    "fairness_sweep",
    "make_scheduler",
    "make_tenants",
]
