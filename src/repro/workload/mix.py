"""Query specifications and seeded workload mixes.

A :class:`QuerySpec` names one query the way the paper's experiments
do — a Figure 8 shape, a relation count, a cardinality, and a
strategy (or ``"auto"`` to defer to the Section 5 guidelines at
admission time).  A :class:`QueryMix` is a weighted population of
specs; sampling it with an explicit seed gives reproducible traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import accumulate
from typing import List, Optional, Sequence, Tuple

from ..core.cost import Catalog
from ..core.shapes import SHAPE_NAMES, make_shape, paper_relation_names
from ..core.trees import Node

#: Strategy names a spec may carry; "auto" defers to the guidelines.
STRATEGY_CHOICES = ("SP", "SE", "RD", "FP", "auto")


@dataclass(frozen=True)
class QuerySpec:
    """One query of the workload, in the paper's own vocabulary.

    ``deadline`` is this query's response-time bound in simulated
    seconds *relative to its arrival* (``None``: no deadline).  A
    per-spec deadline overrides any workload-level deadline the engine
    carries.

    ``tenant`` tags the query with the tenant that submitted it
    (``None``: untenanted).  The engine resolves the tag against its
    :class:`~repro.workload.sched.TenantSpec` table for fair-share
    weights, priorities, default deadlines, and per-tenant caps.
    """

    shape: str
    cardinality: int = 5_000
    strategy: str = "FP"
    relations: int = 10
    deadline: Optional[float] = None
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if self.shape not in SHAPE_NAMES:
            raise ValueError(
                f"unknown shape {self.shape!r}; expected one of {SHAPE_NAMES}"
            )
        if self.strategy not in STRATEGY_CHOICES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; expected one of "
                f"{STRATEGY_CHOICES}"
            )
        if self.cardinality < 1:
            raise ValueError("cardinality must be positive")
        if self.relations < 2:
            raise ValueError("a join query needs at least two relations")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (seconds from arrival)")
        if self.tenant is not None and not self.tenant:
            raise ValueError("tenant must be a non-empty name or None")

    def tree(self) -> Node:
        return make_shape(self.shape, paper_relation_names(self.relations))

    def catalog(self) -> Catalog:
        return Catalog.regular(
            paper_relation_names(self.relations), self.cardinality
        )

    def label(self) -> str:
        return f"{self.shape}/{self.cardinality}/{self.strategy}"


@dataclass(frozen=True)
class QueryMix:
    """A weighted population of query specs."""

    specs: Tuple[QuerySpec, ...]
    weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if not self.specs:
            raise ValueError("a mix needs at least one spec")
        if self.weights is not None:
            if len(self.weights) != len(self.specs):
                raise ValueError("one weight per spec")
            if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
                raise ValueError("weights must be non-negative, sum > 0")

    def sample(self, rng: random.Random) -> QuerySpec:
        """Draw one spec; ``rng`` is the caller's seeded generator."""
        if len(self.specs) == 1:
            return self.specs[0]
        weights = self.weights or tuple([1.0] * len(self.specs))
        cumulative = list(accumulate(weights))
        point = rng.random() * cumulative[-1]
        for spec, bound in zip(self.specs, cumulative):
            if point < bound:
                return spec
        return self.specs[-1]

    @classmethod
    def single(cls, spec: QuerySpec) -> "QueryMix":
        return cls(specs=(spec,))

    @classmethod
    def uniform(cls, specs: Sequence[QuerySpec]) -> "QueryMix":
        return cls(specs=tuple(specs))

    @classmethod
    def paper(
        cls,
        cardinalities: Sequence[int] = (5_000, 40_000),
        strategies: Sequence[str] = ("SP", "SE", "RD", "FP"),
        relations: int = 10,
    ) -> "QueryMix":
        """The full experimental grid as one uniform mix: the five
        Figure 8 shapes × the paper's problem sizes × strategies."""
        return cls.uniform(
            [
                QuerySpec(shape, cardinality, strategy, relations)
                for shape in SHAPE_NAMES
                for cardinality in cardinalities
                for strategy in strategies
            ]
        )


def sample_specs(mix: QueryMix, count: int, seed: int = 0) -> List[QuerySpec]:
    """``count`` seeded draws from ``mix`` — the open-loop query list."""
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = random.Random(seed)
    return [mix.sample(rng) for _ in range(count)]
