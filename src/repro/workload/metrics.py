"""Workload-level metrics: per-query records, latency percentiles,
throughput, utilization, and saturation-knee detection.

Single-query metrics (:mod:`repro.sim.metrics`) describe one run on a
dedicated machine; these describe a *population* of queries on a
shared one.  Latency decomposes exactly as queueing theory wants it:
``latency = queue_delay + service_time``, with the queueing delay
measured from arrival to admission and the service time from
admission to the last operation process finishing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.metrics import SimulationResult
from .mix import QuerySpec


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100), linear interpolation between
    order statistics — deterministic, dependency-free."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


@dataclass
class QueryRecord:
    """Lifecycle of one query through the workload engine.

    ``deadline`` is configuration, not outcome: it is deliberately
    absent from :meth:`row` (like ``queue_limit``), so a deadline that
    never fires leaves the emitted JSONL bit-for-bit identical to a
    deadline-free run.  The lifecycle *outcomes* — ``shed``,
    ``cancelled``, ``deadline_missed`` — are in the row with stable
    defaults.  ``tenant`` appears in the row only when set, so
    untenanted runs keep the pre-tenancy row layout byte-for-byte.
    """

    index: int
    spec: QuerySpec
    arrival: float
    client: Optional[int] = None          # closed-loop client id
    admitted: Optional[float] = None      # left the admission queue
    completed: Optional[float] = None     # last operation process done
    strategy: Optional[str] = None        # resolved (never "auto")
    processors: Tuple[int, ...] = ()
    rejected: bool = False
    error: Optional[str] = None           # why the engine shed the query
    result: Optional[SimulationResult] = None
    attempts: int = 0                     # admissions (retries = attempts-1)
    aborts: List[float] = field(default_factory=list)  # crash-abort times
    wasted_seconds: float = 0.0           # CPU burnt by aborted attempts
    failed: bool = False                  # crashed and recovery gave up
    reused_tasks: int = 0                 # tasks replayed by ``reassign``
    deadline: Optional[float] = None      # seconds from arrival (config)
    shed: Optional[str] = None            # load-shed reason, never ran to term
    cancelled: bool = False               # cancelled by the caller
    deadline_missed: bool = False         # expired queued or aborted mid-run
    tenant: Optional[str] = None          # multi-tenant tag (spec.tenant)

    @property
    def latency(self) -> Optional[float]:
        """Arrival to completion — what the user of the service sees."""
        if self.completed is None:
            return None
        return self.completed - self.arrival

    @property
    def queue_delay(self) -> Optional[float]:
        if self.admitted is None:
            return None
        return self.admitted - self.arrival

    @property
    def service_time(self) -> Optional[float]:
        if self.completed is None or self.admitted is None:
            return None
        return self.completed - self.admitted

    def row(self) -> Dict:
        """Deterministic JSONL row (no wall-clock, no object refs)."""
        data = {
            "query": self.index,
            "client": self.client,
            "shape": self.spec.shape,
            "cardinality": self.spec.cardinality,
            "relations": self.spec.relations,
            "strategy_requested": self.spec.strategy,
            "strategy": self.strategy,
            "processors": list(self.processors),
            "arrival": self.arrival,
            "admitted": self.admitted,
            "completed": self.completed,
            "latency": self.latency,
            "queue_delay": self.queue_delay,
            "service_time": self.service_time,
            "rejected": self.rejected,
            "error": self.error,
            "attempts": self.attempts,
            "aborts": list(self.aborts),
            "wasted_seconds": self.wasted_seconds,
            "failed": self.failed,
            "reused_tasks": self.reused_tasks,
            "shed": self.shed,
            "cancelled": self.cancelled,
            "deadline_missed": self.deadline_missed,
        }
        if self.tenant is not None:
            data["tenant"] = self.tenant
        return data


@dataclass
class WorkloadResult:
    """Everything one workload run produced."""

    records: List[QueryRecord]
    machine_size: int
    policy: str
    makespan: float          # simulated time until the machine drained
    busy_seconds: float      # total CPU-busy seconds over the pool
    peak_in_flight: int
    faults_injected: int = 0  # crash events that actually fired
    repairs: int = 0          # processors that rejoined the pool
    scheduler: Optional[str] = None  # ordering policy (None: legacy FIFO)
    scheduling_decisions: int = 0    # admission decisions the scheduler made
    #: Queries whose whole hosted epoch ran on the turbo fast path
    #: (single-occupancy, no foreign event before completion).  Pure
    #: telemetry: the rows and every other metric are bit-identical
    #: whether a query replayed analytically or drained the heap.
    fast_path_queries: int = 0
    #: Deepest the admission queue ever got (autoscaler telemetry).
    peak_queued: int = 0

    # -- populations ------------------------------------------------------

    def completed(self, tenant: Optional[str] = None) -> List[QueryRecord]:
        return [
            r for r in self.records
            if r.completed is not None
            and (tenant is None or r.tenant == tenant)
        ]

    def rejected_count(self) -> int:
        return sum(1 for r in self.records if r.rejected)

    def tenants(self) -> List[str]:
        """Tenant names seen in this run, sorted."""
        return sorted({r.tenant for r in self.records if r.tenant is not None})

    def tenant_records(self, tenant: str) -> List[QueryRecord]:
        return [r for r in self.records if r.tenant == tenant]

    def latencies(self) -> List[float]:
        return [r.latency for r in self.completed()]

    def queue_delays(self) -> List[float]:
        return [r.queue_delay for r in self.completed()]

    def service_times(self) -> List[float]:
        return [r.service_time for r in self.completed()]

    # -- headline numbers -------------------------------------------------

    def latency_stats(
        self, tenant: Optional[str] = None
    ) -> Dict[str, Optional[float]]:
        """Mean / p50 / p95 / p99 latency over completed queries,
        optionally restricted to one tenant's.

        All four values are ``None`` when nothing completed (e.g. a
        fully rejected, over-saturated load point, or a tenant that
        never got a query through): there is no latency to report, and
        a fake 0.0 would poison downstream baselines like
        :func:`saturation_knee` and the fairness solo baselines.
        """
        values = [r.latency for r in self.completed(tenant)]
        if not values:
            return {"mean": None, "p50": None, "p95": None, "p99": None}
        return {
            "mean": sum(values) / len(values),
            "p50": percentile(values, 50.0),
            "p95": percentile(values, 95.0),
            "p99": percentile(values, 99.0),
        }

    def throughput(self) -> float:
        """Completed queries per simulated second (sustained rate)."""
        if self.makespan <= 0:
            return 0.0
        return len(self.completed()) / self.makespan

    def utilization(self) -> float:
        """Mean busy fraction of the whole pool over the makespan."""
        if self.makespan <= 0 or self.machine_size == 0:
            return 0.0
        return self.busy_seconds / (self.machine_size * self.makespan)

    def mean_queue_delay(self) -> float:
        values = self.queue_delays()
        return sum(values) / len(values) if values else 0.0

    def mean_service_time(self) -> float:
        values = self.service_times()
        return sum(values) / len(values) if values else 0.0

    # -- resilience -------------------------------------------------------

    def failed_count(self) -> int:
        """Queries that crashed and whose recovery gave up."""
        return sum(1 for r in self.records if r.failed)

    def retries_total(self) -> int:
        """Extra admissions beyond each query's first attempt."""
        return sum(max(0, r.attempts - 1) for r in self.records)

    def wasted_seconds(self) -> float:
        """CPU-busy seconds burnt by attempts that were later aborted."""
        return sum(r.wasted_seconds for r in self.records)

    def wasted_fraction(self) -> float:
        """Share of all CPU-busy seconds that produced no result."""
        if self.busy_seconds <= 0:
            return 0.0
        return self.wasted_seconds() / self.busy_seconds

    def useful_count(self, tenant: Optional[str] = None) -> int:
        """Completions that met their deadline (queries without a
        deadline always count), optionally for one tenant."""
        return sum(
            1
            for r in self.completed(tenant)
            if r.deadline is None or r.latency <= r.deadline
        )

    def goodput(self, tenant: Optional[str] = None) -> float:
        """*Useful* completions per simulated second: completions that
        met their deadline (queries without a deadline always count),
        optionally restricted to one tenant's.  Compare with the
        offered arrival rate: the gap is load shed to rejections,
        deadline misses, failures, and fault-induced latency
        inflation.  Without deadlines this equals
        :meth:`throughput`."""
        if self.makespan <= 0:
            return 0.0
        return self.useful_count(tenant) / self.makespan

    def mttr(self) -> Optional[float]:
        """Mean time from a query's first crash-abort to its eventual
        completion (recovery latency); ``None`` if no crashed query
        ever completed."""
        values = [
            r.completed - r.aborts[0]
            for r in self.records
            if r.aborts and r.completed is not None
        ]
        if not values:
            return None
        return sum(values) / len(values)

    def resilience_summary(self) -> Dict[str, Optional[float]]:
        """The fault-tolerance headline numbers in one dict."""
        return {
            "faults_injected": float(self.faults_injected),
            "repairs": float(self.repairs),
            "failed": float(self.failed_count()),
            "retries": float(self.retries_total()),
            "wasted_seconds": self.wasted_seconds(),
            "wasted_fraction": self.wasted_fraction(),
            "goodput": self.goodput(),
            "mttr": self.mttr(),
        }

    # -- request lifecycle ------------------------------------------------

    def shed_counts(self, tenant: Optional[str] = None) -> Dict[str, int]:
        """Shed queries grouped by reason (``drop_newest``,
        ``drop_oldest``, ``deadline_aware``, ``expired``,
        ``tenant_queue_limit`` — plus anything a custom policy
        labels), optionally for one tenant."""
        counts: Dict[str, int] = {}
        for r in self.records:
            if r.shed is not None and (tenant is None or r.tenant == tenant):
                counts[r.shed] = counts.get(r.shed, 0) + 1
        return counts

    def shed_count(self, tenant: Optional[str] = None) -> int:
        """Queries shed by load shedding or queue expiry — they never
        ran to term."""
        return sum(
            1
            for r in self.records
            if r.shed is not None and (tenant is None or r.tenant == tenant)
        )

    def expired_count(self, tenant: Optional[str] = None) -> int:
        """Queries whose deadline passed while they were still queued."""
        return self.shed_counts(tenant).get("expired", 0)

    def cancelled_count(self) -> int:
        return sum(1 for r in self.records if r.cancelled)

    def deadline_missed_count(self) -> int:
        """Queries that missed their deadline: expired in the queue or
        aborted mid-run when the deadline fired."""
        return sum(1 for r in self.records if r.deadline_missed)

    def deadline_aborted_count(self) -> int:
        """Queries the engine started and then aborted at the deadline
        — admitted work that burnt machine time without a result."""
        return sum(
            1 for r in self.records if r.deadline_missed and r.shed is None
        )

    def deadline_miss_rate(self) -> Optional[float]:
        """Deadline misses among *completed* deadlined queries; ``None``
        when no completed query carried a deadline.  Under enforced
        deadlines this is 0 by construction (a running query aborts at
        its deadline instead of finishing late) — reported so the
        invariant is observable."""
        deadlined = [r for r in self.completed() if r.deadline is not None]
        if not deadlined:
            return None
        missed = sum(1 for r in deadlined if r.latency > r.deadline)
        return missed / len(deadlined)

    def lifecycle_summary(self) -> Dict[str, Optional[float]]:
        """The request-lifecycle headline numbers in one dict."""
        return {
            "shed": float(self.shed_count()),
            "expired": float(self.expired_count()),
            "deadline_aborted": float(self.deadline_aborted_count()),
            "deadline_missed": float(self.deadline_missed_count()),
            "cancelled": float(self.cancelled_count()),
            "miss_rate_completed": self.deadline_miss_rate(),
            "goodput": self.goodput(),
        }

    # -- multi-tenancy ----------------------------------------------------

    def tenant_summary(self) -> Dict[str, Dict]:
        """Per-tenant service numbers, one cell per tenant name.

        Each cell carries ``submitted`` / ``completed`` / ``useful``
        (in-deadline completions) / ``shed`` / ``expired`` /
        ``rejected`` / ``failed`` counts, the tenant's ``goodput``
        (useful completions per simulated second), and its
        ``latency`` stats dict (all-``None`` when nothing completed —
        never fake zeros).  Untenanted queries are not summarized
        here; the top-level metrics still cover everything.
        """
        summary: Dict[str, Dict] = {}
        for tenant in self.tenants():
            records = self.tenant_records(tenant)
            summary[tenant] = {
                "submitted": len(records),
                "completed": len(self.completed(tenant)),
                "useful": self.useful_count(tenant),
                "shed": self.shed_count(tenant),
                "expired": self.expired_count(tenant),
                "rejected": sum(1 for r in records if r.rejected),
                "failed": sum(1 for r in records if r.failed),
                "goodput": self.goodput(tenant),
                "latency": self.latency_stats(tenant),
            }
        return summary

    # -- emission ---------------------------------------------------------

    def rows(self) -> List[Dict]:
        """Per-query JSONL rows, in submission order."""
        return [record.row() for record in self.records]

    def write_jsonl(self, path):
        """Emit the rows through the runner's deterministic writer."""
        from ..runner.results import write_jsonl

        return write_jsonl(path, self.rows())

    def summary(self) -> str:
        stats = self.latency_stats()
        if stats["mean"] is None:
            latency = "latency n/a (no completions)"
        else:
            latency = (
                f"latency mean {stats['mean']:.2f}s "
                f"p50 {stats['p50']:.2f}s p95 {stats['p95']:.2f}s "
                f"p99 {stats['p99']:.2f}s"
            )
        text = (
            f"{self.policy}@{self.machine_size}p: "
            f"{len(self.completed())}/{len(self.records)} completed "
            f"({self.rejected_count()} rejected), "
            f"makespan {self.makespan:.1f}s, "
            f"throughput {self.throughput():.3f} q/s, "
            f"utilization {self.utilization():.0%}, "
            f"{latency}, "
            f"queue delay {self.mean_queue_delay():.2f}s, "
            f"peak in-flight {self.peak_in_flight}"
        )
        if self.faults_injected or self.failed_count():
            mttr = self.mttr()
            text += (
                f" | faults: {self.faults_injected} crashes "
                f"({self.repairs} repaired), {self.failed_count()} failed, "
                f"{self.retries_total()} retries, "
                f"wasted {self.wasted_seconds():.1f}s "
                f"({self.wasted_fraction():.0%}), "
                f"mttr {'n/a' if mttr is None else f'{mttr:.2f}s'}"
            )
        if (
            self.shed_count()
            or self.cancelled_count()
            or self.deadline_missed_count()
        ):
            miss_rate = self.deadline_miss_rate()
            text += (
                f" | lifecycle: {self.shed_count()} shed "
                f"({self.expired_count()} expired), "
                f"{self.deadline_aborted_count()} deadline-aborted, "
                f"{self.cancelled_count()} cancelled, "
                "miss rate "
                f"{'n/a' if miss_rate is None else f'{miss_rate:.0%}'}, "
                f"goodput {self.goodput():.3f} q/s"
            )
        if self.fast_path_queries:
            text += (
                f" | fast path: {self.fast_path_queries} queries "
                "replayed analytically"
            )
        if self.scheduler is not None:
            text += (
                f" | scheduler {self.scheduler}: "
                f"{self.scheduling_decisions} decisions"
            )
            names = self.tenants()
            if names:
                shares = ", ".join(
                    f"{name} {self.goodput(name):.3f} q/s"
                    for name in names
                )
                text += f"; tenants: {shares}"
        return text


def saturation_knee(
    loads: Sequence[float],
    latencies: Sequence[Optional[float]],
    factor: float = 2.0,
) -> Optional[float]:
    """The offered load at which latency leaves the flat region.

    The classic throughput-latency curve is flat while the machine
    keeps up and turns sharply once queueing dominates; the knee is
    the first load whose latency exceeds ``factor`` times the
    lightest-load latency.  Returns ``None`` when the curve never
    leaves the flat region (the machine was never saturated).

    Points without a latency (``None``, e.g. a fully rejected load
    point) or with a non-positive one are skipped: they cannot anchor
    a ratio test, and a zero baseline would make every later point a
    false knee.
    """
    if len(loads) != len(latencies):
        raise ValueError("loads and latencies must have equal length")
    if factor <= 1.0:
        raise ValueError("factor must exceed 1.0")
    points = sorted(
        (load, latency)
        for load, latency in zip(loads, latencies)
        if latency is not None and latency > 0.0
    )
    if not points:
        return None
    baseline = points[0][1]
    for load, latency in points:
        if latency > factor * baseline:
            return load
    return None
