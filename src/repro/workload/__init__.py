"""Multi-query workloads on one shared simulated machine.

The paper evaluates one multi-join query at a time on a dedicated
machine; this package turns that reproduction into a traffic-serving
system.  A :class:`WorkloadEngine` hosts N concurrent query runs on a
single :class:`~repro.sim.events.SimulationClock` and processor pool,
behind an admission controller (bounded queue, concurrency and memory
gates) and a pluggable allocation policy; :mod:`~repro.workload.mix`
and :mod:`~repro.workload.arrivals` generate seeded traffic, and
:mod:`~repro.workload.metrics` / :mod:`~repro.workload.curve` report
tail latency, throughput, utilization and the saturation knee.

Quickstart::

    from repro.workload import (
        ExclusivePolicy, QueryMix, QuerySpec, WorkloadEngine,
        make_arrivals, sample_specs,
    )

    mix = QueryMix.single(QuerySpec("wide_bushy", 5_000, "FP"))
    times = make_arrivals("poisson", rate=0.05, duration=600, seed=1)
    engine = WorkloadEngine(machine_size=40, policy=ExclusivePolicy(20))
    result = engine.run_open(list(zip(times, sample_specs(mix, len(times), 1))))
    print(result.summary())

The CLI front-ends are ``python -m repro workload`` (this engine) and
``python -m repro serve`` (the JSONL query service of
:mod:`repro.service`).
"""

from .arrivals import (
    ARRIVAL_KINDS,
    fixed_arrivals,
    make_arrivals,
    poisson_arrivals,
)
from .curve import (
    LoadPoint,
    closed_loop_curve,
    curve_knee,
    open_loop_curve,
)
from .engine import (
    RECOVERY_POLICIES,
    REJECTED_RETRY_DELAY,
    SharedMachine,
    WorkloadEngine,
)
from .lifecycle import (
    SHED_POLICY_NAMES,
    DeadlineAwarePolicy,
    DropNewestPolicy,
    DropOldestPolicy,
    OverloadPoint,
    ShedPolicy,
    make_shed_policy,
    overload_sweep,
)
from .metrics import (
    QueryRecord,
    WorkloadResult,
    percentile,
    saturation_knee,
)
from .mix import STRATEGY_CHOICES, QueryMix, QuerySpec, sample_specs
from .sched import (
    SCHEDULER_NAMES,
    EdfScheduler,
    FairnessPoint,
    FifoScheduler,
    PriorityScheduler,
    Scheduler,
    ServiceEstimator,
    SjfScheduler,
    TenantSpec,
    WfqScheduler,
    fairness_points,
    fairness_sweep,
    make_scheduler,
    make_tenants,
)
from .policies import (
    POLICY_NAMES,
    Allocation,
    AllocationPolicy,
    ExclusivePolicy,
    GuidelinePolicy,
    InfeasibleQueryError,
    MachineView,
    RoundRobinPolicy,
    make_policy,
)

__all__ = [
    "ARRIVAL_KINDS",
    "Allocation",
    "AllocationPolicy",
    "DeadlineAwarePolicy",
    "DropNewestPolicy",
    "DropOldestPolicy",
    "EdfScheduler",
    "ExclusivePolicy",
    "FairnessPoint",
    "FifoScheduler",
    "GuidelinePolicy",
    "InfeasibleQueryError",
    "LoadPoint",
    "MachineView",
    "OverloadPoint",
    "POLICY_NAMES",
    "PriorityScheduler",
    "QueryMix",
    "QueryRecord",
    "QuerySpec",
    "RECOVERY_POLICIES",
    "REJECTED_RETRY_DELAY",
    "RoundRobinPolicy",
    "SCHEDULER_NAMES",
    "SHED_POLICY_NAMES",
    "STRATEGY_CHOICES",
    "Scheduler",
    "ServiceEstimator",
    "SharedMachine",
    "ShedPolicy",
    "SjfScheduler",
    "TenantSpec",
    "WfqScheduler",
    "WorkloadEngine",
    "WorkloadResult",
    "closed_loop_curve",
    "curve_knee",
    "fairness_points",
    "fairness_sweep",
    "fixed_arrivals",
    "make_arrivals",
    "make_policy",
    "make_scheduler",
    "make_shed_policy",
    "make_tenants",
    "open_loop_curve",
    "overload_sweep",
    "percentile",
    "poisson_arrivals",
    "sample_specs",
    "saturation_knee",
]
