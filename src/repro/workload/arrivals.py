"""Arrival processes of the multi-query workload.

The paper runs one query at a time; a traffic-serving system sees a
*stream* of queries.  Two open-loop arrival processes cover the
standard modelling ground: Poisson arrivals (memoryless, the classic
open-system assumption) and fixed-interval arrivals (a deterministic
load generator).  Closed-loop think-time behaviour lives in the
engine (:meth:`repro.workload.WorkloadEngine.run_closed`), because it
depends on completions.

Everything here is seed-deterministic: the same ``(rate, duration,
seed)`` always yields the same arrival times, which is what makes
workload JSONL byte-identical across runs.
"""

from __future__ import annotations

import random
from typing import List

#: The open-loop arrival kinds :func:`make_arrivals` accepts.
ARRIVAL_KINDS = ("poisson", "fixed")


def poisson_arrivals(
    rate: float, duration: float, seed: int = 0, start: float = 0.0
) -> List[float]:
    """Poisson arrival times in ``[start, start + duration)``.

    ``rate`` is the offered load in queries per simulated second;
    inter-arrival gaps are exponential draws from ``random.Random(seed)``.
    """
    _check(rate, duration)
    rng = random.Random(seed)
    out: List[float] = []
    now = start
    while True:
        now += rng.expovariate(rate)
        if now >= start + duration:
            return out
        out.append(now)


def fixed_arrivals(
    rate: float, duration: float, start: float = 0.0
) -> List[float]:
    """Evenly spaced arrivals at ``rate`` per second, first at ``start``."""
    _check(rate, duration)
    interval = 1.0 / rate
    out: List[float] = []
    index = 0
    while index * interval < duration:
        out.append(start + index * interval)
        index += 1
    return out


def make_arrivals(
    kind: str, rate: float, duration: float, seed: int = 0, start: float = 0.0
) -> List[float]:
    """Dispatch on ``kind`` (``"poisson"`` or ``"fixed"``)."""
    if kind == "poisson":
        return poisson_arrivals(rate, duration, seed, start)
    if kind == "fixed":
        return fixed_arrivals(rate, duration, start)
    raise ValueError(
        f"unknown arrival kind {kind!r}; expected one of {ARRIVAL_KINDS}"
    )


def _check(rate: float, duration: float) -> None:
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    if duration < 0:
        raise ValueError("duration must be non-negative")
