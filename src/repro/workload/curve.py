"""Latency-versus-offered-load curves.

The service-level summary of the workload engine: sweep the offered
load (arrival rate for open loops, client count for closed loops),
run one fresh engine per point, and record throughput, utilization and
the latency percentiles.  The knee of the resulting curve — where
latency leaves the flat region — is the machine's saturation point
(:func:`repro.workload.metrics.saturation_knee`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .arrivals import make_arrivals
from .engine import WorkloadEngine
from .metrics import WorkloadResult, saturation_knee
from .mix import QueryMix, sample_specs

#: Builds a fresh engine for one curve point (engines are single-use).
EngineFactory = Callable[[], WorkloadEngine]


@dataclass(frozen=True)
class LoadPoint:
    """One point of a latency-versus-load curve."""

    load: float              # offered load: rate (q/s) or client count
    throughput: float
    utilization: float
    # Latency fields are None when the point completed no queries
    # (fully rejected, over-saturated load); curve_knee skips them.
    latency_mean: Optional[float]
    latency_p50: Optional[float]
    latency_p95: Optional[float]
    latency_p99: Optional[float]
    queue_delay_mean: float
    completed: int
    rejected: int
    makespan: float

    @classmethod
    def of(cls, load: float, result: WorkloadResult) -> "LoadPoint":
        stats = result.latency_stats()
        return cls(
            load=load,
            throughput=result.throughput(),
            utilization=result.utilization(),
            latency_mean=stats["mean"],
            latency_p50=stats["p50"],
            latency_p95=stats["p95"],
            latency_p99=stats["p99"],
            queue_delay_mean=result.mean_queue_delay(),
            completed=len(result.completed()),
            rejected=result.rejected_count(),
            makespan=result.makespan,
        )

    def row(self) -> Dict:
        return {
            "load": self.load,
            "throughput": self.throughput,
            "utilization": self.utilization,
            "latency_mean": self.latency_mean,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "queue_delay_mean": self.queue_delay_mean,
            "completed": self.completed,
            "rejected": self.rejected,
            "makespan": self.makespan,
        }


def open_loop_curve(
    rates: Sequence[float],
    mix: QueryMix,
    engine_factory: EngineFactory,
    *,
    duration: float = 60.0,
    arrival_kind: str = "poisson",
    seed: int = 0,
) -> List[LoadPoint]:
    """One point per offered arrival rate (queries/second)."""
    points = []
    for rate in rates:
        times = make_arrivals(arrival_kind, rate, duration, seed)
        specs = sample_specs(mix, len(times), seed)
        result = engine_factory().run_open(list(zip(times, specs)))
        points.append(LoadPoint.of(rate, result))
    return points


def closed_loop_curve(
    client_counts: Sequence[int],
    mix: QueryMix,
    engine_factory: EngineFactory,
    *,
    queries_per_client: int = 4,
    think_time: float = 0.0,
    seed: int = 0,
) -> List[LoadPoint]:
    """One point per concurrent client population."""
    points = []
    for clients in client_counts:
        result = engine_factory().run_closed(
            mix,
            clients,
            think_time=think_time,
            queries_per_client=queries_per_client,
            seed=seed,
        )
        points.append(LoadPoint.of(float(clients), result))
    return points


def curve_knee(points: Sequence[LoadPoint], factor: float = 2.0) -> Optional[float]:
    """Saturation knee of a curve, judged on p95 latency."""
    return saturation_knee(
        [p.load for p in points], [p.latency_p95 for p in points], factor
    )
