"""The shared-machine workload engine.

One :class:`SharedMachine` — a single simulated clock, one pool of
processors, one interconnect — hosts many query runs concurrently.
Each arriving query passes an admission controller (bounded queue,
max-concurrency gate, optional memory-budget gate), receives
processors from the configured
:class:`~repro.workload.policies.AllocationPolicy`, and then executes
as a hosted :class:`~repro.sim.run.ScheduleSimulation` whose scheduler
starts at the admission instant.  Completions release processors and
re-drive admission, so the whole workload is one deterministic
discrete-event run.

This is the departure from the paper the ROADMAP asks for: the paper
measures one query on a dedicated machine; here the same simulated
machine serves traffic.  With one query and an exclusive whole-machine
allocation the engine reproduces the single-query result exactly
(golden-equivalence test), so the multi-query layer is a strict
superset of the reproduction.
"""

from __future__ import annotations

import random
from collections import deque
from typing import (
    TYPE_CHECKING,
    Deque,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.cost import CostModel
from ..core.memory import MemoryModel, peak_memory_per_processor
from ..core.strategies import get_strategy
from ..model.analytic import forecast_epoch_end
from ..sim import turbo
from ..sim.events import EventHandle, SimulationClock
from ..sim.machine import MachineConfig, NetworkLink, Processor
from ..sim.run import ScheduleSimulation
from ..sim.watchdog import (
    DEFAULT_MAX_EVENTS_PER_INSTANT,
    Watchdog,
    WatchdogError,
)
from .lifecycle import ShedPolicy, make_shed_policy
from .metrics import QueryRecord, WorkloadResult
from .mix import QueryMix, QuerySpec
from .policies import (
    Allocation,
    AllocationPolicy,
    ExclusivePolicy,
    InfeasibleQueryError,
    MachineView,
)
from .sched import Scheduler, TenantSpec, make_scheduler, make_tenants

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults import CrashFault, FaultInjector, FaultSchedule

#: Recovery policies the engine can apply to a crashed query.
RECOVERY_POLICIES = ("fail", "restart", "reassign")

#: Minimum simulated delay before a closed-loop client retries after a
#: rejection.  A client with ``think_time=0`` would otherwise resubmit
#: at the very simulated instant of the rejection, be rejected again,
#: and livelock the clock without ever advancing time; any positive
#: delay makes the ``duration`` horizon reachable.
REJECTED_RETRY_DELAY = 0.1


class SharedMachine(MachineView):
    """One simulated machine shared by every query of the workload.

    ``clock`` lets a coordinator host several machines on *one*
    simulated clock (the resilient cluster runs N shard engines in a
    single event space); ``None`` keeps the historical private clock.
    """

    def __init__(
        self,
        size: int,
        config: MachineConfig,
        clock: Optional[SimulationClock] = None,
    ):
        if size < 1:
            raise ValueError("a machine needs at least one processor")
        self.size = size
        self.config = config
        self.clock = clock if clock is not None else SimulationClock()
        self.processors: Dict[int, Processor] = {
            ident: Processor(ident) for ident in range(size)
        }
        self.network = NetworkLink(config.network_bandwidth)
        self._free = set(range(size))
        self._failed: set = set()

    def free_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._free - self._failed))

    def fail(self, ident: int) -> None:
        """Crash-stop one processor: it stops being allocatable until
        (and unless) :meth:`repair` brings it back."""
        if ident not in self.processors:
            raise ValueError(f"no processor {ident}")
        self._failed.add(ident)
        processor = self.processors[ident]
        if processor.failed_at is None:
            processor.failed_at = self.clock.now

    def repair(self, ident: int) -> None:
        self._failed.discard(ident)

    def failed_ids(self) -> FrozenSet[int]:
        return frozenset(self._failed)

    def claim(self, ids: Sequence[int]) -> None:
        missing = [i for i in ids if i not in self._free]
        if missing:
            raise ValueError(f"processors {missing} are not free")
        self._free.difference_update(ids)

    def release(self, ids: Sequence[int]) -> None:
        overlap = self._free.intersection(ids)
        if overlap:
            raise ValueError(f"processors {sorted(overlap)} already free")
        self._free.update(ids)

    def busy_seconds(self) -> float:
        return sum(p.busy_time() for p in self.processors.values())


class WorkloadEngine:
    """Admission control + allocation + hosted execution for N queries.

    ``max_concurrent``
        Hard bound on queries executing simultaneously (None: only the
        policy's processor availability limits concurrency).
    ``queue_limit``
        Bound on queries *waiting* for admission; an arrival that
        cannot start and finds the queue full is rejected (None:
        unbounded FIFO).
    ``memory_budget_bytes``
        Optional predictive gate: the analytic per-processor memory
        peaks of every in-flight plan must sum below this budget.  A
        query whose own demand exceeds the budget still runs alone —
        the gate throttles concurrency, it never starves the queue.
    ``faults`` / ``recovery`` / ``max_retries`` / ``retry_backoff``
        Optional :class:`~repro.faults.FaultSchedule` (or prepared
        injector) and the policy applied to crashed queries: ``fail``
        records the crash as a terminal error, ``restart`` re-queues
        the whole query with exponential backoff (``retry_backoff *
        2**(retries-1)`` seconds), ``reassign`` immediately re-queues
        it, replaying every materialized task result that survived on
        healthy processors (pipelined FP state cannot survive, so FP
        degenerates to an immediate restart).  ``max_retries`` bounds
        the extra attempts before the query is declared failed.
    ``rejected_retry_delay``
        Simulated delay before a zero-think-time closed-loop client
        retries after a rejection (default
        :data:`REJECTED_RETRY_DELAY`; see its rationale).
    ``deadline`` / ``deadline_seed``
        Default response-time bound in simulated seconds *relative to
        each query's arrival*: a float applies uniformly, a ``(lo,
        hi)`` tuple draws per-query deadlines uniformly from that
        range with a dedicated generator seeded by ``deadline_seed``
        (so arrival sampling is untouched).  A spec's own
        ``deadline`` overrides the engine default.  A query still
        queued at its deadline is expired; a *running* query is
        aborted at the deadline instant through the simulation's
        abort machinery and recorded as a deadline miss.  ``None``
        (the default) arms nothing — the run is bit-for-bit identical
        to an engine without deadlines.
    ``shed``
        Load-shedding policy: ``None`` (bare ``queue_limit`` bounce),
        a name from
        :data:`~repro.workload.lifecycle.SHED_POLICY_NAMES`, or a
        :class:`~repro.workload.lifecycle.ShedPolicy` instance.
        ``"drop_newest"`` is exactly the bare bounce; the explicit
        configuration is a strict no-op.
    ``watchdog_limit``
        Trip threshold of the livelock watchdog armed on the shared
        clock (events at one simulated instant before the run is
        declared stuck); ``None`` disables it.  The watchdog only
        observes — it never changes results unless it trips.
    ``scheduler`` / ``pool_size`` / ``scheduling_cost``
        Ordering policy over the admission queue: ``None`` keeps the
        legacy FIFO deque (bit-for-bit), a name from
        :data:`~repro.workload.sched.SCHEDULER_NAMES` or a
        :class:`~repro.workload.sched.Scheduler` instance plugs the
        decision in.  ``pool_size`` bounds the scheduler's visibility
        to the first K queued queries per decision; ``scheduling_cost``
        charges each admission decision on the simulated clock (the
        decision fires that long after it is triggered, so with a
        serialized machine the makespan grows by exactly
        ``decisions × cost``).  Both knobs require a scheduler.  With
        a positive cost nothing is admitted synchronously at arrival,
        so a full queue bounces the newcomer even when it would have
        started — decision latency is real admission latency.
    ``tenants``
        Per-tenant contracts (:class:`~repro.workload.sched.TenantSpec`
        instances, payload dicts, or a ``{name: TenantSpec}`` mapping):
        fair-share weights and priorities for the schedulers, default
        deadlines, and per-tenant queue/concurrency caps.  Queries
        pick their tenant up from ``QuerySpec.tenant``.
    """

    def __init__(
        self,
        machine_size: int = 40,
        policy: Optional[AllocationPolicy] = None,
        *,
        config: Optional[MachineConfig] = None,
        cost_model: Optional[CostModel] = None,
        skew_theta: float = 0.0,
        max_concurrent: Optional[int] = None,
        queue_limit: Optional[int] = None,
        memory_budget_bytes: Optional[float] = None,
        memory_model: Optional[MemoryModel] = None,
        faults: Optional[object] = None,
        recovery: str = "fail",
        max_retries: int = 3,
        retry_backoff: float = 1.0,
        rejected_retry_delay: float = REJECTED_RETRY_DELAY,
        deadline: Union[None, float, Tuple[float, float]] = None,
        deadline_seed: int = 0,
        shed: Union[None, str, ShedPolicy] = None,
        watchdog_limit: Optional[int] = DEFAULT_MAX_EVENTS_PER_INSTANT,
        scheduler: Union[None, str, Scheduler] = None,
        pool_size: Optional[int] = None,
        scheduling_cost: float = 0.0,
        tenants=None,
        fast_path: bool = True,
        clock: Optional[SimulationClock] = None,
        on_query_done=None,
    ):
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError("max_concurrent must be positive")
        if queue_limit is not None and queue_limit < 0:
            raise ValueError("queue_limit must be non-negative")
        if recovery not in RECOVERY_POLICIES:
            raise ValueError(
                f"recovery must be one of {RECOVERY_POLICIES}, got {recovery!r}"
            )
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        if rejected_retry_delay <= 0:
            raise ValueError(
                "rejected_retry_delay must be positive (a zero delay "
                "livelocks zero-think-time closed loops)"
            )
        if deadline is not None:
            if isinstance(deadline, (int, float)):
                if deadline <= 0:
                    raise ValueError(
                        "deadline must be positive (seconds from arrival)"
                    )
            else:
                low, high = deadline
                if low <= 0 or high < low:
                    raise ValueError(
                        "a deadline range needs 0 < lo <= hi, got "
                        f"({low}, {high})"
                    )
        if scheduling_cost < 0:
            raise ValueError("scheduling_cost must be non-negative")
        self.scheduler = make_scheduler(scheduler)
        if self.scheduler is None:
            if pool_size is not None:
                raise ValueError(
                    "pool_size needs a scheduler (the legacy FIFO deque "
                    "has no visibility pool)"
                )
            if scheduling_cost > 0:
                raise ValueError(
                    "scheduling_cost needs a scheduler (the legacy FIFO "
                    "deque admits for free)"
                )
        self.scheduling_cost = scheduling_cost
        self.tenants: Dict[str, TenantSpec] = make_tenants(tenants)
        self.machine = SharedMachine(
            machine_size, config or MachineConfig.paper(), clock=clock
        )
        #: Optional terminal-event hook: called with each record the
        #: instant it turns terminal (completed, rejected, failed,
        #: cancelled, shed).  The resilient cluster coordinator hangs
        #: its retry/hedge/breaker reactions here; ``None`` (default)
        #: leaves the engine's behaviour untouched.
        self.on_query_done = on_query_done
        if self.scheduler is not None:
            self.scheduler.attach(self, pool_size)
        self.policy = policy if policy is not None else ExclusivePolicy()
        self.cost_model = cost_model or CostModel()
        self.skew_theta = skew_theta
        self.max_concurrent = max_concurrent
        self.queue_limit = queue_limit
        self.memory_budget_bytes = memory_budget_bytes
        self.memory_model = memory_model or MemoryModel()
        self.recovery = recovery
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.rejected_retry_delay = rejected_retry_delay
        self.deadline = deadline
        # Dedicated generator: deadline draws must not perturb arrival
        # or client sampling (a deadline-free run stays bit-identical).
        self._deadline_rng = random.Random(1_000_003 * deadline_seed + 17)
        self.shed = make_shed_policy(shed)
        if watchdog_limit is not None:
            self.machine.clock.watchdog = Watchdog(watchdog_limit)
        self._deadline_handles: Dict[int, EventHandle] = {}
        self.injector: Optional["FaultInjector"] = None
        if faults is not None:
            from ..faults import FaultInjector, FaultSchedule

            injector = (
                FaultInjector(faults)
                if isinstance(faults, FaultSchedule)
                else faults
            )
            if not isinstance(injector, FaultInjector):
                raise TypeError(
                    "faults must be a FaultSchedule or FaultInjector"
                )
            injector.attach_engine(self)
            self.injector = injector
        #: Attempt the turbo fast path for single-occupancy epochs.
        #: Pure performance: results are bit-identical either way
        #: (pinned by the golden fixtures), so this stays on by
        #: default and exists mainly so tests and benchmarks can
        #: compare against the classic event loop.
        self.fast_path = bool(fast_path)
        #: Queries whose whole epoch replayed analytically.
        self.fast_path_queries = 0
        self.records: List[QueryRecord] = []
        self._queue: Deque[QueryRecord] = deque()
        # record.index -> (record, sim, allocation, memory_bytes, prefix)
        self._active: Dict[
            int, Tuple[QueryRecord, ScheduleSimulation, Allocation, float, str]
        ] = {}
        # Surviving materialized task results, per query (``reassign``).
        self._credits: Dict[int, FrozenSet[int]] = {}
        self._in_flight = 0
        self._memory_in_use = 0.0
        self.peak_in_flight = 0
        self.peak_queued = 0
        #: Admission decisions the scheduler performed (admissions,
        #: expiries, and rejections it picked — not blocked looks).
        self.scheduling_decisions = 0
        self._decision_pending = False  # a costed decision is in flight
        self._tenant_running: Dict[str, int] = {}
        self._started = False
        # Closed-loop state (populated by run_closed).
        self._clients: Dict[int, random.Random] = {}
        self._client_issued: Dict[int, int] = {}
        self._closed_mix: Optional[QueryMix] = None
        self._think_time = 0.0
        self._queries_per_client: Optional[int] = None
        self._horizon: Optional[float] = None

    # -- submission -------------------------------------------------------

    def submit_at(
        self, time: float, spec: QuerySpec, client: Optional[int] = None
    ) -> QueryRecord:
        """Register one query arriving at simulated ``time``."""
        record = QueryRecord(
            index=len(self.records),
            spec=spec,
            arrival=time,
            client=client,
            deadline=self._resolve_deadline(spec),
            tenant=spec.tenant,
        )
        self.records.append(record)
        self.machine.clock.at(time, self._arrive, record)
        if record.deadline is not None:
            # Cancellable: a deadline that never fires leaves no trace
            # in event counts or the makespan.
            self._deadline_handles[record.index] = (
                self.machine.clock.at_cancellable(
                    time + record.deadline, self._deadline_fire, record
                )
            )
        return record

    def _resolve_deadline(self, spec: QuerySpec) -> Optional[float]:
        """Per-spec deadline wins, then the tenant default, then the
        engine default (sampling a range deterministically, one draw
        per submission)."""
        if spec.deadline is not None:
            return spec.deadline
        if spec.tenant is not None:
            tenant = self.tenants.get(spec.tenant)
            if tenant is not None and tenant.deadline is not None:
                return tenant.deadline
        if self.deadline is None:
            return None
        if isinstance(self.deadline, (int, float)):
            return float(self.deadline)
        low, high = self.deadline
        return self._deadline_rng.uniform(low, high)

    # -- the two workload drivers ----------------------------------------

    def run_open(
        self, arrivals: Sequence[Tuple[float, QuerySpec]]
    ) -> WorkloadResult:
        """Open loop: a fixed arrival list (time, spec), e.g. from
        :func:`repro.workload.arrivals.make_arrivals` × a seeded mix."""
        self._claim_single_use()
        for time, spec in arrivals:
            self.submit_at(time, spec)
        return self._drain()

    def run_closed(
        self,
        mix: QueryMix,
        clients: int,
        *,
        think_time: float = 0.0,
        queries_per_client: Optional[int] = None,
        duration: Optional[float] = None,
        seed: int = 0,
    ) -> WorkloadResult:
        """Closed loop: ``clients`` users each submit, wait for their
        result, think for ``think_time`` seconds, and submit again —
        until a per-client query budget or the simulated ``duration``
        horizon is reached."""
        self._claim_single_use()
        if clients < 1:
            raise ValueError("need at least one client")
        if think_time < 0:
            raise ValueError("think_time must be non-negative")
        if queries_per_client is None and duration is None:
            raise ValueError(
                "closed loop needs queries_per_client or duration to stop"
            )
        if queries_per_client is not None and queries_per_client < 1:
            raise ValueError("queries_per_client must be positive")
        self._closed_mix = mix
        self._think_time = think_time
        self._queries_per_client = queries_per_client
        self._horizon = duration
        for client in range(clients):
            self._clients[client] = random.Random(seed + 1_000_003 * client)
            self._client_issued[client] = 0
            self._submit_for_client(client, 0.0)
        return self._drain()

    # -- cancellation -----------------------------------------------------

    def cancel(
        self,
        query: Union[int, QueryRecord],
        reason: str = "cancelled by caller",
    ) -> bool:
        """Withdraw one query *now* (callable from inside the run, e.g.
        an event scheduled via :meth:`cancel_at` or a service request
        handled between events).

        A queued query is removed from the queue; a running query's
        hosted simulation is unwound through the abort machinery and
        its processors/memory released.  Returns ``False`` when the
        query is already terminal (completed, rejected, failed, or
        cancelled) — cancellation is idempotent, never an error.
        """
        record = self.records[query] if isinstance(query, int) else query
        if self._terminal(record):
            return False
        if record.index in self._active:
            self._abort_active(record, reason)
            record.cancelled = True
            record.error = reason
            self._pump()
        else:
            # Queued — or in a crash-retry gap, where there is nothing
            # to unwind beyond forgetting the pending re-arrival.
            self._remove_queued(record)
            record.cancelled = True
            record.error = reason
        self._query_done(record)
        return True

    def cancel_at(
        self,
        time: float,
        query: Union[int, QueryRecord],
        reason: str = "cancelled by caller",
    ) -> None:
        """Schedule a cancellation at simulated ``time``.  An index may
        refer to a query submitted later (closed-loop records are not
        known up front); a cancellation whose target never materializes
        or is already terminal is a no-op."""
        self.machine.clock.at(time, self._cancel_event, query, reason)

    def _cancel_event(
        self, query: Union[int, QueryRecord], reason: str
    ) -> None:
        if isinstance(query, int) and not 0 <= query < len(self.records):
            return
        self.cancel(query, reason)

    def _terminal(self, record: QueryRecord) -> bool:
        return (
            record.completed is not None
            or record.rejected
            or record.failed
            or record.cancelled
        )

    def _enqueue(self, record: QueryRecord) -> None:
        """Join the admission queue.  The deque stays the arrival-
        ordered source of truth (shed policies scan it directly); a
        configured scheduler mirrors membership for its own ordering.
        Recovery re-admissions come through here too, so the scheduler
        sees their *original* arrival — a retry is not a fresh
        arrival."""
        self._queue.append(record)
        self.peak_queued = max(self.peak_queued, len(self._queue))
        if self.scheduler is not None:
            self.scheduler.enqueue(record)

    def _remove_queued(self, record: QueryRecord) -> bool:
        """Drop ``record`` from the admission queue by identity (the
        deque holds mutable dataclasses; ``deque.remove`` would compare
        by value)."""
        if self.scheduler is not None:
            self.scheduler.remove(record)
        for position, queued in enumerate(self._queue):
            if queued is record:
                del self._queue[position]
                return True
        return False

    # -- event handlers ---------------------------------------------------

    def _arrive(self, record: QueryRecord) -> None:
        if self._terminal(record):
            return  # cancelled before its arrival event fired
        if self.shed is not None and self.shed.shed_on_arrival(self, record):
            # Predictive shedding: refused before consuming queue space.
            record.rejected = True
            record.shed = self.shed.name
            record.error = (
                "shed at admission: predicted completion misses the "
                f"{record.deadline:.3f}s deadline"
                if record.deadline is not None
                else "shed at admission"
            )
            self._query_done(record)
            return
        if not self._tenant_admits(record):
            return
        self._enqueue(record)
        self._pump()
        if (
            self.queue_limit is not None
            and self._queue
            and self._queue[-1] is record
            and len(self._queue) > self.queue_limit
        ):
            # The newcomer could not start and the admission queue is
            # full: shed one queued query (open systems shed load;
            # closed-loop clients move on to their next request).  The
            # victim is the newcomer itself unless a policy picks
            # another — evicting the head may let the new head start.
            victim = (
                record
                if self.shed is None
                else self.shed.overflow_victim(self, record)
            )
            self._remove_queued(victim)
            victim.rejected = True
            victim.shed = (
                "drop_newest"
                if self.shed is None
                else self.shed.overflow_reason
            )
            self._query_done(victim)
            if victim is not record:
                self._pump()

    def _pump(self) -> None:
        """Drive admission: the legacy FIFO loop, the scheduler loop,
        or (with a positive ``scheduling_cost``) arm one costed
        decision on the clock."""
        if self.scheduler is None:
            self._pump_fifo()
        elif self.scheduling_cost > 0.0:
            self._schedule_decision()
        else:
            self._pump_scheduled()

    def _pump_fifo(self) -> None:
        """Admit from the FIFO queue head while the gates allow it."""
        while self._queue:
            if (
                self.max_concurrent is not None
                and self._in_flight >= self.max_concurrent
            ):
                return
            record = self._queue[0]
            if not self._tenant_can_run(record):
                # Strict FIFO: a head whose tenant is at its
                # concurrency cap blocks the line (ordering is the
                # contract; use a scheduler to skip past it).
                return
            if self._admit(record) == "blocked":
                return

    def _pump_scheduled(self) -> None:
        """Admit whatever the scheduler picks while the gates allow."""
        while self._queue:
            if (
                self.max_concurrent is not None
                and self._in_flight >= self.max_concurrent
            ):
                return
            record = self.scheduler.pick(
                self.machine, self.machine.clock.now
            )
            if record is None:
                return
            if self._admit(record) == "blocked":
                return
            self.scheduling_decisions += 1

    def _schedule_decision(self) -> None:
        """Arm one admission decision ``scheduling_cost`` seconds out
        (unless one is already pending or nothing could be admitted)."""
        if self._decision_pending or not self._queue:
            return
        if (
            self.max_concurrent is not None
            and self._in_flight >= self.max_concurrent
        ):
            return
        self._decision_pending = True
        self.machine.clock.after(self.scheduling_cost, self._decision_fire)

    def _decision_fire(self) -> None:
        """One costed scheduling decision: pick, admit, and arm the
        next decision.  A blocked pick does *not* re-arm — re-scanning
        an unchanged queue forever would melt simulated time; the next
        completion, repair, or arrival re-pumps."""
        self._decision_pending = False
        if not self._queue:
            return
        if (
            self.max_concurrent is not None
            and self._in_flight >= self.max_concurrent
        ):
            return
        record = self.scheduler.pick(self.machine, self.machine.clock.now)
        if record is None:
            return
        if self._admit(record) == "blocked":
            return
        self.scheduling_decisions += 1
        self._schedule_decision()

    def _admit(self, record: QueryRecord) -> str:
        """Try to start one queued query *now*.

        Returns ``"admitted"``, ``"expired"`` (deadline already
        passed), ``"rejected"`` (the policy can never run it), or
        ``"blocked"`` (no allocation right now — leave it queued).
        Everything but ``"blocked"`` removes the record from the
        queue and the scheduler."""
        if (
            record.deadline is not None
            and self.machine.clock.now
            >= record.arrival + record.deadline
        ):
            # Never start a query whose deadline has already passed
            # (completion and expiry events can share an instant).
            self._remove_queued(record)
            self._expire(record)
            return "expired"
        tree = record.spec.tree()
        catalog = record.spec.catalog()
        try:
            allocation = self.policy.allocate(
                record.spec, tree, catalog, self.machine, self.cost_model
            )
        except InfeasibleQueryError as exc:
            # One query the policy can never run must not abort the
            # workload mid-simulation: shed it and keep draining.
            self._remove_queued(record)
            record.rejected = True
            record.error = str(exc)
            self._query_done(record)
            return "rejected"
        if allocation is None:
            return "blocked"
        schedule = get_strategy(allocation.strategy).schedule(
            allocation.tree,
            catalog,
            len(allocation.processors),
            self.cost_model,
        )
        memory_bytes = 0.0
        if self.memory_budget_bytes is not None:
            memory_bytes = sum(
                peak_memory_per_processor(
                    schedule, catalog, self.memory_model, self.cost_model
                ).values()
            )
            over = (
                self._memory_in_use + memory_bytes
                > self.memory_budget_bytes
            )
            if over and self._in_flight > 0:
                return "blocked"
        self._remove_queued(record)
        if allocation.exclusive:
            self.machine.claim(allocation.processors)
        now = self.machine.clock.now
        if record.admitted is None:
            record.admitted = now
        record.strategy = allocation.strategy
        record.processors = allocation.processors
        # First attempt keeps the historical "Q<i>:" trace label;
        # retries get distinct prefixes so wasted work attributes
        # to the attempt that burnt it.
        attempt = record.attempts
        prefix = (
            f"Q{record.index}:"
            if attempt == 0
            else f"Q{record.index}r{attempt}:"
        )
        record.attempts += 1
        pool = {
            logical: self.machine.processors[physical]
            for logical, physical in enumerate(allocation.processors)
        }
        hosted = dict(
            clock=self.machine.clock,
            processor_pool=pool,
            start_at=now,
            label_prefix=prefix,
            on_complete=lambda sim, record=record: self._finish(
                record, sim
            ),
            network=self.machine.network,
        )
        skip = self._credits.get(record.index, frozenset())
        # Hosted single-occupancy epoch: if this query is alone on the
        # machine and no foreign clock event (arrival, horizon, cancel,
        # costed decision) can land before it completes, its whole
        # epoch can replay on the turbo fast path instead of draining
        # the event heap.  The barrier must be scanned *before* the
        # sim is built — afterwards the queue also holds the sim's own
        # init/release events.  The analytic forecast is only a
        # pre-gate against computing runs that would roll back;
        # ``execute_hosted`` re-checks the exact completion.
        fp_barrier = None
        if (
            self.fast_path
            and self.injector is None
            and record.deadline is None
            and not skip
            and self._in_flight == 0
            and not self._queue
            and not self._decision_pending
        ):
            barrier = self._earliest_pending_event()
            if now < barrier and (
                forecast_epoch_end(
                    schedule,
                    catalog,
                    now,
                    self.machine.config,
                    self.cost_model,
                )
                < barrier
            ):
                fp_barrier = barrier
        try:
            sim = ScheduleSimulation(
                schedule,
                catalog,
                self.machine.config,
                self.cost_model,
                self.skew_theta,
                skip_tasks=skip,
                **hosted,
            )
        except ValueError:
            # The credited results no longer fit this attempt's plan
            # (e.g. the strategy changed to pipelined dataflow):
            # drop the credit and rebuild from scratch.
            self._credits.pop(record.index, None)
            sim = ScheduleSimulation(
                schedule,
                catalog,
                self.machine.config,
                self.cost_model,
                self.skew_theta,
                **hosted,
            )
        record.reused_tasks += len(sim.skip_tasks)
        self._active[record.index] = (
            record, sim, allocation, memory_bytes, prefix
        )
        self._in_flight += 1
        self._memory_in_use += memory_bytes
        self.peak_in_flight = max(self.peak_in_flight, self._in_flight)
        if record.tenant is not None:
            self._tenant_running[record.tenant] = (
                self._tenant_running.get(record.tenant, 0) + 1
            )
        if self.scheduler is not None:
            self.scheduler.admitted(record, now)
        if fp_barrier is not None:
            # All admission bookkeeping is done, so a successful fast
            # path leaves engine state exactly where the classic loop
            # would at this instant; a rollback leaves the sim's own
            # events armed and the heap drains it classically.
            if turbo.execute_hosted(sim, fp_barrier) is not None:
                self.fast_path_queries += 1
        return "admitted"

    def _earliest_pending_event(self) -> float:
        """Earliest live event on the shared clock — the barrier before
        which a hosted fast-path epoch must fully complete.  Cancelled
        entries are lazily deleted tombstones and cannot fire."""
        earliest = float("inf")
        for time, _seq, handle, _fn, _args in self.machine.clock._queue:
            if handle is not None and handle.cancelled:
                continue
            if time < earliest:
                earliest = time
        return earliest

    # -- tenants ----------------------------------------------------------

    def _tenant_admits(self, record: QueryRecord) -> bool:
        """Enforce the tenant's admission-queue cap at arrival; a
        capped-out arrival is shed as ``tenant_queue_limit``."""
        if record.tenant is None:
            return True
        tenant = self.tenants.get(record.tenant)
        if tenant is None or tenant.queue_limit is None:
            return True
        queued = sum(
            1 for waiting in self._queue if waiting.tenant == record.tenant
        )
        if queued < tenant.queue_limit:
            return True
        record.rejected = True
        record.shed = "tenant_queue_limit"
        record.error = (
            f"tenant {record.tenant!r} admission queue limit "
            f"({tenant.queue_limit}) reached"
        )
        self._query_done(record)
        return False

    def _tenant_can_run(self, record: QueryRecord) -> bool:
        """Is the record's tenant under its concurrency cap?"""
        if record.tenant is None:
            return True
        tenant = self.tenants.get(record.tenant)
        if tenant is None or tenant.max_concurrent is None:
            return True
        return (
            self._tenant_running.get(record.tenant, 0)
            < tenant.max_concurrent
        )

    def _tenant_release(self, record: QueryRecord) -> None:
        if record.tenant is not None:
            self._tenant_running[record.tenant] -= 1

    def _finish(self, record: QueryRecord, sim: ScheduleSimulation) -> None:
        record.completed = self.machine.clock.now
        record.result = sim.result()
        _, _, allocation, memory_bytes, _ = self._active.pop(record.index)
        self._credits.pop(record.index, None)
        if allocation.exclusive:
            self.machine.release(allocation.processors)
        self._in_flight -= 1
        self._memory_in_use -= memory_bytes
        self._tenant_release(record)
        self._pump()
        self._query_done(record)

    # -- deadlines --------------------------------------------------------

    def _deadline_fire(self, record: QueryRecord) -> None:
        """The query's deadline instant arrived before it finished."""
        self._deadline_handles.pop(record.index, None)
        if self._terminal(record):
            # A completion sharing this instant dispatched first: met.
            return
        if record.index in self._active:
            self._abort_active(
                record, f"deadline ({record.deadline:.3f}s) expired"
            )
            record.failed = True
            record.deadline_missed = True
            record.error = (
                f"deadline ({record.deadline:.3f}s) expired mid-run"
            )
            self._pump()
            self._query_done(record)
            return
        # Still queued — or waiting out a crash-retry backoff, where
        # there is no pending attempt to unwind.
        self._remove_queued(record)
        self._expire(record)

    def _expire(self, record: QueryRecord) -> None:
        """Shed a query whose deadline passed while it waited."""
        record.rejected = True
        record.shed = "expired"
        record.deadline_missed = True
        record.error = (
            f"deadline ({record.deadline:.3f}s) expired while queued"
        )
        self._query_done(record)

    def _abort_active(
        self, record: QueryRecord, reason: str
    ) -> ScheduleSimulation:
        """Unwind one in-flight hosted simulation: turn its processes
        inert, account the burnt CPU to the record, and release the
        attempt's processors and memory."""
        _, sim, allocation, memory_bytes, prefix = self._active.pop(
            record.index
        )
        sim.abort(reason)
        record.wasted_seconds += self._attempt_busy_seconds(
            allocation, prefix
        )
        if allocation.exclusive:
            self.machine.release(allocation.processors)
        self._in_flight -= 1
        self._memory_in_use -= memory_bytes
        self._tenant_release(record)
        return sim

    # -- fault recovery ---------------------------------------------------

    def _handle_crash(self, crash: "CrashFault") -> None:
        """A processor crash-stopped: mark it unavailable, abort every
        query whose allocation touches it, and recover per policy."""
        ident = crash.processor
        self.machine.fail(ident)
        now = self.machine.clock.now
        victims = [
            entry
            for entry in self._active.values()
            if ident in entry[2].processors
        ]
        for record, _sim, _allocation, _memory_bytes, _prefix in victims:
            sim = self._abort_active(record, f"processor {ident} crashed")
            record.aborts.append(now)
            self._recover(record, sim, now)
        self._pump()

    def _handle_repair(self, crash: "CrashFault") -> None:
        """A crashed processor rejoined the pool: admission may resume."""
        self.machine.repair(crash.processor)
        self._pump()

    def _attempt_busy_seconds(
        self, allocation: Allocation, prefix: str
    ) -> float:
        """CPU-busy seconds the aborted attempt burnt (its trace labels
        carry the attempt's unique prefix)."""
        wasted = 0.0
        for physical in allocation.processors:
            processor = self.machine.processors[physical]
            wasted += sum(
                end - start
                for start, end, label in processor.intervals
                if label.startswith(prefix)
            )
        return wasted

    def _recover(
        self, record: QueryRecord, sim: ScheduleSimulation, now: float
    ) -> None:
        retries_used = record.attempts - 1
        if self.recovery == "fail" or retries_used >= self.max_retries:
            record.failed = True
            record.error = sim.aborted_reason or "crashed"
            self._query_done(record)
            return
        if self.recovery == "reassign":
            credit = self._reusable_tasks(sim)
            if credit:
                self._credits[record.index] = credit
            else:
                self._credits.pop(record.index, None)
            delay = 0.0  # survivors take over immediately
        else:  # restart
            delay = self.retry_backoff * (2.0 ** retries_used)
        self.machine.clock.at(now + delay, self._rearrive, record)

    def _reusable_tasks(self, sim: ScheduleSimulation) -> FrozenSet[int]:
        """Task results of the aborted attempt that the next attempt can
        replay: completed, materialized (stored results survive a crash
        — pipelined state does not), and produced entirely on processors
        that are still healthy.  For FP every output is pipelined, so
        the credit is empty and ``reassign`` degenerates to an
        immediate full restart — the documented FP fragility."""
        failed = self.machine.failed_ids()
        reusable = set()
        for runtime in sim.runtimes[:-1]:  # the root is never reusable
            if runtime.completion is None:
                continue
            if runtime.output_group is None or runtime.output_pipelined:
                continue
            if any(p.processor.ident in failed for p in runtime.processes):
                continue
            reusable.add(runtime.task.index)
        return frozenset(reusable)

    def _rearrive(self, record: QueryRecord) -> None:
        """Re-queue a crashed query.  Unlike :meth:`_arrive`, a retry is
        never bounced off the queue limit — the query is already
        admitted from the client's point of view.  It re-enters through
        :meth:`_enqueue`, so a configured scheduler ranks it by its
        *original* arrival (EDF keeps its urgency, WFQ keeps its
        virtual-time tag) instead of treating it as a fresh arrival."""
        if self._terminal(record):
            return  # cancelled or expired while waiting out the backoff
        self._enqueue(record)
        self._pump()

    def _query_done(self, record: QueryRecord) -> None:
        """Completion, rejection, cancellation, or terminal failure —
        retires the deadline event and drives the closed loop."""
        handle = self._deadline_handles.pop(record.index, None)
        if handle is not None:
            handle.cancel()
        if self.on_query_done is not None:
            self.on_query_done(record)
        if record.client is None or self._closed_mix is None:
            return
        delay = self._think_time
        if (
            record.rejected or record.failed or record.cancelled
        ) and delay <= 0.0:
            delay = self.rejected_retry_delay
        self._submit_for_client(
            record.client, self.machine.clock.now + delay
        )

    def _submit_for_client(self, client: int, time: float) -> None:
        if (
            self._queries_per_client is not None
            and self._client_issued[client] >= self._queries_per_client
        ):
            return
        if self._horizon is not None and time >= self._horizon:
            return
        spec = self._closed_mix.sample(self._clients[client])
        self._client_issued[client] += 1
        self.submit_at(time, spec, client=client)

    # -- draining ---------------------------------------------------------

    def _claim_single_use(self) -> None:
        if self._started:
            raise RuntimeError(
                "a WorkloadEngine runs one workload; build a fresh one"
            )
        self._started = True

    def _run_clock(self, clock: SimulationClock) -> None:
        """Dispatch until the clock drains, enriching a watchdog trip
        with the engine's own state so the diagnostic names the stuck
        queries, not just the spinning callbacks."""
        try:
            clock.run()
        except WatchdogError as exc:
            queued = [r.index for r in self._queue]
            active = sorted(self._active)
            raise WatchdogError(
                str(exc).splitlines()[0],
                at=exc.at,
                diagnostic=(
                    f"{exc.diagnostic}\n"
                    f"engine state at trip: {len(queued)} queued "
                    f"{queued[:10]}, {len(active)} in flight "
                    f"{active[:10]}, {len(self.records)} submitted"
                ),
            ) from exc

    def _shed_stranded(self) -> bool:
        """Shed the stuck queue head after the clock drained.  Under
        faults a permanently degraded machine can strand queued queries
        (the policy will never find them processors); they are shed as
        failures/rejections instead of hanging the workload — the
        horizon must always be reachable.  Returns ``True`` when a
        query was shed (shedding the stuck FIFO head may unblock
        smaller queries behind it on the surviving processors, so the
        caller re-runs the clock and asks again)."""
        if not self._queue:
            return False
        record = self._queue[0]
        self._remove_queued(record)
        if record.aborts:
            record.failed = True
        else:
            record.rejected = True
        record.error = (
            "machine degraded by failures: no feasible allocation"
        )
        self._query_done(record)
        self._pump()
        return True

    def _drain(self) -> WorkloadResult:
        clock = self.machine.clock
        self._run_clock(clock)
        if self._queue and self.injector is None:
            stuck = [r.index for r in self._queue]
            raise RuntimeError(
                f"workload drained with queries {stuck} still queued; "
                "the policy never found them an allocation"
            )
        while self._shed_stranded():
            self._run_clock(clock)
        return self.collect_result()

    def collect_result(self) -> WorkloadResult:
        """The run's :class:`WorkloadResult` from current engine state.

        Split out of :meth:`_drain` so a coordinator driving one shared
        clock across several engines can collect each engine's result
        after the *global* drain."""
        return WorkloadResult(
            records=self.records,
            machine_size=self.machine.size,
            policy=self.policy.name,
            makespan=self.machine.clock.now,
            busy_seconds=self.machine.busy_seconds(),
            peak_in_flight=self.peak_in_flight,
            faults_injected=(
                self.injector.crashes_fired if self.injector else 0
            ),
            repairs=self.injector.repairs_fired if self.injector else 0,
            scheduler=(
                self.scheduler.name if self.scheduler is not None else None
            ),
            scheduling_decisions=self.scheduling_decisions,
            fast_path_queries=self.fast_path_queries,
            peak_queued=self.peak_queued,
        )
