"""The shared-machine workload engine.

One :class:`SharedMachine` — a single simulated clock, one pool of
processors, one interconnect — hosts many query runs concurrently.
Each arriving query passes an admission controller (bounded queue,
max-concurrency gate, optional memory-budget gate), receives
processors from the configured
:class:`~repro.workload.policies.AllocationPolicy`, and then executes
as a hosted :class:`~repro.sim.run.ScheduleSimulation` whose scheduler
starts at the admission instant.  Completions release processors and
re-drive admission, so the whole workload is one deterministic
discrete-event run.

This is the departure from the paper the ROADMAP asks for: the paper
measures one query on a dedicated machine; here the same simulated
machine serves traffic.  With one query and an exclusive whole-machine
allocation the engine reproduces the single-query result exactly
(golden-equivalence test), so the multi-query layer is a strict
superset of the reproduction.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..core.cost import CostModel
from ..core.memory import MemoryModel, peak_memory_per_processor
from ..core.strategies import get_strategy
from ..sim.events import SimulationClock
from ..sim.machine import MachineConfig, NetworkLink, Processor
from ..sim.run import ScheduleSimulation
from .metrics import QueryRecord, WorkloadResult
from .mix import QueryMix, QuerySpec
from .policies import (
    Allocation,
    AllocationPolicy,
    ExclusivePolicy,
    InfeasibleQueryError,
    MachineView,
)

#: Minimum simulated delay before a closed-loop client retries after a
#: rejection.  A client with ``think_time=0`` would otherwise resubmit
#: at the very simulated instant of the rejection, be rejected again,
#: and livelock the clock without ever advancing time; any positive
#: delay makes the ``duration`` horizon reachable.
REJECTED_RETRY_DELAY = 0.1


class SharedMachine(MachineView):
    """One simulated machine shared by every query of the workload."""

    def __init__(self, size: int, config: MachineConfig):
        if size < 1:
            raise ValueError("a machine needs at least one processor")
        self.size = size
        self.config = config
        self.clock = SimulationClock()
        self.processors: Dict[int, Processor] = {
            ident: Processor(ident) for ident in range(size)
        }
        self.network = NetworkLink(config.network_bandwidth)
        self._free = set(range(size))

    def free_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._free))

    def claim(self, ids: Sequence[int]) -> None:
        missing = [i for i in ids if i not in self._free]
        if missing:
            raise ValueError(f"processors {missing} are not free")
        self._free.difference_update(ids)

    def release(self, ids: Sequence[int]) -> None:
        overlap = self._free.intersection(ids)
        if overlap:
            raise ValueError(f"processors {sorted(overlap)} already free")
        self._free.update(ids)

    def busy_seconds(self) -> float:
        return sum(p.busy_time() for p in self.processors.values())


class WorkloadEngine:
    """Admission control + allocation + hosted execution for N queries.

    ``max_concurrent``
        Hard bound on queries executing simultaneously (None: only the
        policy's processor availability limits concurrency).
    ``queue_limit``
        Bound on queries *waiting* for admission; an arrival that
        cannot start and finds the queue full is rejected (None:
        unbounded FIFO).
    ``memory_budget_bytes``
        Optional predictive gate: the analytic per-processor memory
        peaks of every in-flight plan must sum below this budget.  A
        query whose own demand exceeds the budget still runs alone —
        the gate throttles concurrency, it never starves the queue.
    """

    def __init__(
        self,
        machine_size: int = 40,
        policy: Optional[AllocationPolicy] = None,
        *,
        config: Optional[MachineConfig] = None,
        cost_model: Optional[CostModel] = None,
        skew_theta: float = 0.0,
        max_concurrent: Optional[int] = None,
        queue_limit: Optional[int] = None,
        memory_budget_bytes: Optional[float] = None,
        memory_model: Optional[MemoryModel] = None,
    ):
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError("max_concurrent must be positive")
        if queue_limit is not None and queue_limit < 0:
            raise ValueError("queue_limit must be non-negative")
        self.machine = SharedMachine(
            machine_size, config or MachineConfig.paper()
        )
        self.policy = policy if policy is not None else ExclusivePolicy()
        self.cost_model = cost_model or CostModel()
        self.skew_theta = skew_theta
        self.max_concurrent = max_concurrent
        self.queue_limit = queue_limit
        self.memory_budget_bytes = memory_budget_bytes
        self.memory_model = memory_model or MemoryModel()
        self.records: List[QueryRecord] = []
        self._queue: Deque[QueryRecord] = deque()
        self._active: Dict[int, Tuple[Allocation, float]] = {}
        self._in_flight = 0
        self._memory_in_use = 0.0
        self.peak_in_flight = 0
        self._started = False
        # Closed-loop state (populated by run_closed).
        self._clients: Dict[int, random.Random] = {}
        self._client_issued: Dict[int, int] = {}
        self._closed_mix: Optional[QueryMix] = None
        self._think_time = 0.0
        self._queries_per_client: Optional[int] = None
        self._horizon: Optional[float] = None

    # -- submission -------------------------------------------------------

    def submit_at(
        self, time: float, spec: QuerySpec, client: Optional[int] = None
    ) -> QueryRecord:
        """Register one query arriving at simulated ``time``."""
        record = QueryRecord(
            index=len(self.records), spec=spec, arrival=time, client=client
        )
        self.records.append(record)
        self.machine.clock.at(time, self._arrive, record)
        return record

    # -- the two workload drivers ----------------------------------------

    def run_open(
        self, arrivals: Sequence[Tuple[float, QuerySpec]]
    ) -> WorkloadResult:
        """Open loop: a fixed arrival list (time, spec), e.g. from
        :func:`repro.workload.arrivals.make_arrivals` × a seeded mix."""
        self._claim_single_use()
        for time, spec in arrivals:
            self.submit_at(time, spec)
        return self._drain()

    def run_closed(
        self,
        mix: QueryMix,
        clients: int,
        *,
        think_time: float = 0.0,
        queries_per_client: Optional[int] = None,
        duration: Optional[float] = None,
        seed: int = 0,
    ) -> WorkloadResult:
        """Closed loop: ``clients`` users each submit, wait for their
        result, think for ``think_time`` seconds, and submit again —
        until a per-client query budget or the simulated ``duration``
        horizon is reached."""
        self._claim_single_use()
        if clients < 1:
            raise ValueError("need at least one client")
        if think_time < 0:
            raise ValueError("think_time must be non-negative")
        if queries_per_client is None and duration is None:
            raise ValueError(
                "closed loop needs queries_per_client or duration to stop"
            )
        if queries_per_client is not None and queries_per_client < 1:
            raise ValueError("queries_per_client must be positive")
        self._closed_mix = mix
        self._think_time = think_time
        self._queries_per_client = queries_per_client
        self._horizon = duration
        for client in range(clients):
            self._clients[client] = random.Random(seed + 1_000_003 * client)
            self._client_issued[client] = 0
            self._submit_for_client(client, 0.0)
        return self._drain()

    # -- event handlers ---------------------------------------------------

    def _arrive(self, record: QueryRecord) -> None:
        self._queue.append(record)
        self._pump()
        if (
            self.queue_limit is not None
            and self._queue
            and self._queue[-1] is record
            and len(self._queue) > self.queue_limit
        ):
            # The newcomer could not start and the admission queue is
            # full: bounce it (open systems shed load; closed-loop
            # clients move on to their next request).
            self._queue.pop()
            record.rejected = True
            self._query_done(record)

    def _pump(self) -> None:
        """Admit from the FIFO queue head while the gates allow it."""
        while self._queue:
            if (
                self.max_concurrent is not None
                and self._in_flight >= self.max_concurrent
            ):
                return
            record = self._queue[0]
            tree = record.spec.tree()
            catalog = record.spec.catalog()
            try:
                allocation = self.policy.allocate(
                    record.spec, tree, catalog, self.machine, self.cost_model
                )
            except InfeasibleQueryError as exc:
                # One query the policy can never run must not abort the
                # workload mid-simulation: shed it and keep draining.
                self._queue.popleft()
                record.rejected = True
                record.error = str(exc)
                self._query_done(record)
                continue
            if allocation is None:
                return
            schedule = get_strategy(allocation.strategy).schedule(
                allocation.tree,
                catalog,
                len(allocation.processors),
                self.cost_model,
            )
            memory_bytes = 0.0
            if self.memory_budget_bytes is not None:
                memory_bytes = sum(
                    peak_memory_per_processor(
                        schedule, catalog, self.memory_model, self.cost_model
                    ).values()
                )
                over = (
                    self._memory_in_use + memory_bytes
                    > self.memory_budget_bytes
                )
                if over and self._in_flight > 0:
                    return
            self._queue.popleft()
            if allocation.exclusive:
                self.machine.claim(allocation.processors)
            now = self.machine.clock.now
            record.admitted = now
            record.strategy = allocation.strategy
            record.processors = allocation.processors
            pool = {
                logical: self.machine.processors[physical]
                for logical, physical in enumerate(allocation.processors)
            }
            ScheduleSimulation(
                schedule,
                catalog,
                self.machine.config,
                self.cost_model,
                self.skew_theta,
                clock=self.machine.clock,
                processor_pool=pool,
                start_at=now,
                label_prefix=f"Q{record.index}:",
                on_complete=lambda sim, record=record: self._finish(
                    record, sim
                ),
                network=self.machine.network,
            )
            self._active[record.index] = (allocation, memory_bytes)
            self._in_flight += 1
            self._memory_in_use += memory_bytes
            self.peak_in_flight = max(self.peak_in_flight, self._in_flight)

    def _finish(self, record: QueryRecord, sim: ScheduleSimulation) -> None:
        record.completed = self.machine.clock.now
        record.result = sim.result()
        allocation, memory_bytes = self._active.pop(record.index)
        if allocation.exclusive:
            self.machine.release(allocation.processors)
        self._in_flight -= 1
        self._memory_in_use -= memory_bytes
        self._pump()
        self._query_done(record)

    def _query_done(self, record: QueryRecord) -> None:
        """Completion or rejection — the closed-loop continuation hook."""
        if record.client is None or self._closed_mix is None:
            return
        delay = self._think_time
        if record.rejected and delay <= 0.0:
            delay = REJECTED_RETRY_DELAY
        self._submit_for_client(
            record.client, self.machine.clock.now + delay
        )

    def _submit_for_client(self, client: int, time: float) -> None:
        if (
            self._queries_per_client is not None
            and self._client_issued[client] >= self._queries_per_client
        ):
            return
        if self._horizon is not None and time >= self._horizon:
            return
        spec = self._closed_mix.sample(self._clients[client])
        self._client_issued[client] += 1
        self.submit_at(time, spec, client=client)

    # -- draining ---------------------------------------------------------

    def _claim_single_use(self) -> None:
        if self._started:
            raise RuntimeError(
                "a WorkloadEngine runs one workload; build a fresh one"
            )
        self._started = True

    def _drain(self) -> WorkloadResult:
        clock = self.machine.clock
        clock.run()
        if self._queue:
            stuck = [r.index for r in self._queue]
            raise RuntimeError(
                f"workload drained with queries {stuck} still queued; "
                "the policy never found them an allocation"
            )
        return WorkloadResult(
            records=self.records,
            machine_size=self.machine.size,
            policy=self.policy.name,
            makespan=clock.now,
            busy_seconds=self.machine.busy_seconds(),
            peak_in_flight=self.peak_in_flight,
        )
