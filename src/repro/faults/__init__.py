"""Deterministic fault injection for the simulated machine.

The paper's shared-nothing setting makes fault tolerance a first-class
question: which of the four strategies degrades most gracefully when a
node crashes mid-pipeline?  This package answers it without giving up
the reproduction's determinism:

- :class:`FaultSchedule` — frozen, seeded description of crash-stop
  failures (with optional timed repair), straggler windows, and
  interconnect delay/loss windows; replayable bit-for-bit.
- :class:`FaultInjector` — arms one schedule against one owned
  :class:`~repro.sim.run.ScheduleSimulation` (crash ⇒
  :class:`~repro.sim.run.QueryAbortedError`) or one
  :class:`~repro.workload.engine.WorkloadEngine` (crash ⇒ the
  configured ``fail`` / ``restart`` / ``reassign`` recovery policy).
- :class:`ResiliencePoint` / :func:`fault_rate_sweep` — goodput,
  wasted work, retries, and MTTR per (strategy, fault rate) cell.

Quickstart::

    from repro import api
    from repro.faults import FaultSchedule

    faults = FaultSchedule.generate(
        machine_size=40, horizon=300, seed=7,
        crash_rate=0.005, repair_time=60,
    )
    result = api.run_workload(
        "wide_bushy", rate=0.05, duration=300, strategy="RD",
        faults=faults, recovery="reassign",
    )
    print(result.summary())

or ``python -m repro faults --strategies SP,SE,RD,FP`` for a full
strategy-versus-fault-rate sweep.
"""

from ..sim.run import QueryAbortedError
from .injector import FaultInjector, LinkFaultState
from .metrics import ResiliencePoint, fault_rate_sweep
from .schedule import CrashFault, FaultSchedule, LinkFault, StallFault

__all__ = [
    "CrashFault",
    "FaultInjector",
    "FaultSchedule",
    "LinkFault",
    "LinkFaultState",
    "QueryAbortedError",
    "ResiliencePoint",
    "StallFault",
    "fault_rate_sweep",
]
