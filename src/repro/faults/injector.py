"""Wiring a :class:`FaultSchedule` into a simulation or an engine.

The injector is the only component that touches simulator internals:
it appends straggler windows to :class:`~repro.sim.machine.Processor`
traces, installs a :class:`LinkFaultState` on the shared
:class:`~repro.sim.machine.NetworkLink`, and schedules crash (and, for
an engine, repair) events on the simulated clock.  An empty schedule
installs nothing at all — every hot path keeps its exact fault-free
float arithmetic and event sequence, which is what makes empty-schedule
injection a bit-for-bit no-op (golden identity test).

Two attachment modes mirror the two execution fronts:

``attach_simulation``
    A single owned :class:`~repro.sim.run.ScheduleSimulation`; a crash
    of any processor the query uses aborts the whole query, and
    :meth:`~repro.sim.run.ScheduleSimulation.run` raises
    :class:`~repro.sim.run.QueryAbortedError`.  There is nothing to
    recover *to* on a dedicated machine.

``attach_engine``
    A :class:`~repro.workload.engine.WorkloadEngine`; crashes and
    repairs are delivered to the engine's fault handlers, which apply
    the configured recovery policy (``fail`` / ``restart`` /
    ``reassign``) to the victims.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Sequence

from .schedule import CrashFault, FaultSchedule, LinkFault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.run import ScheduleSimulation
    from ..workload.engine import WorkloadEngine


class LinkFaultState:
    """Per-run interconnect perturbation, consulted by
    :class:`~repro.sim.streams.ConsumerGroup` at every delivery.

    Loss draws come from a dedicated seeded RNG.  The DES delivery
    order is deterministic, so the draw sequence — and therefore which
    batches drop — replays exactly for a fixed schedule seed.
    """

    __slots__ = ("windows", "dropped", "delayed", "_rng")

    def __init__(self, windows: Sequence[LinkFault], seed: int):
        self.windows = tuple(windows)
        self.dropped = 0
        self.delayed = 0
        self._rng = random.Random(seed * 4 + 3)

    def extra_delay(self, now: float) -> float:
        """Additional latency for a delivery sent at ``now``."""
        delay = 0.0
        for window in self.windows:
            if window.start <= now < window.end:
                delay += window.extra_delay
        if delay > 0:
            self.delayed += 1
        return delay

    def drops(self, now: float) -> bool:
        """Whether a pipelined data batch sent at ``now`` is lost.

        Overlapping loss windows compound as independent drop chances.
        The RNG is consulted only when some loss probability is active,
        so loss-free (or delay-only) runs never advance the stream.
        """
        keep = 1.0
        for window in self.windows:
            if window.loss > 0 and window.start <= now < window.end:
                keep *= 1.0 - window.loss
        if keep >= 1.0:
            return False
        if self._rng.random() < 1.0 - keep:
            self.dropped += 1
            return True
        return False


class FaultInjector:
    """Deterministically replays one :class:`FaultSchedule` into one
    simulation or one workload engine (single-use, like the engine)."""

    def __init__(self, schedule: FaultSchedule):
        if not isinstance(schedule, FaultSchedule):
            raise TypeError("FaultInjector needs a FaultSchedule")
        self.schedule = schedule
        self.link_state: LinkFaultState | None = None
        self.crashes_fired = 0
        self.repairs_fired = 0
        self._attached = False

    # -- attachment -------------------------------------------------------

    def _claim(self) -> None:
        if self._attached:
            raise RuntimeError(
                "a FaultInjector attaches once; build a fresh one per run"
            )
        self._attached = True

    def attach_simulation(self, sim: "ScheduleSimulation") -> None:
        """Arm the schedule against one owned single-query simulation."""
        self._claim()
        if self.schedule.is_empty:
            return
        # Any armed perturbation — even one that never fires — must
        # keep the run on the event loop (repro.sim.turbo stands down).
        sim.perturbed = True
        for stall in self.schedule.stalls:
            processor = sim.processors.get(stall.processor)
            if processor is not None:
                processor.stalls.append(
                    (stall.start, stall.end, stall.factor)
                )
        if self.schedule.link_faults:
            self.link_state = LinkFaultState(
                self.schedule.link_faults, self.schedule.seed
            )
            sim.network.faults = self.link_state
        for crash in self.schedule.crashes:
            if crash.processor in sim.processors:
                sim.clock.at(crash.at, self._crash_simulation, sim, crash)

    def attach_engine(self, engine: "WorkloadEngine") -> None:
        """Arm the schedule against a shared-machine workload engine."""
        self._claim()
        if self.schedule.is_empty:
            return
        machine = engine.machine
        for stall in self.schedule.stalls:
            processor = machine.processors.get(stall.processor)
            if processor is not None:
                processor.stalls.append(
                    (stall.start, stall.end, stall.factor)
                )
        if self.schedule.link_faults:
            self.link_state = LinkFaultState(
                self.schedule.link_faults, self.schedule.seed
            )
            machine.network.faults = self.link_state
        for crash in self.schedule.crashes:
            if crash.processor not in machine.processors:
                continue
            machine.clock.at(crash.at, self._crash_engine, engine, crash)
            if crash.repair_at is not None:
                machine.clock.at(
                    crash.repair_at, self._repair_engine, engine, crash
                )

    # -- event handlers ---------------------------------------------------

    def _crash_simulation(
        self, sim: "ScheduleSimulation", crash: CrashFault
    ) -> None:
        if sim.finished_at is not None or sim.aborted_reason is not None:
            return  # the query outran the fault
        processor = sim.processors.get(crash.processor)
        if processor is not None and processor.failed_at is None:
            processor.failed_at = sim.clock.now
        self.crashes_fired += 1
        sim.abort(f"processor {crash.processor} crashed")

    def _crash_engine(self, engine: "WorkloadEngine", crash: CrashFault) -> None:
        self.crashes_fired += 1
        engine._handle_crash(crash)

    def _repair_engine(self, engine: "WorkloadEngine", crash: CrashFault) -> None:
        self.repairs_fired += 1
        engine._handle_repair(crash)


__all__ = ["FaultInjector", "LinkFaultState"]
