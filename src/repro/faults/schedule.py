"""Deterministic fault schedules for the simulated machine.

A :class:`FaultSchedule` is a frozen, hashable description of every
perturbation a run will experience — crash-stop processor failures
(optionally repaired later), transient straggler windows, and message
delay/loss windows on the shared interconnect.  Because the schedule
is pure data generated ahead of time (either listed explicitly or
drawn from a seeded Poisson process by :meth:`FaultSchedule.generate`),
a faulted run is replayable bit-for-bit: the same schedule against the
same workload produces the same event sequence in every process.

The schedule says *what* happens *when*; :mod:`repro.faults.injector`
wires it into a simulation or workload engine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class CrashFault:
    """Crash-stop failure of one processor at ``at`` seconds; the node
    rejoins the free pool at ``repair_at`` (``None`` = never)."""

    processor: int
    at: float
    repair_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.processor < 0:
            raise ValueError("processor id must be non-negative")
        if self.at < 0:
            raise ValueError("crash time must be non-negative")
        if self.repair_at is not None and self.repair_at <= self.at:
            raise ValueError("repair must happen after the crash")


@dataclass(frozen=True)
class StallFault:
    """Straggler window: the processor's service rate is divided by
    ``factor`` for chunks whose service starts in ``[start, end)``."""

    processor: int
    start: float
    end: float
    factor: float = 4.0

    def __post_init__(self) -> None:
        if self.processor < 0:
            raise ValueError("processor id must be non-negative")
        if self.start < 0 or self.end <= self.start:
            raise ValueError("stall window must have positive extent")
        if self.factor <= 0:
            raise ValueError("stall factor must be positive")


@dataclass(frozen=True)
class LinkFault:
    """Interconnect degradation window: every delivery sent in
    ``[start, end)`` takes ``extra_delay`` additional seconds, and a
    pipelined data batch is dropped with probability ``loss``."""

    start: float
    end: float
    extra_delay: float = 0.0
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError("link-fault window must have positive extent")
        if self.extra_delay < 0:
            raise ValueError("extra delay must be non-negative")
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError("loss must be a probability")


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, replayable list of faults plus the seed for the
    per-batch loss draws.  Hashable, so it can ride inside a frozen
    :class:`repro.runner.Job` and participate in cache keys."""

    crashes: Tuple[CrashFault, ...] = ()
    stalls: Tuple[StallFault, ...] = ()
    link_faults: Tuple[LinkFault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "stalls", tuple(self.stalls))
        object.__setattr__(self, "link_faults", tuple(self.link_faults))

    @classmethod
    def empty(cls) -> "FaultSchedule":
        """A schedule with no faults — attaching it is a strict no-op."""
        return cls()

    @property
    def is_empty(self) -> bool:
        return not (self.crashes or self.stalls or self.link_faults)

    @property
    def event_count(self) -> int:
        return len(self.crashes) + len(self.stalls) + len(self.link_faults)

    @classmethod
    def generate(
        cls,
        *,
        machine_size: int,
        horizon: float,
        seed: int = 0,
        crash_rate: float = 0.0,
        repair_time: Optional[float] = None,
        stall_rate: float = 0.0,
        stall_duration: float = 4.0,
        stall_factor: float = 4.0,
        link_rate: float = 0.0,
        link_duration: float = 4.0,
        link_delay: float = 0.0,
        link_loss: float = 0.1,
    ) -> "FaultSchedule":
        """Draw a schedule from seeded machine-wide Poisson processes.

        Rates are events per simulated second across the whole machine;
        each crash/stall picks a uniformly random processor.  Every
        fault category uses its own derived RNG stream, so changing one
        rate never shifts the draws of another — essential for clean
        fault-rate sweeps at a fixed seed.
        """
        if machine_size < 1:
            raise ValueError("machine must have at least one processor")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        # Integer-derived sub-seeds: string seeds would go through
        # per-process randomized hashing and break replayability.
        crash_rng = random.Random(seed * 4 + 0)
        stall_rng = random.Random(seed * 4 + 1)
        link_rng = random.Random(seed * 4 + 2)
        crashes = [
            CrashFault(
                processor=crash_rng.randrange(machine_size),
                at=at,
                repair_at=None if repair_time is None else at + repair_time,
            )
            for at in _poisson_times(crash_rng, crash_rate, horizon)
        ]
        stalls = [
            StallFault(
                processor=stall_rng.randrange(machine_size),
                start=at,
                end=at + stall_duration,
                factor=stall_factor,
            )
            for at in _poisson_times(stall_rng, stall_rate, horizon)
        ]
        link_faults = [
            LinkFault(
                start=at,
                end=at + link_duration,
                extra_delay=link_delay,
                loss=link_loss,
            )
            for at in _poisson_times(link_rng, link_rate, horizon)
        ]
        return cls(
            crashes=tuple(crashes),
            stalls=tuple(stalls),
            link_faults=tuple(link_faults),
            seed=seed,
        )

    # -- serialization ----------------------------------------------------

    def to_payload(self) -> Mapping[str, object]:
        """JSON-ready representation (cache keys, CLI round-trips)."""
        return {
            "seed": self.seed,
            "crashes": [
                [c.processor, c.at, c.repair_at] for c in self.crashes
            ],
            "stalls": [
                [s.processor, s.start, s.end, s.factor] for s in self.stalls
            ],
            "link_faults": [
                [w.start, w.end, w.extra_delay, w.loss]
                for w in self.link_faults
            ],
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "FaultSchedule":
        unknown = sorted(
            set(payload) - {"seed", "crashes", "stalls", "link_faults"}
        )
        if unknown:
            raise ValueError(f"unknown fault-schedule keys {unknown}")
        return cls(
            crashes=tuple(
                CrashFault(processor=int(p), at=float(at), repair_at=rep)
                for p, at, rep in payload.get("crashes", [])
            ),
            stalls=tuple(
                StallFault(
                    processor=int(p), start=float(s), end=float(e),
                    factor=float(f),
                )
                for p, s, e, f in payload.get("stalls", [])
            ),
            link_faults=tuple(
                LinkFault(
                    start=float(s), end=float(e), extra_delay=float(d),
                    loss=float(ls),
                )
                for s, e, d, ls in payload.get("link_faults", [])
            ),
            seed=int(payload.get("seed", 0)),
        )


def _poisson_times(
    rng: random.Random, rate: float, horizon: float
) -> List[float]:
    """Arrival times of a Poisson process with ``rate`` on [0, horizon)."""
    times: List[float] = []
    if rate <= 0:
        return times
    t = rng.expovariate(rate)
    while t < horizon:
        times.append(t)
        t += rng.expovariate(rate)
    return times


__all__ = [
    "CrashFault",
    "StallFault",
    "LinkFault",
    "FaultSchedule",
]
