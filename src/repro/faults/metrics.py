"""Resilience metrics: how gracefully does a strategy degrade?

The paper's headline contrast — FP's fragility versus the robustness
of SP/SE/RD — shows up most starkly under faults: a crash in the
middle of a pipeline throws away every in-flight build state, while
materialized-result strategies only lose the task that was running.
A :class:`ResiliencePoint` condenses one faulted workload run into the
numbers that comparison needs, and :func:`fault_rate_sweep` produces
one goodput-degradation curve per strategy for the CLI, the HTML
report, and ``benchmarks/bench_faults.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .schedule import FaultSchedule


@dataclass(frozen=True)
class ResiliencePoint:
    """One (strategy, crash rate) cell of a resilience sweep."""

    strategy: str
    crash_rate: float
    recovery: str
    offered: int              # queries submitted
    completed: int
    failed: int
    rejected: int
    goodput: float            # completions per simulated second
    retries: int
    wasted_seconds: float
    wasted_fraction: float
    mttr: Optional[float]
    mean_latency: Optional[float]
    p95_latency: Optional[float]
    faults_injected: int = 0

    @classmethod
    def of(
        cls,
        strategy: str,
        crash_rate: float,
        recovery: str,
        result,
    ) -> "ResiliencePoint":
        """Condense a :class:`~repro.workload.metrics.WorkloadResult`."""
        stats = result.latency_stats()
        return cls(
            strategy=strategy,
            crash_rate=crash_rate,
            recovery=recovery,
            offered=len(result.records),
            completed=len(result.completed()),
            failed=result.failed_count(),
            rejected=result.rejected_count(),
            goodput=result.goodput(),
            retries=result.retries_total(),
            wasted_seconds=result.wasted_seconds(),
            wasted_fraction=result.wasted_fraction(),
            mttr=result.mttr(),
            mean_latency=stats["mean"],
            p95_latency=stats["p95"],
            faults_injected=result.faults_injected,
        )

    def row(self) -> Dict:
        """Deterministic JSONL row."""
        return {
            "strategy": self.strategy,
            "crash_rate": self.crash_rate,
            "recovery": self.recovery,
            "offered": self.offered,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "goodput": self.goodput,
            "retries": self.retries,
            "wasted_seconds": self.wasted_seconds,
            "wasted_fraction": self.wasted_fraction,
            "mttr": self.mttr,
            "mean_latency": self.mean_latency,
            "p95_latency": self.p95_latency,
            "faults_injected": self.faults_injected,
        }


def fault_rate_sweep(
    *,
    strategies: Sequence[str] = ("SP", "SE", "RD", "FP"),
    crash_rates: Sequence[float] = (0.0, 0.002, 0.01),
    recovery: str = "restart",
    duration: float = 300.0,
    rate: float = 0.05,
    machine_size: int = 40,
    seed: int = 0,
    repair_time: Optional[float] = 60.0,
    **workload_kwargs,
) -> List[ResiliencePoint]:
    """One faulted workload per (strategy, crash rate) cell.

    Every cell regenerates its schedule from the same base seed, so
    the rate axis is the only thing that varies along a row; extra
    keyword arguments pass straight to
    :func:`repro.api.run_workload`.
    """
    from .. import api

    points: List[ResiliencePoint] = []
    for strategy in strategies:
        for crash_rate in crash_rates:
            faults = FaultSchedule.generate(
                machine_size=machine_size,
                horizon=duration,
                seed=seed,
                crash_rate=crash_rate,
                repair_time=repair_time,
            )
            result = api.run_workload(
                arrivals="poisson",
                rate=rate,
                duration=duration,
                seed=seed,
                machine_size=machine_size,
                strategy=strategy,
                faults=faults,
                recovery=recovery,
                **workload_kwargs,
            )
            points.append(
                ResiliencePoint.of(strategy, crash_rate, recovery, result)
            )
    return points


__all__ = ["ResiliencePoint", "fault_rate_sweep"]
