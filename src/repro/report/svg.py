"""Minimal SVG chart primitives (no dependencies).

Two chart types cover the repository's needs: line charts for the
response-time figures (the paper's Figures 9-13) and Gantt charts for
execution traces (the utilization diagrams, Figures 3/4/6/7, in their
richer per-interval form).  Output is plain SVG 1.1 markup, parseable
by any XML tool — the tests round-trip it through ElementTree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

#: Stroke colors per strategy, consistent across every chart.
STRATEGY_COLORS = {
    "SP": "#888888",
    "SE": "#1f77b4",
    "RD": "#2ca02c",
    "FP": "#d62728",
}

_FALLBACK_COLORS = ("#9467bd", "#8c564b", "#e377c2", "#17becf")


def color_for(name: str, index: int = 0) -> str:
    return STRATEGY_COLORS.get(name, _FALLBACK_COLORS[index % len(_FALLBACK_COLORS)])


@dataclass
class Series2D:
    """One polyline: a named sequence of (x, y) points."""

    name: str
    points: Sequence[Tuple[float, float]]


class LineChart:
    """A titled line chart with axes, ticks, and a legend."""

    def __init__(
        self,
        title: str,
        x_label: str = "",
        y_label: str = "",
        width: int = 560,
        height: int = 360,
    ):
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.width = width
        self.height = height
        self.series: List[Series2D] = []

    def add_series(self, name: str, points: Sequence[Tuple[float, float]]) -> None:
        if not points:
            raise ValueError("series needs at least one point")
        self.series.append(Series2D(name, list(points)))

    # -- rendering -------------------------------------------------------

    def _bounds(self) -> Tuple[float, float, float, float]:
        xs = [x for s in self.series for x, _ in s.points]
        ys = [y for s in self.series for _, y in s.points]
        x_lo, x_hi = min(xs), max(xs)
        y_hi = max(ys) * 1.08
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi <= 0:
            y_hi = 1.0
        return x_lo, x_hi, 0.0, y_hi

    def to_svg(self) -> str:
        if not self.series:
            raise ValueError("chart has no series")
        margin_left, margin_right = 58, 120
        margin_top, margin_bottom = 36, 46
        plot_w = self.width - margin_left - margin_right
        plot_h = self.height - margin_top - margin_bottom
        x_lo, x_hi, y_lo, y_hi = self._bounds()

        def sx(x: float) -> float:
            return margin_left + (x - x_lo) / (x_hi - x_lo) * plot_w

        def sy(y: float) -> float:
            return margin_top + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}" '
            f'font-family="sans-serif" font-size="11">',
            f'<text x="{self.width / 2:.0f}" y="18" text-anchor="middle" '
            f'font-size="13">{escape(self.title)}</text>',
            # Axes.
            f'<line x1="{margin_left}" y1="{margin_top}" x2="{margin_left}" '
            f'y2="{margin_top + plot_h}" stroke="#333"/>',
            f'<line x1="{margin_left}" y1="{margin_top + plot_h}" '
            f'x2="{margin_left + plot_w}" y2="{margin_top + plot_h}" stroke="#333"/>',
        ]
        # Ticks: 5 on each axis.
        for i in range(6):
            y_val = y_lo + (y_hi - y_lo) * i / 5
            y_pix = sy(y_val)
            parts.append(
                f'<line x1="{margin_left - 4}" y1="{y_pix:.1f}" '
                f'x2="{margin_left}" y2="{y_pix:.1f}" stroke="#333"/>'
            )
            parts.append(
                f'<text x="{margin_left - 8}" y="{y_pix + 4:.1f}" '
                f'text-anchor="end">{y_val:.0f}</text>'
            )
            parts.append(
                f'<line x1="{margin_left}" y1="{y_pix:.1f}" '
                f'x2="{margin_left + plot_w}" y2="{y_pix:.1f}" '
                f'stroke="#ddd" stroke-dasharray="3,3"/>'
            )
            x_val = x_lo + (x_hi - x_lo) * i / 5
            x_pix = sx(x_val)
            parts.append(
                f'<text x="{x_pix:.1f}" y="{margin_top + plot_h + 16}" '
                f'text-anchor="middle">{x_val:.0f}</text>'
            )
        if self.x_label:
            parts.append(
                f'<text x="{margin_left + plot_w / 2:.0f}" '
                f'y="{self.height - 8}" text-anchor="middle">'
                f"{escape(self.x_label)}</text>"
            )
        if self.y_label:
            parts.append(
                f'<text x="14" y="{margin_top + plot_h / 2:.0f}" '
                f'text-anchor="middle" transform="rotate(-90 14 '
                f'{margin_top + plot_h / 2:.0f})">{escape(self.y_label)}</text>'
            )
        # Series.
        for i, series in enumerate(self.series):
            color = color_for(series.name, i)
            coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in series.points)
            parts.append(
                f'<polyline points="{coords}" fill="none" stroke="{color}" '
                f'stroke-width="2"/>'
            )
            for x, y in series.points:
                parts.append(
                    f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3" '
                    f'fill="{color}"/>'
                )
            legend_y = margin_top + 16 * i
            legend_x = margin_left + plot_w + 12
            parts.append(
                f'<line x1="{legend_x}" y1="{legend_y}" x2="{legend_x + 18}" '
                f'y2="{legend_y}" stroke="{color}" stroke-width="2"/>'
            )
            parts.append(
                f'<text x="{legend_x + 24}" y="{legend_y + 4}">'
                f"{escape(series.name)}</text>"
            )
        parts.append("</svg>")
        return "\n".join(parts)


class GanttChart:
    """Processor-utilization Gantt: one lane per processor."""

    def __init__(self, title: str, width: int = 720, lane_height: int = 14):
        self.title = title
        self.width = width
        self.lane_height = lane_height
        #: (lane, start, end, label) spans; lanes are processor ids.
        self.spans: List[Tuple[int, float, float, str]] = []

    def add_span(self, lane: int, start: float, end: float, label: str) -> None:
        if end < start:
            raise ValueError("span ends before it starts")
        self.spans.append((lane, start, end, label))

    def to_svg(self, palette: Optional[Dict[str, str]] = None) -> str:
        if not self.spans:
            raise ValueError("chart has no spans")
        lanes = sorted({lane for lane, *_ in self.spans}, reverse=True)
        t_end = max(end for _, _, end, _ in self.spans)
        if t_end <= 0:
            t_end = 1.0
        margin_left, margin_right, margin_top = 46, 16, 32
        plot_w = self.width - margin_left - margin_right
        height = margin_top + len(lanes) * self.lane_height + 30
        labels = sorted({label for *_, label in self.spans})
        if palette is None:
            palette = {
                label: color_for(label, i) for i, label in enumerate(labels)
            }
        lane_y = {lane: margin_top + i * self.lane_height for i, lane in enumerate(lanes)}

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{height}" viewBox="0 0 {self.width} {height}" '
            f'font-family="sans-serif" font-size="10">',
            f'<text x="{self.width / 2:.0f}" y="16" text-anchor="middle" '
            f'font-size="12">{escape(self.title)}</text>',
        ]
        for lane in lanes:
            y = lane_y[lane]
            parts.append(
                f'<text x="{margin_left - 6}" y="{y + self.lane_height - 4}" '
                f'text-anchor="end">{lane}</text>'
            )
        for lane, start, end, label in self.spans:
            x = margin_left + start / t_end * plot_w
            w = max((end - start) / t_end * plot_w, 0.5)
            y = lane_y[lane] + 1
            color = palette.get(label, "#999")
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
                f'height="{self.lane_height - 2}" fill="{color}">'
                f"<title>{escape(label)}: {start:.2f}-{end:.2f}s</title></rect>"
            )
        axis_y = margin_top + len(lanes) * self.lane_height + 12
        parts.append(
            f'<text x="{margin_left}" y="{axis_y}">0s</text>'
        )
        parts.append(
            f'<text x="{margin_left + plot_w}" y="{axis_y}" '
            f'text-anchor="end">{t_end:.2f}s</text>'
        )
        parts.append("</svg>")
        return "\n".join(parts)
