"""Dependency-free SVG/HTML report generation."""

from .html import (
    claims_html,
    cluster_chart,
    cluster_html,
    cluster_resilience_html,
    fairness_chart,
    fairness_html,
    figure14_html,
    overload_chart,
    overload_html,
    render_report,
    resilience_chart,
    resilience_html,
    sweep_chart,
    utilization_gantt,
    workload_chart,
    workload_html,
)
from .svg import GanttChart, LineChart, Series2D, color_for

__all__ = [
    "GanttChart",
    "LineChart",
    "Series2D",
    "claims_html",
    "cluster_chart",
    "cluster_html",
    "cluster_resilience_html",
    "color_for",
    "fairness_chart",
    "fairness_html",
    "figure14_html",
    "overload_chart",
    "overload_html",
    "render_report",
    "resilience_chart",
    "resilience_html",
    "sweep_chart",
    "utilization_gantt",
    "workload_chart",
    "workload_html",
]
