"""Self-contained HTML report of the reproduction.

Assembles the evaluation — Figure 14 table, Figures 9-13 as SVG line
charts, Figures 3/4/6/7 as SVG Gantt charts, and the claim checklist —
into one dependency-free HTML document a reviewer can open in any
browser.  Regenerate with ``python benchmarks/generate_report_html.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple
from xml.sax.saxutils import escape

from ..bench.paperdata import PAPER_FIGURE_14
from ..bench.report import evaluate_claims
from ..bench.workloads import SweepResult
from ..engine.trace import spans_of
from ..sim.metrics import SimulationResult
from .svg import GanttChart, LineChart

_STYLE = """
body { font-family: Georgia, serif; max-width: 960px; margin: 2em auto;
       color: #222; line-height: 1.45; padding: 0 1em; }
h1, h2, h3 { font-family: Helvetica, Arial, sans-serif; }
table { border-collapse: collapse; margin: 1em 0; }
td, th { border: 1px solid #bbb; padding: 4px 10px; text-align: right; }
th { background: #f0f0f0; }
.pass { color: #2ca02c; } .fail { color: #d62728; }
figure { margin: 1.5em 0; }
figcaption { font-size: 0.9em; color: #555; }
"""


def sweep_chart(sweep: SweepResult) -> str:
    """One Figure 9-13 panel as an SVG line chart."""
    chart = LineChart(
        sweep.experiment.title,
        x_label="processors",
        y_label="response time (s)",
    )
    for name, series in sweep.series.items():
        chart.add_series(
            name, list(zip(series.processor_counts, series.response_times))
        )
    return chart.to_svg()


def utilization_gantt(result: SimulationResult, title: str) -> str:
    """One Figure 3/4/6/7 panel as an SVG Gantt chart."""
    chart = GanttChart(title)
    for span in spans_of(result):
        chart.add_span(span.processor, span.start, span.end, span.task)
    return chart.to_svg()


def figure14_html(sweeps: Dict[Tuple[str, str], SweepResult]) -> str:
    rows = [
        "<table><tr><th>shape</th><th>size</th>"
        "<th>measured</th><th>paper</th></tr>"
    ]
    for (shape, size), paper_cell in PAPER_FIGURE_14.items():
        sweep = sweeps.get((shape, size))
        if sweep is None:
            continue
        seconds, strategy, procs = sweep.best_cell()
        p_seconds, p_strategy, p_procs = paper_cell
        rows.append(
            f"<tr><td>{escape(shape)}</td><td>{escape(size)}</td>"
            f"<td>{seconds:.2f}s ({strategy}@{procs})</td>"
            f"<td>{p_seconds:.1f}s ({p_strategy}@{p_procs})</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def claims_html(sweep: SweepResult) -> str:
    items = []
    for outcome in evaluate_claims(sweep):
        cls = "pass" if outcome.holds else "fail"
        mark = "✓" if outcome.holds else "✗"
        items.append(
            f'<li class="{cls}">{mark} {escape(outcome.claim.description)}</li>'
        )
    return "<ul>" + "".join(items) + "</ul>"


def workload_chart(points: List, title: str) -> str:
    """A latency-versus-offered-load panel from workload
    :class:`~repro.workload.LoadPoint` rows (mean, p95 and queueing
    delay against offered load)."""
    chart = LineChart(
        title, x_label="offered load", y_label="latency (s)"
    )
    # Fully rejected load points have no latency (None) — skip them.
    mean = [(p.load, p.latency_mean) for p in points
            if p.latency_mean is not None]
    p95 = [(p.load, p.latency_p95) for p in points
           if p.latency_p95 is not None]
    if mean:
        chart.add_series("mean", mean)
    if p95:
        chart.add_series("p95", p95)
    chart.add_series(
        "queueing", [(p.load, p.queue_delay_mean) for p in points]
    )
    return chart.to_svg()


def workload_html(points: List, knee: Optional[float]) -> str:
    """The multi-query workload section: saturation chart + summary
    table (beyond the paper: the shared-machine service regime)."""
    parts = [
        "<h2>Beyond the paper — multi-query workload saturation</h2>",
        "<p>One shared simulated machine serving a stream of Figure 8 "
        "queries behind admission control; the knee of the "
        "latency-versus-load curve is the machine's capacity.</p>",
        "<figure>",
        workload_chart(points, "Latency versus offered load"),
        "</figure>",
        "<table><tr><th>load</th><th>throughput</th><th>utilization</th>"
        "<th>p50</th><th>p95</th><th>queueing</th></tr>",
    ]
    def seconds(value):
        return "n/a" if value is None else f"{value:.2f}s"

    for p in points:
        parts.append(
            f"<tr><td>{p.load:.2f}</td><td>{p.throughput:.3f}</td>"
            f"<td>{p.utilization:.0%}</td><td>{seconds(p.latency_p50)}</td>"
            f"<td>{seconds(p.latency_p95)}</td>"
            f"<td>{p.queue_delay_mean:.2f}s</td></tr>"
        )
    parts.append("</table>")
    parts.append(
        f"<p>Saturation knee: <b>{knee:g}</b> offered load.</p>"
        if knee is not None
        else "<p>The sweep never saturated the machine.</p>"
    )
    return "\n".join(parts)


def resilience_chart(points: List, title: str) -> str:
    """Goodput-versus-crash-rate panel from
    :class:`~repro.faults.ResiliencePoint` rows, one series per
    strategy."""
    chart = LineChart(
        title, x_label="crash rate (/proc/s)", y_label="goodput (q/s)"
    )
    strategies = sorted({p.strategy for p in points})
    for strategy in strategies:
        series = sorted(
            (p.crash_rate, p.goodput)
            for p in points if p.strategy == strategy
        )
        chart.add_series(strategy, series)
    return chart.to_svg()


def resilience_html(points: List) -> str:
    """The fault-injection section: goodput degradation chart + per-cell
    resilience table (beyond the paper: crash-stop failures with
    recovery)."""
    recoveries = sorted({p.recovery for p in points})
    parts = [
        "<h2>Beyond the paper — resilience under crash-stop faults</h2>",
        "<p>Deterministic fault injection on the shared machine: "
        "processors crash mid-pipeline and the workload engine recovers "
        f"({', '.join(escape(r) for r in recoveries)}). Goodput counts "
        "completed queries only; wasted work is busy time spent on "
        "attempts that later aborted.</p>",
        "<figure>",
        resilience_chart(points, "Goodput versus crash rate"),
        "</figure>",
        "<table><tr><th>strategy</th><th>crash rate</th><th>recovery</th>"
        "<th>done</th><th>failed</th><th>retries</th><th>goodput</th>"
        "<th>wasted</th><th>MTTR</th></tr>",
    ]
    for p in points:
        mttr = "n/a" if p.mttr is None else f"{p.mttr:.1f}s"
        parts.append(
            f"<tr><td>{escape(p.strategy)}</td><td>{p.crash_rate:g}</td>"
            f"<td>{escape(p.recovery)}</td><td>{p.completed}</td>"
            f"<td>{p.failed}</td><td>{p.retries}</td>"
            f"<td>{p.goodput:.3f}</td><td>{p.wasted_fraction:.1%}</td>"
            f"<td>{mttr}</td></tr>"
        )
    parts.append("</table>")
    return "\n".join(parts)


def overload_chart(points: List, title: str) -> str:
    """Goodput-versus-offered-load panel from
    :class:`~repro.workload.OverloadPoint` rows, one series per
    (strategy, shed policy) pair."""
    chart = LineChart(
        title, x_label="offered load (q/s)", y_label="goodput (q/s)"
    )
    pairs = sorted({(p.strategy, p.shed or "none") for p in points})
    for strategy, shed in pairs:
        series = sorted(
            (p.load, p.goodput)
            for p in points
            if p.strategy == strategy and (p.shed or "none") == shed
        )
        chart.add_series(f"{strategy}/{shed}", series)
    return chart.to_svg()


def overload_html(points: List) -> str:
    """The request-lifecycle section: goodput under overload with and
    without load shedding (beyond the paper: deadlines and admission
    policies on the shared machine)."""
    sheds = sorted({p.shed or "none" for p in points})
    parts = [
        "<h2>Beyond the paper — goodput under overload with deadlines</h2>",
        "<p>Every query carries a deadline in simulated time; a query "
        "still running at its deadline is aborted, so late work burns "
        "machine time without producing a result. Without shedding, "
        "goodput collapses past the saturation knee; a deadline-aware "
        "admission policy sheds doomed arrivals up front and holds "
        f"goodput near capacity (policies compared: "
        f"{', '.join(escape(s) for s in sheds)}).</p>",
        "<figure>",
        overload_chart(points, "Goodput versus offered load"),
        "</figure>",
        "<table><tr><th>strategy</th><th>load</th><th>shed policy</th>"
        "<th>offered</th><th>done</th><th>shed</th><th>expired</th>"
        "<th>deadline-aborted</th><th>goodput</th><th>miss rate</th>"
        "<th>utilization</th></tr>",
    ]
    for p in points:
        miss = "n/a" if p.miss_rate is None else f"{p.miss_rate:.0%}"
        parts.append(
            f"<tr><td>{escape(p.strategy)}</td><td>{p.load:g}</td>"
            f"<td>{escape(p.shed or 'none')}</td><td>{p.offered}</td>"
            f"<td>{p.completed}</td><td>{p.shed_count}</td>"
            f"<td>{p.expired}</td><td>{p.deadline_aborted}</td>"
            f"<td>{p.goodput:.3f}</td><td>{miss}</td>"
            f"<td>{p.utilization:.0%}</td></tr>"
        )
    parts.append("</table>")
    return "\n".join(parts)


def fairness_chart(points: List, title: str) -> str:
    """Goodput-share-versus-abuse panel from
    :class:`~repro.workload.FairnessPoint` rows, one series per
    (scheduler, tenant) pair."""
    chart = LineChart(
        title, x_label="abusive tenant load (× fair share)",
        y_label="goodput share",
    )
    pairs = sorted({(p.scheduler, p.tenant) for p in points})
    for scheduler, tenant in pairs:
        series = sorted(
            (p.abuse_factor, p.share)
            for p in points
            if p.scheduler == scheduler and p.tenant == tenant
        )
        chart.add_series(f"{scheduler}/{tenant}", series)
    return chart.to_svg()


def fairness_html(points: List) -> str:
    """The multi-tenant fairness section: goodput-share chart + per-cell
    tenant table (beyond the paper: pluggable schedulers with
    weighted fair queueing)."""
    schedulers = sorted({p.scheduler for p in points})
    parts = [
        "<h2>Beyond the paper — multi-tenant fairness under abuse</h2>",
        "<p>Two tenants share the machine: one well-behaved, one "
        "ramping past its fair arrival rate. Under FIFO the abusive "
        "tenant's queue depth starves the other; weighted fair "
        "queueing keeps the well-behaved tenant's goodput near its "
        f"solo baseline (schedulers compared: "
        f"{', '.join(escape(s) for s in schedulers)}).</p>",
        "<figure>",
        fairness_chart(points, "Goodput share versus abusive load"),
        "</figure>",
        "<table><tr><th>scheduler</th><th>abuse ×</th><th>tenant</th>"
        "<th>offered</th><th>done</th><th>shed</th><th>goodput</th>"
        "<th>share</th><th>p95</th></tr>",
    ]
    for p in points:
        p95 = "n/a" if p.p95_latency is None else f"{p.p95_latency:.2f}s"
        parts.append(
            f"<tr><td>{escape(p.scheduler)}</td><td>{p.abuse_factor:g}</td>"
            f"<td>{escape(p.tenant)}</td><td>{p.offered}</td>"
            f"<td>{p.completed}</td><td>{p.shed}</td>"
            f"<td>{p.goodput:.3f}</td><td>{p.share:.0%}</td>"
            f"<td>{p95}</td></tr>"
        )
    parts.append("</table>")
    return "\n".join(parts)


def cluster_chart(points: List[Dict], title: str) -> str:
    """Cluster-capacity-versus-time panel, one step series per
    capacity plan (static plans are flat lines; elastic plans step up
    through the surge and back down after it)."""
    chart = LineChart(
        title, x_label="simulated time (s)",
        y_label="cluster capacity (processors)",
    )
    for point in points:
        chart.add_series(point["plan"], point["capacity"])
    return chart.to_svg()


def cluster_html(points: List[Dict]) -> str:
    """The sharded-serving section: capacity timeline chart + per-plan
    table (beyond the paper: a trace replayed through shards under
    static and elastic capacity plans)."""
    parts = [
        "<h2>Beyond the paper — sharded serving with elastic "
        "autoscaling</h2>",
        "<p>One recorded arrival trace with a 2&times; load surge in "
        "the middle, replayed bit-for-bit through the same sharded "
        "cluster under four capacity plans. The static base plan "
        "queues through the surge; the static peak plan pays for the "
        "surge around the clock; the elastic plans scale shards up at "
        "the surge and back down after it, retaining the peak plan's "
        "goodput at the base plan's provisioning.</p>",
        "<figure>",
        cluster_chart(points, "Cluster capacity versus time"),
        "</figure>",
        "<table><tr><th>plan</th><th>done</th><th>goodput</th>"
        "<th>p50</th><th>p99</th><th>scale ups</th>"
        "<th>scale downs</th></tr>",
    ]
    def seconds(value):
        return "n/a" if value is None else f"{value:.1f}s"

    for p in points:
        parts.append(
            f"<tr><td>{escape(p['plan'])}</td>"
            f"<td>{p['completed']}/{p['submitted']}</td>"
            f"<td>{p['goodput']:.3f}</td><td>{seconds(p['latency_p50'])}</td>"
            f"<td>{seconds(p['latency_p99'])}</td><td>{p['scale_ups']}</td>"
            f"<td>{p['scale_downs']}</td></tr>"
        )
    parts.append("</table>")
    return "\n".join(parts)


def cluster_resilience_html(points: List[Dict]) -> str:
    """The cluster-resilience section: per-scenario table from
    ``benchmarks/bench_resilience.py`` rows (beyond the paper: shard
    failover, retry budgets and hedged requests on the coordinated
    cluster)."""
    parts = [
        "<h2>Beyond the paper — cluster resilience under shard "
        "failure</h2>",
        "<p>The coordinated single-clock cluster survives shard "
        "crash-stop failures: queued and in-flight queries on the dead "
        "shard are evacuated and retried against live shards under a "
        "per-query retry budget, and hedged requests duplicate slow "
        "dispatches to a second shard, taking whichever attempt "
        "finishes first. &ldquo;Retained&rdquo; is goodput as a "
        "fraction of the fault-free run.</p>",
        "<table><tr><th>scenario</th><th>done</th><th>failed</th>"
        "<th>goodput</th><th>retained</th><th>retries</th>"
        "<th>hedges</th><th>p99</th></tr>",
    ]
    for p in points:
        retained = (
            "n/a" if p.get("retained") is None else f"{p['retained']:.0%}"
        )
        p99 = "n/a" if p.get("p99") is None else f"{p['p99']:.2f}s"
        hedges = (
            f"{p.get('hedges', 0)} ({p.get('hedge_wins', 0)} won)"
            if p.get("hedges")
            else "0"
        )
        parts.append(
            f"<tr><td>{escape(p['scenario'])}</td>"
            f"<td>{p['completed']}/{p['submitted']}</td>"
            f"<td>{p.get('failed', 0)}</td><td>{p['goodput']:.3f}</td>"
            f"<td>{retained}</td><td>{p.get('retries', 0)}</td>"
            f"<td>{hedges}</td><td>{p99}</td></tr>"
        )
    parts.append("</table>")
    return "\n".join(parts)


def render_report(
    sweeps: Dict[Tuple[str, str], SweepResult],
    diagrams: Optional[Dict[str, SimulationResult]] = None,
    workload_points: Optional[List] = None,
    resilience_points: Optional[List] = None,
    overload_points: Optional[List] = None,
    fairness_points: Optional[List] = None,
    cluster_points: Optional[List[Dict]] = None,
    cluster_resilience_points: Optional[List[Dict]] = None,
) -> str:
    """The full HTML document."""
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>Parallel evaluation of multi-join queries — reproduction</title>",
        f"<style>{_STYLE}</style></head><body>",
        "<h1>Parallel Evaluation of Multi-Join Queries</h1>",
        "<p>Reproduction of Wilschut, Flokstra &amp; Apers, SIGMOD 1995, "
        "on a simulated PRISMA/DB machine. Absolute seconds are "
        "calibrated once against Figure 14; curve shapes, winners and "
        "crossovers are the reproduced content.</p>",
        "<h2>Figure 14 — best response times</h2>",
        figure14_html(sweeps),
    ]
    if diagrams:
        parts.append("<h2>Figures 3, 4, 6, 7 — utilization diagrams</h2>")
        figure_of = {"SP": 3, "SE": 4, "RD": 6, "FP": 7}
        for name, result in diagrams.items():
            parts.append("<figure>")
            parts.append(
                utilization_gantt(
                    result,
                    f"Figure {figure_of.get(name, '?')} — {name} on "
                    f"{result.processors} processors (idealized)",
                )
            )
            parts.append("</figure>")
    parts.append("<h2>Figures 9–13 — response-time sweeps</h2>")
    for (shape, size), sweep in sorted(sweeps.items()):
        parts.append("<figure>")
        parts.append(sweep_chart(sweep))
        parts.append(
            f"<figcaption>Section 4.4 claims for this panel:</figcaption>"
        )
        parts.append(claims_html(sweep))
        parts.append("</figure>")
    if workload_points:
        from ..workload import curve_knee

        parts.append(workload_html(workload_points, curve_knee(workload_points)))
    if resilience_points:
        parts.append(resilience_html(resilience_points))
    if overload_points:
        parts.append(overload_html(overload_points))
    if fairness_points:
        parts.append(fairness_html(fairness_points))
    if cluster_points:
        parts.append(cluster_html(cluster_points))
    if cluster_resilience_points:
        parts.append(cluster_resilience_html(cluster_resilience_points))
    parts.append("</body></html>")
    return "\n".join(parts)
