"""Analytic response-time model ([WiA93, WiG93] lineage)."""

from .analytic import Prediction, predict, predict_schedule, relative_error

__all__ = ["Prediction", "predict", "predict_schedule", "relative_error"]
