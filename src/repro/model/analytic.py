"""Analytic response-time model.

Section 2.3.3 of the paper leans on an analytical model of pipelined
query execution ([WiA93, WiG93]) to explain the experiments: constant
delay per linear pipeline step, size-proportional delay per bushy
step.  This module provides the same kind of model for the whole
reproduction: closed-form (recurrence-based, no event simulation)
response-time predictions for each strategy, built from the identical
machine constants the simulator uses.

The model is deliberately first-order — its role is explanation and
cross-validation, not replacement of the DES.  Tests pin it to within
a modest tolerance of the simulator across the paper's grid, and the
``bench_extension_model`` benchmark reports the fit like [WiG93] did.

Per-task ingredients (seconds):

* ``work(j)/p_j``      CPU time per processor of join j;
* ``init_end(j)``      when the serial scheduler has initialized j's
                       processes (cumulative process count × startup);
* ``handshakes(j)``    per-processor stream-setup CPU;
* ``hop``              per-pipeline-step delivery delay (latency plus
                       one CPU chunk).

Strategy recurrences:

* barrier tasks (SP/SE, RD's wave starts): ``finish = max(deps,
  init_end) + handshakes + work/p + latency``;
* pipelined consumers (RD segments, FP): ``finish = max(start +
  work/p, feed + hop)`` where ``feed`` is when the last input tuple
  arrived — the classic pipeline bottleneck recurrence; a bushy join
  fed by two still-running producers additionally waits for the
  slower producer's backloaded output ramp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..core.cost import Catalog, CostModel
from ..core.schedule import JoinTask, ParallelSchedule
from ..core.strategies import Strategy, get_strategy
from ..core.trees import Node
from ..sim.machine import MachineConfig


@dataclass(frozen=True)
class Prediction:
    """Predicted response time with its per-task completion profile."""

    strategy: str
    processors: int
    response_time: float
    task_finish: Dict[int, float]

    def finish_of(self, index: int) -> float:
        return self.task_finish[index]


def predict_schedule(
    schedule: ParallelSchedule,
    catalog: Catalog,
    config: Optional[MachineConfig] = None,
    cost_model: CostModel = CostModel(),
) -> Prediction:
    """Predict the response time of ``schedule`` analytically."""
    if config is None:
        config = MachineConfig.paper()
    per_join = cost_model.annotate(schedule.tree, catalog)
    costs = {task.index: per_join[task.join] for task in schedule.tasks}

    # Serial scheduler initialization.
    init_end: Dict[int, float] = {}
    processes = 0
    for task in schedule.tasks:
        processes += task.parallelism
        init_end[task.index] = processes * config.process_startup

    def work_seconds(task: JoinTask) -> float:
        return costs[task.index].cost * config.tuple_unit / task.parallelism

    def startup_handshake_seconds(task: JoinTask) -> float:
        """Consumer-side handshakes, plus the producer side of a
        pipelined output — paid before work starts (as in the sim)."""
        count = 0
        for spec in (task.left_input, task.right_input):
            if not spec.is_base:
                count += schedule.tasks[spec.source].parallelism
        consumer = _consumer_of(schedule, task.index)
        if consumer is not None and _input_mode(consumer, task.index) == "pipelined":
            count += consumer.parallelism
        return count * config.handshake

    def send_handshake_seconds(task: JoinTask) -> float:
        """Send setup of a materialized output — paid before completion."""
        consumer = _consumer_of(schedule, task.index)
        if consumer is not None and _input_mode(consumer, task.index) == "materialized":
            return consumer.parallelism * config.handshake
        return 0.0

    def chunk_seconds(task: JoinTask) -> float:
        cost = costs[task.index]
        biggest = max(cost.n1, cost.n2) / task.parallelism
        per_tuple = cost_model.intermediate_coeff + cost_model.result_coeff
        return biggest / config.batches * per_tuple * config.tuple_unit

    finish: Dict[int, float] = {}
    start: Dict[int, float] = {}
    for task in _topological(schedule):
        ready = max((finish[dep] for dep in task.start_after), default=0.0)
        ready = max(ready, init_end[task.index])
        # Stored operands arrive one latency after their producer; the
        # consumer's handshakes overlap that delivery.
        data_wait = ready
        for spec in (task.left_input, task.right_input):
            if spec.mode == "materialized":
                data_wait = max(
                    data_wait, finish[spec.source] + config.network_latency
                )
        begin = max(ready + startup_handshake_seconds(task), data_wait)
        start[task.index] = begin
        capacity_finish = begin + work_seconds(task)
        feed = begin
        for spec in (task.left_input, task.right_input):
            if spec.mode == "pipelined":
                hop = config.network_latency + chunk_seconds(task)
                feed = max(feed, finish[spec.source] + hop)
        pipelined_inputs = sum(
            1
            for spec in (task.left_input, task.right_input)
            if spec.mode == "pipelined"
        )
        if pipelined_inputs == 2:
            # Bushy pipeline step: both operands arrive backloaded
            # (the producers' output ramps with the product of arrived
            # fractions), so the step drains roughly a quarter of its
            # own work after the last input (Section 2.3.3's
            # size-proportional delay).
            feed += work_seconds(task) / 4.0
        finish[task.index] = max(capacity_finish, feed) + send_handshake_seconds(task)
    response = max(finish.values())
    return Prediction(
        schedule.strategy, schedule.processors, response, finish
    )


def predict(
    tree: Node,
    catalog: Catalog,
    strategy: Union[str, Strategy],
    processors: int,
    config: Optional[MachineConfig] = None,
    cost_model: CostModel = CostModel(),
) -> Prediction:
    """Plan and predict in one call (mirror of ``simulate_strategy``)."""
    if isinstance(strategy, str):
        strategy = get_strategy(strategy)
    schedule = strategy.schedule(tree, catalog, processors, cost_model)
    return predict_schedule(schedule, catalog, config, cost_model)


#: How optimistic :func:`forecast_epoch_end` is about the model's
#: over-prediction.  The forecast is a *pre-gate*, not a correctness
#: check: the hosted fast path always verifies the exact simulated
#: completion against the event barrier and rolls back on a miss, so
#: an optimistic factor only trades wasted analytic attempts against
#: missed fast-path opportunities.
EPOCH_OPTIMISM = 0.5


def forecast_epoch_end(
    schedule: ParallelSchedule,
    catalog: Catalog,
    start_at: float,
    config: Optional[MachineConfig] = None,
    cost_model: CostModel = CostModel(),
    *,
    optimism: float = EPOCH_OPTIMISM,
) -> float:
    """Cheap absolute-time completion forecast for a hosted epoch.

    The workload engine uses this to decide whether a just-admitted
    single-occupancy query is even *worth* attempting on the turbo
    fast path: if the forecast — deliberately scaled down by
    ``optimism`` so an over-predicting model cannot starve the fast
    path — already lands past the next foreign clock event, the
    analytic run would be computed only to be rolled back, and the
    engine skips straight to the classic event loop.  The model is
    first-order, so callers must never treat this as the authoritative
    completion time; only :func:`repro.sim.turbo.execute_hosted`'s
    exact replay decides admission into the fast path.
    """
    prediction = predict_schedule(schedule, catalog, config, cost_model)
    return start_at + optimism * prediction.response_time


def _consumer_of(schedule: ParallelSchedule, index: int) -> Optional[JoinTask]:
    for task in schedule.tasks:
        for spec in (task.left_input, task.right_input):
            if not spec.is_base and spec.source == index:
                return task
    return None


def _input_mode(consumer: JoinTask, producer_index: int) -> str:
    for spec in (consumer.left_input, consumer.right_input):
        if not spec.is_base and spec.source == producer_index:
            return spec.mode
    raise ValueError(f"task {consumer.index} does not consume {producer_index}")


def _topological(schedule: ParallelSchedule) -> List[JoinTask]:
    """Tasks ordered so every dependency precedes its dependents.

    Postorder is not enough: RD's wave barriers can point to tasks
    with *higher* postorder indices (independent segments of an
    earlier wave).
    """
    by_index = {task.index: task for task in schedule.tasks}
    order: List[JoinTask] = []
    visited: Dict[int, int] = {}  # 0 = in progress, 1 = done

    def visit(index: int) -> None:
        state = visited.get(index)
        if state == 1:
            return
        if state == 0:
            raise ValueError(f"dependency cycle through task {index}")
        visited[index] = 0
        task = by_index[index]
        for dep in task.start_after:
            visit(dep)
        for spec in (task.left_input, task.right_input):
            if not spec.is_base:
                visit(spec.source)
        visited[index] = 1
        order.append(task)

    for task in schedule.tasks:
        visit(task.index)
    return order


def relative_error(predicted: float, simulated: float) -> float:
    """Symmetric relative deviation of model versus simulation."""
    if simulated <= 0:
        raise ValueError("simulated time must be positive")
    return abs(predicted - simulated) / simulated


def predict_spec_service_time(
    spec,
    machine_size: int,
    config: Optional[MachineConfig] = None,
    cost_model: Optional[CostModel] = None,
) -> Optional[float]:
    """Analytic response time of one workload ``QuerySpec`` at advised
    parallelism on a ``machine_size`` machine.

    This is the Section 3 forecast the SJF/WFQ schedulers trust
    (:class:`~repro.workload.sched.ServiceEstimator`), parameterized by
    capacity instead of a live engine: plan the spec (resolving
    ``"auto"`` through the guideline advisor), clamp the advised
    parallelism to the machine (pipelining needs one processor per
    join to be feasible), and predict.  The cluster layer leans on it
    twice — ``least_loaded`` placement's busy-until forecast, and the
    resilient router's hedging trigger (forecast completion versus the
    recent-latency percentile).  Returns ``None`` for a spec no plan
    can run at this capacity.
    """
    from ..core.trees import num_joins
    from ..optimizer.guidelines import (
        advise_parallelism,
        advise_strategy,
        apply_advice,
    )

    cost_model = cost_model or CostModel()
    try:
        tree = spec.tree()
        catalog = spec.catalog()
        strategy = spec.strategy
        if strategy == "auto":
            advice = advise_strategy(tree, catalog, machine_size, cost_model)
            tree = apply_advice(tree, advice)
            strategy = advice.strategy
        processors = advise_parallelism(
            tree, catalog, machine_size, cost_model
        )
        if strategy == "FP":
            # Pipelining needs one processor per join to be feasible.
            processors = max(processors, num_joins(tree))
        processors = max(1, min(processors, machine_size))
        return predict(
            tree, catalog, strategy, processors, config, cost_model
        ).response_time
    except ValueError:
        return None
