"""Wiring a :class:`~repro.core.schedule.ParallelSchedule` onto the
simulated machine and running it.

This is the simulated counterpart of PRISMA's query execution engine
(Section 2.2): a single scheduler process serially initializes one
operation process per (join, processor) pair, the processes coordinate
among themselves through tuple streams, and the run ends when the last
process finishes.

A :class:`ScheduleSimulation` normally owns its clock and processors —
one query on a dedicated machine, exactly the paper's setting.  It can
instead be *hosted*: handed an external clock, a mapping of logical to
shared physical processors, a start time, and a completion callback,
so several queries run concurrently on one machine (the substrate of
:mod:`repro.workload`).  A hosted run with the identity mapping
starting at time zero takes the same code path and produces the same
event sequence as an owned run, which is what keeps single-query
results bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Collection,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..core.cost import Catalog, CostModel, JoinCost
from ..core.schedule import JoinTask, ParallelSchedule
from .events import SimulationClock
from .machine import MachineConfig, NetworkLink, Processor
from .metrics import SimulationResult, TaskTiming
from .process import (
    OperationProcess,
    PipeliningHashJoinProcess,
    SimpleHashJoinProcess,
)
from .skew import zipf_shares
from .streams import ConsumerGroup, Port


class QueryAbortedError(RuntimeError):
    """The query was crash-stopped mid-execution — by an injected
    fault, by its deadline (``reason="deadline"``), or by an explicit
    cancellation.

    Raised by :meth:`ScheduleSimulation.run` for an owned (single-query)
    run; a hosted run never raises — the workload engine observes the
    abort through its fault-recovery and lifecycle paths instead.
    """

    def __init__(self, reason: str, at: float):
        super().__init__(f"query aborted at t={at:.3f}s: {reason}")
        self.reason = reason
        self.at = at


@dataclass
class _TaskRuntime:
    """Mutable bookkeeping for one join task during the run."""

    task: JoinTask
    cost: JoinCost
    processes: List[OperationProcess] = field(default_factory=list)
    remaining_deps: int = 0
    dependents: List["_TaskRuntime"] = field(default_factory=list)
    done_processes: int = 0
    released_at: float = 0.0
    completion: Optional[float] = None
    output_group: Optional[ConsumerGroup] = None
    output_pipelined: bool = False
    #: Fragment share per process (uniform or Zipf), in process order.
    shares: List[float] = field(default_factory=list)


class ScheduleSimulation:
    """One simulated execution of a parallel schedule."""

    def __init__(
        self,
        schedule: ParallelSchedule,
        catalog: Catalog,
        config: Optional[MachineConfig] = None,
        cost_model: Optional[CostModel] = None,
        skew_theta: float = 0.0,
        *,
        clock: Optional[SimulationClock] = None,
        processor_pool: Optional[Mapping[int, Processor]] = None,
        start_at: float = 0.0,
        label_prefix: str = "",
        on_complete: Optional[Callable[["ScheduleSimulation"], None]] = None,
        network: Optional[NetworkLink] = None,
        skip_tasks: Collection[int] = (),
        deadline: Optional[float] = None,
    ):
        """``skew_theta`` relaxes the paper's non-skew assumption: the
        fragments of every operand follow Zipf(theta) shares instead of
        a uniform split (0.0 reproduces the paper).

        The keyword-only arguments host the run on a shared machine:
        ``clock`` is an external event loop (the run no longer drives
        it — call :meth:`result` from ``on_complete`` instead of
        :meth:`run`), ``processor_pool`` maps this schedule's logical
        processor ids to shared physical :class:`Processor` objects,
        ``start_at`` is the simulated time the scheduler begins
        claiming processes, and ``label_prefix`` distinguishes this
        query's busy intervals on shared processor traces.

        ``skip_tasks`` lists join tasks whose materialized results
        survive from an earlier attempt (the ``reassign`` recovery
        policy): they run no processes and instead replay their stored
        output at ``start_at``.  The set is closed under input sources
        (a reused task's feeders are reused too); the root is never
        reusable, and a reused task whose live consumer expects a
        *pipelined* input is rejected — pipelined (FP) dataflow holds
        its state in the crashed processes, so it must rebuild.

        ``deadline`` is an absolute simulated time (> ``start_at``);
        a query still unfinished then is aborted through the same
        inert-process machinery faults use
        (:class:`QueryAbortedError` with ``reason="deadline"``).  The
        deadline event is cancellable, so a deadline the query beats —
        and ``deadline=None`` — leave the run bit-for-bit identical to
        a deadline-free one.
        """
        self.schedule = schedule
        self.catalog = catalog
        self.config = config or MachineConfig.paper()
        if cost_model is None:
            cost_model = CostModel()
        self.cost_model = cost_model
        self.skew_theta = skew_theta
        self._owns_clock = clock is None
        self.clock = clock if clock is not None else SimulationClock()
        self._pool = processor_pool
        self.start_at = start_at
        self.label_prefix = label_prefix
        self.on_complete = on_complete
        self.finished_at: Optional[float] = None
        self.aborted_reason: Optional[str] = None
        self.aborted_at: Optional[float] = None
        #: Set by FaultInjector.attach_simulation when any perturbation
        #: (crash, stall, link fault) targets this run; keeps the
        #: analytic fast path (repro.sim.turbo) off perturbed runs.
        self.perturbed = False
        if deadline is not None and deadline <= start_at:
            raise ValueError(
                f"deadline {deadline} must lie after the query's start "
                f"({start_at}); an already-expired query should be shed "
                "at admission, not started"
            )
        self.deadline = deadline
        self._deadline_handle = None
        self._completed_tasks = 0
        self.processors: Dict[int, Processor] = {}
        self.network = (
            network
            if network is not None
            else NetworkLink(self.config.network_bandwidth)
        )
        self.skip_tasks: FrozenSet[int] = self._close_skips(skip_tasks)
        annotation = cost_model.annotate(schedule.tree, catalog)
        self.runtimes: List[_TaskRuntime] = [
            _TaskRuntime(task=task, cost=annotation[task.join])
            for task in schedule.tasks
        ]
        self._build()

    # -- construction -----------------------------------------------------

    def _close_skips(self, requested: Collection[int]) -> FrozenSet[int]:
        """Validate and close ``skip_tasks`` under input sources.

        If a task's result is being replayed, everything that only fed
        that task has nothing left to produce, so it is reused too.
        """
        if not requested:
            return frozenset()
        tasks = {task.index: task for task in self.schedule.tasks}
        for index in requested:
            if index not in tasks:
                raise ValueError(f"skip_tasks references unknown task {index}")
        skip = set(requested)
        stack = list(skip)
        while stack:
            task = tasks[stack.pop()]
            for spec in (task.left_input, task.right_input):
                if not spec.is_base and spec.source not in skip:
                    skip.add(spec.source)
                    stack.append(spec.source)
        root = self.schedule.tasks[-1].index
        if root in skip:
            raise ValueError(
                "the root task's result cannot be reused; nothing would run"
            )
        return frozenset(skip)

    def _processor(self, ident: int) -> Processor:
        if ident not in self.processors:
            if self._pool is not None:
                self.processors[ident] = self._pool[ident]
            else:
                self.processors[ident] = Processor(ident)
        return self.processors[ident]

    def _build(self) -> None:
        # Who consumes each task's output, and through which side.
        consumer_of: Dict[int, Tuple[_TaskRuntime, str]] = {}
        for runtime in self.runtimes:
            for side, spec in (
                ("left", runtime.task.left_input),
                ("right", runtime.task.right_input),
            ):
                if not spec.is_base:
                    consumer_of[spec.source] = (runtime, side)

        # Create processes with their input ports.  Fragment shares
        # are uniform under the paper's assumption, Zipfian under skew.
        # Everything constant across a task's processes (coefficients,
        # work scale, name, completion hook) is computed once per task.
        ports_by_task_side: Dict[Tuple[int, str], List[Port]] = {}
        shares_of: Dict[int, List[float]] = {}
        base_coeff = self.cost_model.base_coeff
        intermediate_coeff = self.cost_model.intermediate_coeff
        result_coeff = self.cost_model.result_coeff
        for runtime in self.runtimes:
            task = runtime.task
            shares = zipf_shares(task.parallelism, self.skew_theta)
            shares_of[task.index] = shares
            runtime.shares = shares
            if task.index in self.skip_tasks:
                continue  # replayed from a surviving materialized result
            cost = runtime.cost
            side_params = []
            for side, spec, total in (
                ("left", task.left_input, cost.n1),
                ("right", task.right_input, cost.n2),
            ):
                if spec.is_base:
                    side_params.append((side, spec.mode, base_coeff, 0, total))
                else:
                    side_params.append(
                        (
                            side,
                            spec.mode,
                            intermediate_coeff,
                            self.schedule.tasks[spec.source].parallelism,
                            total,
                        )
                    )
            natural = self.cost_model.join_cost(
                cost.n1, cost.n2, cost.result, cost.left_base, cost.right_base
            )
            work_scale = cost.cost / natural if natural > 0 else 1.0
            name = f"{self.label_prefix}J{task.index}"
            on_done = lambda process, rt=runtime: self._process_done(rt, process)
            simple = task.algorithm == "simple"
            result_total = cost.result
            left_ports = ports_by_task_side.setdefault((task.index, "left"), [])
            right_ports = ports_by_task_side.setdefault((task.index, "right"), [])
            for proc_id, share in zip(task.processors, shares):
                sides = []
                for side, mode, coeff, producers, total in side_params:
                    sides.append(
                        Port(
                            side=side,
                            mode=mode,
                            coefficient=coeff,
                            expected_producers=producers,
                            local_total=total * share,
                        )
                    )
                left, right = sides
                left_ports.append(left)
                right_ports.append(right)
                kwargs = dict(
                    name=name,
                    processor=self._processor(proc_id),
                    clock=self.clock,
                    config=self.config,
                    left=left,
                    right=right,
                    result_local=result_total * share,
                    result_coeff=result_coeff,
                    output=None,             # wired afterwards
                    output_pipelined=False,  # wired afterwards
                    on_done=on_done,
                    work_scale=work_scale,
                )
                if simple:
                    process = SimpleHashJoinProcess(
                        build_side=task.build_side, **kwargs
                    )
                else:
                    process = PipeliningHashJoinProcess(**kwargs)
                runtime.processes.append(process)

        # Wire outputs: a task's processes share one consumer group.
        for runtime in self.runtimes:
            target = consumer_of.get(runtime.task.index)
            if target is None:
                continue  # root: result stays in local memories
            consumer_runtime, side = target
            if consumer_runtime.task.index in self.skip_tasks:
                # Closure guarantees the producer is skipped too: its
                # output is already folded into the consumer's result.
                continue
            spec = (
                consumer_runtime.task.left_input
                if side == "left"
                else consumer_runtime.task.right_input
            )
            if runtime.task.index in self.skip_tasks and spec.mode == "pipelined":
                raise ValueError(
                    f"task {runtime.task.index} cannot be reused: its output "
                    "is pipelined into a live consumer, and pipelined "
                    "dataflow state died with the crashed processes"
                )
            ports = ports_by_task_side[(consumer_runtime.task.index, side)]
            group = ConsumerGroup(
                ports,
                self.config.network_latency,
                shares=shares_of[consumer_runtime.task.index],
                network=self.network,
            )
            runtime.output_group = group
            runtime.output_pipelined = spec.mode == "pipelined"
            for process in runtime.processes:
                process.output = group
                process.output_pipelined = runtime.output_pipelined

        # Barriers.
        by_index = {rt.task.index: rt for rt in self.runtimes}
        for runtime in self.runtimes:
            runtime.remaining_deps = len(runtime.task.start_after)
            for dep in runtime.task.start_after:
                by_index[dep].dependents.append(runtime)

        # Serial scheduler initialization: one process after another,
        # in task order then processor order (Section 2.2).  Hosted
        # runs schedule cancellably and keep the handles: the epoch
        # fast path (repro.sim.turbo.execute_hosted) simulates these
        # events analytically and must then unschedule them.  A
        # cancellable entry that is never cancelled dispatches exactly
        # like a plain one, so the classic hosted path is unchanged.
        hosted = self._pool is not None
        self._build_handles = [] if hosted else None
        schedule_event = (
            self.clock.at_cancellable if hosted else self.clock.at
        )
        sequence = 0
        for runtime in self.runtimes:
            for process in runtime.processes:
                sequence += 1
                handle = schedule_event(
                    self.start_at + sequence * self.config.process_startup,
                    process.init_ready,
                )
                if hosted:
                    self._build_handles.append(handle)

        # Release unbarriered tasks at query start; replay the stored
        # results of reused tasks (they bypass barriers — the work that
        # produced them already happened in the aborted attempt).
        for runtime in self.runtimes:
            if runtime.task.index in self.skip_tasks:
                handle = schedule_event(
                    self.start_at, self._complete_skipped, runtime
                )
            elif runtime.remaining_deps == 0:
                handle = schedule_event(self.start_at, self._release, runtime)
            else:
                continue
            if hosted:
                self._build_handles.append(handle)

        # The deadline is a cancellable event: completion cancels it,
        # so a met deadline never dispatches, never counts, and never
        # advances the clock (bit-for-bit deadline-free identity).
        if self.deadline is not None:
            self._deadline_handle = self.clock.at_cancellable(
                self.deadline, self._deadline_expired
            )

        # Everything scheduled so far is _build's own; anything pushed
        # after this point (by tests, hosts or tools) disqualifies the
        # analytic fast path, which only replays _build's events.
        self._build_seq = self.clock._seq

    # -- run-time callbacks -------------------------------------------------

    def _release(self, runtime: _TaskRuntime) -> None:
        if runtime.task.index in self.skip_tasks:
            return  # replayed from memo; completes via _complete_skipped
        runtime.released_at = self.clock.now
        for process in runtime.processes:
            process.release()

    def _process_done(self, runtime: _TaskRuntime, process: OperationProcess) -> None:
        runtime.done_processes += 1
        if runtime.done_processes < len(runtime.processes):
            return
        total = sum(p.out_total for p in runtime.processes)
        self._task_complete(runtime, total, len(runtime.processes))

    def _complete_skipped(self, runtime: _TaskRuntime) -> None:
        """Replay a reused task's stored result at query start."""
        if self.aborted_reason is not None:
            return
        runtime.released_at = self.clock.now
        self._task_complete(
            runtime, runtime.cost.result, runtime.task.parallelism
        )

    def _task_complete(
        self, runtime: _TaskRuntime, total: float, producers: int
    ) -> None:
        runtime.completion = self.clock.now
        if runtime.output_group is not None and not runtime.output_pipelined:
            runtime.output_group.deliver_store(self.clock, total, producers)
        for dependent in runtime.dependents:
            dependent.remaining_deps -= 1
            if dependent.remaining_deps == 0:
                self._release(dependent)
        self._completed_tasks += 1
        if self._completed_tasks == len(self.runtimes):
            self.finished_at = self.clock.now
            if self._deadline_handle is not None:
                self._deadline_handle.cancel()
            if self.on_complete is not None:
                self.on_complete(self)

    # -- lifecycle and fault handling -------------------------------------

    def _deadline_expired(self) -> None:
        """The deadline fired before the query finished: crash-stop it
        through the same inert-process machinery faults use."""
        if self.finished_at is not None or self.aborted_reason is not None:
            return
        self.abort("deadline")

    def abort(self, reason: str) -> None:
        """Crash-stop the whole query: every process becomes inert, so
        all of its already-queued events are no-ops and the shared clock
        drains past the wreck instead of deadlocking on half-finished
        pipelines.  Idempotent; a no-op after normal completion."""
        if self.finished_at is not None or self.aborted_reason is not None:
            return
        self.aborted_reason = reason
        self.aborted_at = self.clock.now
        if self._deadline_handle is not None:
            self._deadline_handle.cancel()
        for runtime in self.runtimes:
            for process in runtime.processes:
                process.abort()

    # -- execution ------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run to completion and package the result."""
        if not self._owns_clock:
            raise RuntimeError(
                "hosted simulations share an external clock; drive that "
                "clock and collect the result from on_complete/result()"
            )
        from . import turbo

        if not turbo.execute(self):
            self.clock.run()
        if self.aborted_reason is not None:
            raise QueryAbortedError(self.aborted_reason, self.aborted_at or 0.0)
        return self.result()

    def result(self) -> SimulationResult:
        """Package the finished run as a :class:`SimulationResult`.

        Response time is relative to ``start_at`` — for an owned run
        exactly the paper's measure, for a hosted run the query's
        service time on the shared machine.  On shared processors only
        the busy intervals carrying this run's ``label_prefix`` are
        attributed to the query.
        """
        if self.aborted_reason is not None:
            raise QueryAbortedError(self.aborted_reason, self.aborted_at or 0.0)
        unfinished = [rt.task.index for rt in self.runtimes if rt.completion is None]
        if unfinished:
            raise RuntimeError(
                f"simulation drained its event queue with tasks {unfinished} "
                "incomplete; schedule wiring bug"
            )
        response = max(rt.completion for rt in self.runtimes) - self.start_at
        timings = []
        for runtime in self.runtimes:
            starts = [
                p.start_time for p in runtime.processes if p.start_time is not None
            ]
            timings.append(
                TaskTiming(
                    index=runtime.task.index,
                    label=runtime.task.join.label or str(runtime.task.index),
                    released=runtime.released_at,
                    first_work=min(starts) if starts else None,
                    completion=runtime.completion,
                )
            )
        root = self.runtimes[-1]
        return SimulationResult(
            strategy=self.schedule.strategy,
            processors=self.schedule.processors,
            response_time=response,
            config=self.config,
            task_timings=timings,
            intervals={
                ident: self._attributed_intervals(proc)
                for ident, proc in sorted(self.processors.items())
            },
            operation_processes=sum(len(rt.processes) for rt in self.runtimes),
            stream_count=self.schedule.stream_count(),
            events=self.clock.events_dispatched,
            result_tuples=sum(p.out_total for p in root.processes),
        )

    def _attributed_intervals(
        self, processor: Processor
    ) -> List[Tuple[float, float, str]]:
        """The processor's busy intervals belonging to this run.

        An owned run is alone on its processors, so everything is its
        own; on a shared pool the ``label_prefix`` identifies it.
        """
        if self._pool is None:
            return list(processor.intervals)
        return [
            span
            for span in processor.intervals
            if span[2].startswith(self.label_prefix)
        ]


def simulate(
    schedule: ParallelSchedule,
    catalog: Catalog,
    config: Optional[MachineConfig] = None,
    *,
    cost_model: Optional[CostModel] = None,
    skew_theta: float = 0.0,
    faults=None,
    deadline: Optional[float] = None,
) -> SimulationResult:
    """Build and run a :class:`ScheduleSimulation` in one call.

    ``faults`` accepts a :class:`repro.faults.FaultSchedule` (or a
    prepared :class:`repro.faults.FaultInjector`); a crash that hits
    the query raises :class:`QueryAbortedError` — recovery policies
    live in the workload engine, not here.  ``None`` stays on the exact
    fault-free code path.

    ``deadline`` bounds the query's simulated response time: a run
    still unfinished then raises :class:`QueryAbortedError` with
    ``reason="deadline"``.  A deadline the query beats is a strict
    no-op.
    """
    sim = ScheduleSimulation(
        schedule, catalog, config, cost_model, skew_theta, deadline=deadline
    )
    if faults is not None:
        from ..faults import FaultInjector

        injector = (
            faults if isinstance(faults, FaultInjector) else FaultInjector(faults)
        )
        injector.attach_simulation(sim)
    return sim.run()
