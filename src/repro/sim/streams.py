"""Tuple-stream plumbing of the simulated machine.

Tuples move between operation processes in *batches* of fractional
tuple counts (a fluid approximation — the per-tuple costs are exact in
total, only their timing is batch-granular).  A :class:`Port` is the
receiving side of one join operand on one operation process; a
:class:`ConsumerGroup` is the set of ports a producer's output is
split over.  End-of-stream is tracked per producer process, mirroring
PRISMA's per-stream termination protocol.

Delivery is *batch-coalesced*: a producer's chunk output arrives as a
single event carrying a fractional tuple count, never as per-tuple
events, so event volume scales with chunk count rather than
cardinality.  The analytic fast path (:mod:`repro.sim.turbo`)
replicates exactly this batch granularity — including each batch's
arrival time ``emit + latency`` and its per-producer arrival order —
which is what lets it replay the same float arithmetic off the heap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from .events import SimulationClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .process import OperationProcess

#: Tolerance for "this fractional tuple count is drained".
EPSILON = 1e-9


class Port:
    """One input operand of one operation process.

    ``coefficient`` is the per-tuple consumption cost in §4.3 units
    (1 for a locally resident base fragment, 2 for tuples received
    from the network).  ``local_total`` is the fragment size this
    process will see in total (n_side / parallelism — the paper's
    non-skew assumption); it sizes the processing chunks.
    """

    __slots__ = (
        "process",
        "side",
        "mode",
        "coefficient",
        "expected_producers",
        "local_total",
        "pending",
        "processed",
        "eos_received",
        "first_arrival",
    )

    def __init__(
        self,
        side: str,
        mode: str,
        coefficient: float,
        expected_producers: int,
        local_total: float,
    ):
        self.process: Optional["OperationProcess"] = None
        self.side = side
        self.mode = mode
        self.coefficient = coefficient
        self.expected_producers = expected_producers
        self.local_total = local_total
        self.pending: float = 0.0
        self.processed: float = 0.0
        self.eos_received: int = 0
        self.first_arrival: Optional[float] = None

    def inject(self, count: float, now: float) -> None:
        """Make a locally stored base fragment available (no stream)."""
        self.receive(count, 0, now)

    def receive(self, count: float, eos: int, now: float) -> None:
        """A batch (and/or end-of-stream markers) arrives."""
        if count < 0:
            raise ValueError("negative batch")
        if count > 0:
            self.pending += count
            if self.first_arrival is None:
                self.first_arrival = now
        self.eos_received += eos
        if self.eos_received > self.expected_producers and self.mode != "base":
            raise RuntimeError(
                f"port {self.side} received {self.eos_received} EOS markers "
                f"from {self.expected_producers} producers"
            )
        if self.process is not None:
            self.process.kick()

    @property
    def stream_closed(self) -> bool:
        """No further batches will arrive."""
        if self.mode == "base":
            return True  # injected in full at process start
        return self.eos_received >= self.expected_producers

    @property
    def drained(self) -> bool:
        """Stream closed and every delivered tuple processed."""
        return self.stream_closed and self.pending <= EPSILON

    def take(self, cap: float) -> float:
        """Remove up to ``cap`` pending tuples for processing."""
        chunk = min(self.pending, cap)
        self.pending -= chunk
        if self.pending < EPSILON:
            self.pending = 0.0
        return chunk

    def chunk_cap(self, batches: int) -> float:
        """Preferred CPU chunk size: the fragment split into ``batches``."""
        if self.local_total <= 0:
            return float("inf")
        return max(self.local_total / batches, EPSILON)


class ConsumerGroup:
    """The destination of a producer's output: ports of the consumer task.

    ``deliver`` splits a batch over the ports — evenly under the
    paper's non-skew assumption, or by explicit ``shares`` when the
    simulation models partitioning skew — and schedules a single
    arrival event per batch; ``deliver_eos`` propagates one producer's
    end-of-stream to every port.
    """

    __slots__ = ("ports", "latency", "shares", "network")

    def __init__(
        self,
        ports: List[Port],
        latency: float,
        shares: Optional[List[float]] = None,
        network: Optional[object] = None,
    ):
        if not ports:
            raise ValueError("consumer group needs at least one port")
        if shares is None:
            shares = [1.0 / len(ports)] * len(ports)
        if len(shares) != len(ports):
            raise ValueError("one share per port required")
        if abs(sum(shares) - 1.0) > 1e-9:
            raise ValueError("shares must sum to 1")
        self.ports = ports
        self.latency = latency
        self.shares = shares
        #: Optional shared NetworkLink; transfers queue through it.
        self.network = network

    def _arrival_time(self, clock: SimulationClock, count: float) -> float:
        done = clock.now if self.network is None else self.network.transfer(
            clock.now, count
        )
        latency = self.latency
        if self.network is not None and self.network.faults is not None:
            latency += self.network.faults.extra_delay(clock.now)
        return done + latency

    def deliver(self, clock: SimulationClock, count: float) -> None:
        """Send ``count`` tuples, split by share, arriving after the
        link transfer plus latency.

        During an injected loss window a pipelined data batch may be
        dropped at the send port (the tuples never reach any consumer
        and never occupy the link).  End-of-stream markers and stored
        results are never dropped — PRISMA's per-stream termination
        protocol and bulk transfers are reliable, which is what keeps a
        lossy run terminating instead of wedging a consumer port open.
        """
        if count <= 0:
            return
        if (
            self.network is not None
            and self.network.faults is not None
            and self.network.faults.drops(clock.now)
        ):
            return
        clock.at(self._arrival_time(clock, count), self._arrive, clock, count, 0)

    def deliver_eos(self, clock: SimulationClock) -> None:
        """Propagate one producer's end-of-stream to all ports.

        Routed through the link (zero payload) so it cannot overtake
        data batches still queued on a congested interconnect.
        """
        clock.at(self._arrival_time(clock, 0.0), self._arrive, clock, 0.0, 1)

    def deliver_store(self, clock: SimulationClock, total: float, producers: int) -> None:
        """Deliver a completed, stored result in one shot (materialized
        mode): every port gets its share plus all EOS markers."""
        clock.at(
            self._arrival_time(clock, total), self._arrive, clock, total, producers
        )

    def _arrive(self, clock: SimulationClock, count: float, eos: int) -> None:
        for port, share in zip(self.ports, self.shares):
            port.receive(count * share, eos, clock.now)
