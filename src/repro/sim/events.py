"""Discrete-event core.

A tiny, deterministic event loop: events are ``(time, seq, fn, args)``
entries in a heap; ``seq`` makes simultaneous events fire in schedule
order so runs are exactly reproducible.  Everything in the machine
simulation — scheduler initialization, batch deliveries, CPU chunk
completions — is an event here.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class SimulationClock:
    """The event queue and clock of one simulation run."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        self.events_dispatched = 0

    def at(self, time: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute ``time`` (≥ now)."""
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule into the past: {time} < {self.now}")
        heapq.heappush(self._queue, (time, self._seq, fn, args))
        self._seq += 1

    def after(self, delay: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self.at(self.now + delay, fn, *args)

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Dispatch events until the queue drains (or ``until``/limit).

        Returns the final clock value.  ``max_events`` is a runaway
        guard: a correct simulation of this model always terminates.
        """
        dispatched = 0
        while self._queue:
            time, _seq, fn, args = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self.now = time
            fn(*args)
            dispatched += 1
            if dispatched > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; "
                    "likely a wiring bug (cyclic deliveries)"
                )
        self.events_dispatched += dispatched
        if until is not None and self.now < until:
            # Advance to the horizon; any remaining events lie beyond it.
            self.now = until
        return self.now

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
