"""Discrete-event core.

A tiny, deterministic event loop: events are ``(time, seq, handle, fn,
args)`` entries in a heap; ``seq`` makes simultaneous events fire in
schedule order so runs are exactly reproducible.  Everything in the
machine simulation — scheduler initialization, batch deliveries, CPU
chunk completions — is an event here.

Two optional facilities support the request-lifecycle layer without
perturbing runs that do not use them:

* :meth:`SimulationClock.at_cancellable` returns an
  :class:`EventHandle`; a cancelled entry is *skipped* by :meth:`run`
  — it is not dispatched, not counted in ``events_dispatched``, and
  does not advance ``now``.  A deadline that never fires therefore
  leaves no trace at all (bit-for-bit identity with a deadline-free
  run).
* :attr:`SimulationClock.watchdog` (see :mod:`repro.sim.watchdog`)
  observes every dispatch and aborts no-advance livelocks with a
  diagnostic instead of spinning until the ``max_events`` guard.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .watchdog import Watchdog


class EventHandle:
    """Cancellation token for one scheduled event.

    The heap cannot remove arbitrary entries, so cancellation marks
    the entry instead (lazy deletion); :meth:`SimulationClock.run`
    drops marked entries without dispatching or counting them, and the
    owning clock keeps a dead-entry count so a queue dominated by
    cancelled work can be compacted in one pass.
    """

    __slots__ = ("cancelled", "_clock")

    def __init__(self, clock: Optional["SimulationClock"] = None) -> None:
        self.cancelled = False
        self._clock = clock

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            clock = self._clock
            if clock is not None:
                clock._dead += 1


class SimulationClock:
    """The event queue and clock of one simulation run."""

    __slots__ = ("now", "_queue", "_seq", "events_dispatched", "_dead", "watchdog")

    #: Compact the heap (drop cancelled entries, re-heapify) once at
    #: least this many dead entries make up over half the queue.
    COMPACT_THRESHOLD = 64

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Optional[EventHandle], Callable, tuple]] = []
        self._seq = 0
        self.events_dispatched = 0
        self._dead = 0  # cancelled entries still sitting in the heap
        #: Optional progress monitor (:class:`repro.sim.watchdog.Watchdog`);
        #: ``None`` keeps the dispatch loop on its bare fault-free path.
        self.watchdog: Optional["Watchdog"] = None

    def at(self, time: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute ``time`` (≥ now)."""
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule into the past: {time} < {self.now}")
        heapq.heappush(self._queue, (time, self._seq, None, fn, args))
        self._seq += 1

    def at_cancellable(self, time: float, fn: Callable, *args: Any) -> EventHandle:
        """Like :meth:`at`, but returns a handle that can cancel the
        event before it fires.  A cancelled event is skipped entirely:
        never dispatched, never counted, never advances the clock."""
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule into the past: {time} < {self.now}")
        handle = EventHandle(self)
        heapq.heappush(self._queue, (time, self._seq, handle, fn, args))
        self._seq += 1
        return handle

    def after(self, delay: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self.at(self.now + delay, fn, *args)

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Dispatch events until the queue drains (or ``until``/limit).

        Returns the final clock value.  ``max_events`` is a runaway
        guard: a correct simulation of this model always terminates.
        """
        queue = self._queue
        pop = heapq.heappop
        dispatched = 0
        if until is None and self.watchdog is None:
            # Fast path: no horizon check, no watchdog probe, and all
            # loop state in locals.  This is the loop every fault-free
            # owned run that falls off the analytic path spins in.
            while queue:
                entry = pop(queue)
                handle = entry[2]
                if handle is not None and handle.cancelled:
                    self._dead -= 1
                    continue  # skipped: no dispatch, no count, no advance
                self.now = entry[0]
                entry[3](*entry[4])
                dispatched += 1
                if dispatched > max_events:
                    raise RuntimeError(
                        f"simulation exceeded {max_events} events; "
                        "likely a wiring bug (cyclic deliveries)"
                    )
            self.events_dispatched += dispatched
            return self.now
        while queue:
            entry = queue[0]
            if until is not None and entry[0] > until:
                break
            pop(queue)
            time, _seq, handle, fn, args = entry
            if handle is not None and handle.cancelled:
                self._dead -= 1
                continue  # skipped: no dispatch, no count, no time advance
            self.now = time
            if self.watchdog is not None:
                self.watchdog.observe(time, fn, args)
            fn(*args)
            dispatched += 1
            if dispatched > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; "
                    "likely a wiring bug (cyclic deliveries)"
                )
            dead = self._dead
            if dead > self.COMPACT_THRESHOLD and dead * 2 > len(queue):
                self.compact()
                queue = self._queue
        self.events_dispatched += dispatched
        if until is not None and self.now < until:
            # Advance to the horizon; any remaining events lie beyond it.
            self.now = until
        return self.now

    def compact(self) -> int:
        """Drop cancelled entries and re-heapify; returns how many
        entries were reaped.  Pop order of live entries is unchanged
        (same entries, same sort keys), so compaction is invisible to
        the simulation."""
        queue = self._queue
        live = [e for e in queue if e[2] is None or not e[2].cancelled]
        reaped = len(queue) - len(live)
        if reaped:
            heapq.heapify(live)
            self._queue = live
        self._dead = 0
        return reaped

    def pending(self) -> int:
        """Number of events still queued (cancelled entries included
        until the dispatch loop reaps them)."""
        return len(self._queue)
