"""Operation-process state machines.

PRISMA/DB executes a query as a set of *operation processes*: one
relational operation on one processor, coordinating among themselves
(Section 2.2).  This module models one such process for each of the
paper's two join algorithms.  A process:

1. becomes *ready* when the (serial) scheduler has initialized it;
2. is *released* when its strategy barriers (``start_after``) resolve;
3. at start, pays the stream handshakes of its network input ports
   (consumer side: one per producer process) and, for a pipelined
   output, of its output streams (producer side: one per consumer);
4. consumes operand tuples in CPU chunks, paying §4.3 unit costs, and
   emits result tuples (pipelined: forwarded per chunk; materialized:
   accumulated for delivery at task completion);
5. when both operands are drained, pays the send-setup handshakes of a
   materialized output and reports completion.

The two subclasses encode exactly what distinguishes the algorithms:
the simple hash-join refuses to touch probe tuples before its build
operand is complete, while the pipelining hash-join consumes both
sides symmetrically and produces matches proportional to the product
of arrived fractions — the source of the bushy-pipeline ramp-up delay
of Section 2.3.3.

These state machines are the *reference* semantics.  Owned,
fault-free, deadline-free runs are normally executed by the analytic
engine in :mod:`repro.sim.turbo`, which must reproduce every
observable of this module bit for bit (chunk boundaries, batch
emission times, tie-breaks between arrivals and completions, interval
coalescing).  Any behavioural change here therefore needs a matching
change there — the golden-identity and turbo-equivalence tests pin
the pairing.  Turbo additionally *caches* replayable timing profiles
keyed on the inputs these state machines read (algorithm, work scale,
port modes and coefficients, chunk policy), so any change to the
chunking or emission policy here must also bump
:data:`repro.sim.turbo.STRUCTURE_VERSION` — otherwise a stale cached
profile from before the change could replay the old semantics.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from .events import SimulationClock
from .machine import MachineConfig, Processor
from .streams import ConsumerGroup, EPSILON, Port


class OperationProcess:
    """Base class: lifecycle, CPU chunking, and output bookkeeping."""

    #: Subclasses set this to the paper's algorithm name.
    algorithm = "?"

    def __init__(
        self,
        *,
        name: str,
        processor: Processor,
        clock: SimulationClock,
        config: MachineConfig,
        left: Port,
        right: Port,
        result_local: float,
        result_coeff: float,
        output: Optional[ConsumerGroup],
        output_pipelined: bool,
        on_done: Callable[["OperationProcess"], None],
        work_scale: float = 1.0,
    ):
        self.name = name
        self.processor = processor
        self.clock = clock
        self.config = config
        self.left = left
        self.right = right
        left.process = self
        right.process = self
        self.result_local = result_local
        self.result_coeff = result_coeff
        self.output = output
        self.output_pipelined = output_pipelined
        self.on_done = on_done
        # Scales tuple-work durations so a join with an explicit
        # ``work`` override (the Figure 2 example tree) spends exactly
        # that much relative CPU time, preserving the flow shape.
        self.work_scale = work_scale

        self.ready = False
        self.released = False
        self.started = False
        self.cpu_busy = False
        self.closing = False
        self.done = False
        self.aborted = False
        self.done_time: Optional[float] = None
        self.start_time: Optional[float] = None
        self.out_total = 0.0

    # -- lifecycle ------------------------------------------------------

    def abort(self) -> None:
        """Crash-stop this process: every already-queued event for it
        (chunk completions, handshake completions, batch arrivals that
        would kick it) becomes a no-op, so the clock drains cleanly
        instead of deadlocking while the process never reports done."""
        if not self.done:
            self.aborted = True

    def init_ready(self) -> None:
        """The scheduler finished initializing this process."""
        if self.aborted:
            return
        self.ready = True
        self._maybe_start()

    def release(self) -> None:
        """All strategy barriers of this process's task completed."""
        if self.aborted:
            return
        self.released = True
        self._maybe_start()

    def _maybe_start(self) -> None:
        if self.started or not (self.ready and self.released):
            return
        self.started = True
        self.start_time = self.clock.now
        # Hold the CPU through startup: injecting a base port fires
        # kick() re-entrantly, and work must not begin before both
        # ports are populated and the handshakes are paid.
        self.cpu_busy = True
        for port in (self.left, self.right):
            if port.mode == "base" and port.local_total > 0:
                port.inject(port.local_total, self.clock.now)
        handshakes = self._startup_handshakes()
        duration = handshakes * self.config.handshake
        if duration > 0:
            end = self.processor.acquire(self.clock.now, duration, f"{self.name}:hs")
            self.clock.at(end, self._handshake_done)
        else:
            self.cpu_busy = False
            self.kick()

    def _startup_handshakes(self) -> int:
        """Stream handshakes paid at start: consumer side of each
        network input port, plus producer side of a pipelined output."""
        count = 0
        for port in (self.left, self.right):
            if port.mode != "base":
                count += port.expected_producers
        if self.output is not None and self.output_pipelined:
            count += len(self.output.ports)
        return count

    def _handshake_done(self) -> None:
        if self.aborted:
            return
        self.cpu_busy = False
        self.kick()

    # -- work loop ------------------------------------------------------

    def kick(self) -> None:
        """Try to make progress; called on every arrival and completion."""
        if not self.started or self.cpu_busy or self.done or self.aborted:
            return
        selection = self._select_chunk()
        if selection is None:
            self._maybe_finish()
            return
        port, chunk = selection
        out = self._output_for_chunk(port, chunk)
        duration = (
            (chunk * port.coefficient + out * self.result_coeff)
            * self.config.tuple_unit
            * self.work_scale
        )
        self.cpu_busy = True
        end = self.processor.acquire(self.clock.now, duration, self.name)
        self.clock.at(end, self._chunk_done, port, chunk, out)

    def _chunk_done(self, port: Port, chunk: float, out: float) -> None:
        if self.aborted:
            return
        port.processed += chunk
        self.cpu_busy = False
        if out > 0:
            self.out_total += out
            if self.output is not None and self.output_pipelined:
                self.output.deliver(self.clock, out)
        self.kick()

    # -- completion -------------------------------------------------------

    def _maybe_finish(self) -> None:
        if self.done or self.cpu_busy:
            return
        if not (self.left.drained and self.right.drained):
            return
        if not self.closing:
            self.closing = True
            # Send setup for a stored (materialized) output: the
            # producer must open its n×m streams before it can ship the
            # stored fragments; paid before completion so a dependent
            # task's barrier sees it.
            if self.output is not None and not self.output_pipelined:
                duration = len(self.output.ports) * self.config.handshake
                if duration > 0:
                    self.cpu_busy = True
                    end = self.processor.acquire(
                        self.clock.now, duration, f"{self.name}:hs"
                    )
                    self.clock.at(end, self._handshake_done)
                    return
        self.done = True
        self.done_time = self.clock.now
        if self.output is not None and self.output_pipelined:
            self.output.deliver_eos(self.clock)
        self.on_done(self)

    # -- algorithm hooks ---------------------------------------------------

    def _select_chunk(self) -> Optional[Tuple[Port, float]]:
        """Pick the next (port, tuple count) to process, or ``None``."""
        raise NotImplementedError

    def _output_for_chunk(self, port: Port, chunk: float) -> float:
        """Result tuples produced by processing ``chunk`` from ``port``."""
        raise NotImplementedError


class SimpleHashJoinProcess(OperationProcess):
    """Two-phase build/probe join: probing blocked until build drained."""

    algorithm = "simple"

    def __init__(self, *, build_side: str = "left", **kwargs):
        super().__init__(**kwargs)
        if build_side not in ("left", "right"):
            raise ValueError("build_side must be 'left' or 'right'")
        self.build = self.left if build_side == "left" else self.right
        self.probe = self.right if build_side == "left" else self.left

    def _select_chunk(self) -> Optional[Tuple[Port, float]]:
        if not self.build.drained:
            chunk = self.build.take(self.build.chunk_cap(self.config.batches))
            return (self.build, chunk) if chunk > 0 else None
        chunk = self.probe.take(self.probe.chunk_cap(self.config.batches))
        return (self.probe, chunk) if chunk > 0 else None

    def _output_for_chunk(self, port: Port, chunk: float) -> float:
        if port is self.build or self.probe.local_total <= 0:
            return 0.0
        # Probing a complete hash table: results proportional to probe
        # progress (exactly the simple hash-join's output timing).
        return chunk * self.result_local / self.probe.local_total


class PipeliningHashJoinProcess(OperationProcess):
    """Symmetric one-phase join: consumes both sides as they arrive."""

    algorithm = "pipelining"

    def _select_chunk(self) -> Optional[Tuple[Port, float]]:
        candidates = [p for p in (self.left, self.right) if p.pending > EPSILON]
        if not candidates:
            return None
        # Favour the operand that is furthest behind, mimicking the
        # symmetric algorithm's fair consumption of both inputs.
        def progress(port: Port) -> float:
            if port.local_total <= 0:
                return 1.0
            return port.processed / port.local_total

        port = min(candidates, key=progress)
        return (port, port.take(port.chunk_cap(self.config.batches)))

    def _output_for_chunk(self, port: Port, chunk: float) -> float:
        other = self.right if port is self.left else self.left
        if self.left.local_total <= 0 or self.right.local_total <= 0:
            return 0.0
        # A new tuple matches the part of the other operand's hash
        # table built so far; every match is produced exactly once, by
        # whichever side is processed later.  Summed over the run this
        # yields exactly result_local tuples.
        density = self.result_local / (self.left.local_total * self.right.local_total)
        return chunk * other.processed * density
