"""Partitioning skew (relaxing the paper's non-skew assumption).

The paper's idealized load balancing argument for SP holds "assuming
non-skewed data partitioning" (Section 3.5), and the experiments took
care to generate uncorrelated keys so hash partitioning stays uniform
(Section 4.1).  This module lets the simulation relax that assumption:
fragment shares follow a Zipf-like profile parameterized by ``theta``
(0 = uniform, larger = more skewed), so the ablation benches can show
how much of each strategy's behaviour depends on uniformity.
"""

from __future__ import annotations

from typing import List


def zipf_shares(fragments: int, theta: float) -> List[float]:
    """Fragment shares ∝ 1/rank^theta, normalized to sum to 1.

    ``theta = 0`` gives the uniform split the paper assumes; commonly
    quoted "Zipfian" database skew is around ``theta = 1``.
    """
    if fragments <= 0:
        raise ValueError("need at least one fragment")
    if theta < 0:
        raise ValueError("theta must be non-negative")
    raw = [1.0 / (rank ** theta) for rank in range(1, fragments + 1)]
    total = sum(raw)
    return [value / total for value in raw]


def skew_factor(shares: List[float]) -> float:
    """Max share over mean share — 1.0 means perfectly uniform.

    Matches :func:`repro.relational.partition.skew` so simulated and
    measured skew are on the same scale.
    """
    if not shares:
        return 1.0
    mean = sum(shares) / len(shares)
    if mean == 0:
        return 1.0
    return max(shares) / mean
