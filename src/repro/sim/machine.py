"""The simulated shared-nothing machine.

PRISMA/DB ran on 100 nodes of one 68020 with 16 MB of memory, a disk
and a communication processor.  :class:`MachineConfig` captures the
behaviourally relevant constants of such a node; :class:`Processor`
models one node's CPU as a serially used resource with a utilization
trace (the raw material of the paper's processor-utilization diagrams).

The cost *structure* — what is charged where — is fixed by the model
(see :mod:`repro.sim.process`); only these constants scale it.  The
defaults of :meth:`MachineConfig.paper` were fitted once against the
ten Figure-14 anchor times (and all Section 4.4 qualitative claims) by
``benchmarks/calibrate.py`` and then frozen; the qualitative results
are insensitive to the exact values.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class MachineConfig:
    """Constants of the simulated machine.

    ``tuple_unit``
        Seconds per tuple-action unit — the §4.3 cost unit (one hash,
        probe, network send/receive, or tuple construction).
    ``process_startup``
        Scheduler time to claim and initialize one operation process
        with its XRA operation.  Initialization is serial at the
        scheduler, so a strategy using many processes (SP: #joins ×
        #processors) pays proportionally (§3.5 "startup").
    ``handshake``
        CPU time per tuple-stream handshake endpoint.  A redistribution
        from n producer processes to m consumer processes opens n×m
        streams (§4.3): every consumer shakes hands with its n
        producers and every producer with its m consumers (§3.5
        "coordination").
    ``network_latency``
        Transfer latency per batch between processors.
    ``batches``
        Granularity of the fluid tuple flow: each operand fragment is
        processed in at most this many CPU chunks, and pipelined
        output is forwarded per chunk.  More batches = finer pipeline
        resolution and slower simulation; results converge quickly.
    """

    tuple_unit: float = 0.001
    process_startup: float = 0.008
    handshake: float = 0.016
    network_latency: float = 0.6
    batches: int = 32
    #: Shared-interconnect capacity in tuples/second; ``inf`` (the
    #: default) reproduces the paper's implicit assumption that the
    #: network is never the bottleneck.  Finite values serialize batch
    #: transfers through one link (ablation A8).
    network_bandwidth: float = float("inf")

    @classmethod
    def paper(cls) -> "MachineConfig":
        """The calibrated PRISMA/DB-like configuration used by the
        figure benchmarks (see ``benchmarks/calibrate.py``)."""
        return _PAPER_CONFIG

    @classmethod
    def ideal(cls, batches: int = 64) -> "MachineConfig":
        """Zero-overhead machine for the idealized utilization diagrams
        of Figures 3/4/6/7: one second per unit of work, no startup,
        no handshakes, no latency."""
        return cls(
            tuple_unit=1.0,
            process_startup=0.0,
            handshake=0.0,
            network_latency=0.0,
            batches=batches,
        )

    def scaled(self, **overrides) -> "MachineConfig":
        """A copy with some constants replaced (ablation helper)."""
        return replace(self, **overrides)

    def __post_init__(self) -> None:
        if self.tuple_unit < 0 or self.process_startup < 0:
            raise ValueError("machine constants must be non-negative")
        if self.handshake < 0 or self.network_latency < 0:
            raise ValueError("machine constants must be non-negative")
        if self.batches < 1:
            raise ValueError("need at least one batch")
        if self.network_bandwidth <= 0:
            raise ValueError("network bandwidth must be positive")


class NetworkLink:
    """A shared interconnect, serially acquired by batch transfers.

    With infinite bandwidth every transfer takes zero link time and the
    link never queues — the paper's operating regime.  With finite
    bandwidth, concurrent transfers queue behind each other, which is
    what lets the A8 ablation find the point where the network becomes
    the bottleneck.

    ``faults`` is an optional perturbation state installed by
    :class:`repro.faults.FaultInjector` (duck-typed: ``extra_delay(now)``
    and ``drops(now)``); ``None`` — the default — leaves every delivery
    on the exact fault-free code path.
    """

    __slots__ = ("bandwidth", "busy_until", "transferred", "faults")

    def __init__(self, bandwidth: float):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth
        self.busy_until = 0.0
        self.transferred = 0.0
        self.faults = None

    def transfer(self, now: float, tuples: float) -> float:
        """Occupy the link for ``tuples``; returns transfer-done time."""
        if tuples < 0:
            raise ValueError("negative transfer")
        self.transferred += tuples
        if self.bandwidth == float("inf"):
            return now
        start = max(now, self.busy_until)
        end = start + tuples / self.bandwidth
        self.busy_until = end
        return end


#: Calibrated against Figure 14 by benchmarks/calibrate.py; frozen here.
_PAPER_CONFIG = MachineConfig(
    tuple_unit=0.001,
    process_startup=0.008,
    handshake=0.016,
    network_latency=0.6,
    batches=32,
)


class Processor:
    """One node's CPU: serially acquired, with a labelled busy trace.

    ``stalls`` — installed by :class:`repro.faults.FaultInjector` — is a
    list of ``(start, end, factor)`` straggler windows: a chunk whose
    service *starts* inside a window takes ``factor`` times as long
    (chunk-granular slowdown; windows are sampled at service start, so
    the perturbation is deterministic and replayable).  ``failed_at``
    records the first crash-stop instant for diagnostics; availability
    bookkeeping lives with the owner of the processor pool.
    """

    __slots__ = ("ident", "busy_until", "intervals", "stalls", "failed_at")

    def __init__(self, ident: int):
        self.ident = ident
        self.busy_until: float = 0.0
        #: Completed busy intervals as (start, end, label).
        self.intervals: List[Tuple[float, float, str]] = []
        #: Straggler windows (start, end, factor); empty = fault-free.
        self.stalls: List[Tuple[float, float, float]] = []
        self.failed_at: Optional[float] = None

    def stall_factor(self, time: float) -> float:
        """Service-time multiplier in effect at ``time`` (1.0 outside
        every straggler window; overlapping windows compound)."""
        factor = 1.0
        for start, end, window_factor in self.stalls:
            if start <= time < end:
                factor *= window_factor
        return factor

    def acquire(self, now: float, duration: float, label: str) -> float:
        """Occupy the CPU for ``duration`` starting no earlier than
        ``now``; returns the completion time.

        Work requested while the CPU is busy queues behind it (the
        operation process model never interleaves chunks).  Adjacent
        intervals with the same label are merged to keep traces small.
        """
        if duration < 0:
            raise ValueError("negative duration")
        start = max(now, self.busy_until)
        if self.stalls and duration > 0:
            duration *= self.stall_factor(start)
        end = start + duration
        self.busy_until = end
        if duration > 0:
            if (
                self.intervals
                and self.intervals[-1][2] == label
                and abs(self.intervals[-1][1] - start) < 1e-12
            ):
                prev_start, _prev_end, _ = self.intervals[-1]
                self.intervals[-1] = (prev_start, end, label)
            else:
                self.intervals.append((start, end, label))
        return end

    def busy_time(self) -> float:
        """Total CPU-busy seconds."""
        return sum(end - start for start, end, _ in self.intervals)

    def busy_time_for(self, label: str) -> float:
        """CPU-busy seconds attributed to ``label``."""
        return sum(end - start for start, end, lbl in self.intervals if lbl == label)

    def busy_time_between(self, start: float, end: float) -> float:
        """CPU-busy seconds within the window ``[start, end]``.

        The utilization measure of a shared machine hosting many
        queries: clip every busy interval to the window and sum.
        """
        if end < start:
            raise ValueError("window end before start")
        return sum(
            max(0.0, min(e, end) - max(s, start)) for s, e, _ in self.intervals
        )
