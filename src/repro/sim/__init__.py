"""Discrete-event simulation of the PRISMA/DB shared-nothing machine."""

from .events import SimulationClock
from .machine import MachineConfig, Processor
from .metrics import SimulationResult, TaskTiming
from .process import (
    OperationProcess,
    PipeliningHashJoinProcess,
    SimpleHashJoinProcess,
)
from .run import ScheduleSimulation, simulate
from .streams import ConsumerGroup, Port

__all__ = [
    "ConsumerGroup",
    "MachineConfig",
    "OperationProcess",
    "PipeliningHashJoinProcess",
    "Port",
    "Processor",
    "ScheduleSimulation",
    "SimpleHashJoinProcess",
    "SimulationClock",
    "SimulationResult",
    "TaskTiming",
    "simulate",
]
