"""Discrete-event simulation of the PRISMA/DB shared-nothing machine."""

from .events import EventHandle, SimulationClock
from .machine import MachineConfig, Processor
from .metrics import SimulationResult, TaskTiming
from .process import (
    OperationProcess,
    PipeliningHashJoinProcess,
    SimpleHashJoinProcess,
)
from .machine import NetworkLink
from .run import QueryAbortedError, ScheduleSimulation, simulate
from .streams import ConsumerGroup, Port
from .watchdog import Watchdog, WatchdogError

__all__ = [
    "ConsumerGroup",
    "EventHandle",
    "MachineConfig",
    "NetworkLink",
    "OperationProcess",
    "QueryAbortedError",
    "PipeliningHashJoinProcess",
    "Port",
    "Processor",
    "ScheduleSimulation",
    "SimpleHashJoinProcess",
    "SimulationClock",
    "SimulationResult",
    "TaskTiming",
    "Watchdog",
    "WatchdogError",
    "simulate",
]
