"""Discrete-event simulation of the PRISMA/DB shared-nothing machine."""

from .events import SimulationClock
from .machine import MachineConfig, Processor
from .metrics import SimulationResult, TaskTiming
from .process import (
    OperationProcess,
    PipeliningHashJoinProcess,
    SimpleHashJoinProcess,
)
from .machine import NetworkLink
from .run import QueryAbortedError, ScheduleSimulation, simulate
from .streams import ConsumerGroup, Port

__all__ = [
    "ConsumerGroup",
    "MachineConfig",
    "NetworkLink",
    "OperationProcess",
    "QueryAbortedError",
    "PipeliningHashJoinProcess",
    "Port",
    "Processor",
    "ScheduleSimulation",
    "SimpleHashJoinProcess",
    "SimulationClock",
    "SimulationResult",
    "TaskTiming",
    "simulate",
]
