"""Simulation results and derived metrics.

Response time is measured exactly as the paper measures it: "the
elapsed time from the moment the scheduler starts scheduling the query
until the last operation process finishes" (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .machine import MachineConfig


@dataclass(frozen=True)
class TaskTiming:
    """Observed timeline of one join task."""

    index: int
    label: str
    released: float        # all barriers resolved
    first_work: Optional[float]   # first CPU second spent (None: no work)
    completion: float      # last of its operation processes finished


@dataclass
class SimulationResult:
    """Everything one simulated execution produced."""

    strategy: str
    processors: int
    response_time: float
    config: MachineConfig
    task_timings: List[TaskTiming]
    #: processor id → completed busy intervals (start, end, label).
    intervals: Dict[int, List[Tuple[float, float, str]]]
    operation_processes: int
    stream_count: int
    events: int
    #: Total result tuples of the root join (fluid count).
    result_tuples: float

    def busy_time(self) -> float:
        """Total CPU-busy seconds over all processors."""
        return sum(
            end - start
            for spans in self.intervals.values()
            for start, end, _ in spans
        )

    def busy_by_kind(self) -> Dict[str, float]:
        """CPU seconds split into 'work' and 'handshake' categories."""
        out = {"work": 0.0, "handshake": 0.0}
        for spans in self.intervals.values():
            for start, end, label in spans:
                kind = "handshake" if label.endswith(":hs") else "work"
                out[kind] += end - start
        return out

    def utilization(self) -> float:
        """Mean fraction of the response time processors were busy."""
        if self.response_time <= 0 or self.processors == 0:
            return 0.0
        return self.busy_time() / (self.processors * self.response_time)

    def startup_time(self) -> float:
        """Serial scheduler initialization span for this plan."""
        return self.operation_processes * self.config.process_startup

    def task_completion(self, index: int) -> float:
        """Completion time of task ``index``."""
        return self.task_timings[index].completion

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"{self.strategy}@{self.processors}p: "
            f"{self.response_time:.2f}s response, "
            f"{self.utilization():.0%} utilization, "
            f"{self.operation_processes} processes, "
            f"{self.stream_count} streams"
        )
