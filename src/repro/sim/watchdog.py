"""Simulation progress watchdog.

A discrete-event run can only hang in one way: events keep firing at
the same simulated instant without the clock ever advancing (the PR 2
reviewer livelock — a zero-think-time closed loop resubmitting at the
exact instant of its rejection).  The generic ``max_events`` guard in
:meth:`~repro.sim.events.SimulationClock.run` does eventually trip,
but only after tens of millions of wasted dispatches and with no clue
about *what* was spinning.

A :class:`Watchdog` attaches to a clock
(``clock.watchdog = Watchdog(...)``), observes every dispatch, and
raises :class:`WatchdogError` as soon as more than
``max_events_per_instant`` events fire without the clock advancing —
carrying a diagnostic dump of the most recent events so the offending
callback loop is visible in the traceback instead of requiring a
debugger on a wedged process.

The watchdog is pure observation: it never changes event order,
timing, or counts, so an armed watchdog that does not trip is
invisible to results (the workload engine arms one by default).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Tuple

#: Default trip threshold.  Legitimate workloads dispatch at most a few
#: thousand events at one instant (bounded by machine size × concurrent
#: queries); a livelock blows past this within milliseconds of wall
#: time instead of spinning toward the 50M-event runaway guard.
DEFAULT_MAX_EVENTS_PER_INSTANT = 100_000

#: How many recent events the diagnostic dump shows.
DEFAULT_TRACE_EVENTS = 20


class WatchdogError(RuntimeError):
    """The simulation stopped making progress (no-advance livelock)."""

    def __init__(self, message: str, at: float, diagnostic: str):
        super().__init__(f"{message}\n{diagnostic}")
        self.at = at
        self.diagnostic = diagnostic


def _describe(fn: Callable, args: tuple) -> str:
    """One compact line for one event: callback name plus a bounded
    argument summary (reprs can be huge for simulator internals)."""
    name = getattr(fn, "__qualname__", None) or getattr(
        fn, "__name__", repr(fn)
    )
    parts = []
    for arg in args[:3]:
        text = type(arg).__name__
        for attr in ("index", "name", "ident"):
            value = getattr(arg, attr, None)
            if value is not None and not callable(value):
                text = f"{text}({attr}={value})"
                break
        parts.append(text)
    if len(args) > 3:
        parts.append("...")
    return f"{name}({', '.join(parts)})"


class Watchdog:
    """No-advance livelock detector for one :class:`SimulationClock`.

    ``max_events_per_instant``
        Trip threshold: the number of consecutive events dispatched at
        one simulated time before the run is declared livelocked.
    ``trace_events``
        Ring-buffer size of the diagnostic event dump.
    """

    def __init__(
        self,
        max_events_per_instant: int = DEFAULT_MAX_EVENTS_PER_INSTANT,
        trace_events: int = DEFAULT_TRACE_EVENTS,
    ):
        if max_events_per_instant < 1:
            raise ValueError("max_events_per_instant must be positive")
        if trace_events < 1:
            raise ValueError("trace_events must be positive")
        self.max_events_per_instant = max_events_per_instant
        self._instant: float = float("-inf")
        self._count_at_instant = 0
        self._recent: Deque[Tuple[float, str]] = deque(maxlen=trace_events)
        self.tripped = False

    # -- the clock's per-dispatch hook ------------------------------------

    def observe(self, time: float, fn: Callable, args: tuple) -> None:
        """Called by the clock before dispatching each event."""
        if time != self._instant:
            self._instant = time
            self._count_at_instant = 1
        else:
            self._count_at_instant += 1
        self._recent.append((time, _describe(fn, args)))
        if self._count_at_instant > self.max_events_per_instant:
            self.tripped = True
            raise WatchdogError(
                f"simulation livelock: {self._count_at_instant} events "
                f"dispatched at simulated t={time:.6f}s without the clock "
                "advancing (a callback keeps rescheduling itself at the "
                "current instant)",
                at=time,
                diagnostic=self.dump(),
            )

    # -- diagnostics ------------------------------------------------------

    def dump(self) -> str:
        """The recent-event trace as a readable diagnostic block."""
        lines: List[str] = [
            f"last {len(self._recent)} events before the watchdog tripped:"
        ]
        for time, description in self._recent:
            lines.append(f"  t={time:.6f}s  {description}")
        return "\n".join(lines)


__all__ = [
    "DEFAULT_MAX_EVENTS_PER_INSTANT",
    "DEFAULT_TRACE_EVENTS",
    "Watchdog",
    "WatchdogError",
]
