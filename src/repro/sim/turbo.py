"""Analytic fast path for owned, unperturbed simulations.

The classic :class:`~repro.sim.events.SimulationClock` dispatches every
batch arrival, CPU-chunk completion and handshake as a heap event —
roughly 3 µs of interpreter work per event.  For the paper's own
operating regime (one query, dedicated machine, no faults, no
deadline, infinite interconnect bandwidth) the dataflow graph is
*feed-forward*: a consumer never influences its producers, concurrent
tasks occupy disjoint processors, and tasks that do share processors
are barrier-ordered.  Under those conditions the global event heap is
pure overhead — every process can be simulated to completion with a
tight inline loop, in topological task order, replaying the exact
floating-point operations (and the exact logical event count) of the
event-driven run.

:func:`execute` checks eligibility and either simulates the whole run
analytically (returning ``True``) or declines (returning ``False``) so
the caller falls back to the event loop.  Ineligible runs — hosted
(workload) queries, fault injection, deadlines, finite bandwidth,
watchdogs, skip-replay — keep the classic path, whose behaviour this
module must match bit for bit.  The golden-identity fixtures under
``tests/golden/`` and the deadline/fault byte-identity tests pin that
equivalence continuously.

Correctness notes (why this reproduces the event loop exactly):

* **Float identity** — every arithmetic expression below mirrors the
  operand order of :mod:`repro.sim.process` / :mod:`repro.sim.streams`
  (e.g. ``(chunk * coeff + out * rc) * tuple_unit * work_scale``); no
  closed forms are used, because sequential float accumulation does
  not commute with algebraic simplification.
* **Event identity** — ``events_dispatched`` is reconstructed by
  logical accounting: one init per process, one release per
  unbarriered task, one handshake completion per nonzero handshake,
  one completion per CPU chunk, one arrival per emitted batch /
  end-of-stream / stored result.
* **Tie-breaking** — simultaneous events are ordered by the heap's
  push sequence in the classic run.  The loops replicate the cases
  that occur in practice: an arrival beats a completion at the same
  instant iff it was pushed earlier (its emit time precedes the
  chunk's start), lock-stepped sibling processes emit in process
  order, and build-time events (init/release) precede same-time
  arrivals.  Configurations where ties are pervasive (zero startup,
  latency or handshake cost — e.g. ``MachineConfig.ideal()``) are
  declared ineligible and stay on the event loop.

Turbo v2 adds three layers on top of the v1 interpreter:

* **Drain-structure (profile) cache** — the analytic run is a pure
  function of a finite input signature: the schedule's task graph and
  processor assignments, the realized fragment shares, every
  per-process coefficient/total/cap the chunk loops read, the machine
  constants, ``start_at`` and the trace-label prefix.  :func:`execute`
  keys a bounded cache on that exact signature; a hit replays the
  recorded final state (busy intervals, port/process/task finals,
  logical event count, bytes transferred) instead of re-interpreting
  the chunk interleaving.  Equal key ⇒ equal floats by construction,
  so replay is bit-identical — this is what closes the FP gap, whose
  trickle interleaving dominates interpreter time.
* **Cross-query structure memo** — the topological order and the
  disjointness/graph validation of :func:`_topo_order` depend only on
  the schedule's structure, not on costs or times; workloads rerunning
  one spec thousands of times share a single memo entry.
* **Hosted epochs** — :func:`execute_hosted` runs a *hosted* (shared
  clock, processor pool, ``on_complete``) simulation analytically when
  its processors are idle and nothing else is scheduled before its
  completion.  All arithmetic uses absolute times with ``start_at``
  baked in — never rebased offsets, because float addition does not
  associate — so the result is bit-identical to the classic hosted
  run.  If the computed completion would overlap the caller-supplied
  event barrier, every mutation is rolled back and the classic loop
  proceeds as if turbo had never looked.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .streams import EPSILON

__all__ = [
    "execute",
    "execute_hosted",
    "clear_cache",
    "cache_stats",
    "STRUCTURE_VERSION",
]

_INF = float("inf")

#: Bump when the chunk-selection policy in :mod:`repro.sim.process`
#: (or this module's replication of it) changes behaviourally: cached
#: drain structures record the *outcome* of that policy, so a stale
#: profile from an older policy must never be replayed.
STRUCTURE_VERSION = 2

#: Bounded profile cache: full input signature -> recorded final state.
_PROFILE_CACHE: Dict[tuple, tuple] = {}
_PROFILE_CACHE_MAX = 128

#: Structure memo: pure schedule-shape signature -> topo order or None.
_STRUCTURE_CACHE: Dict[tuple, Optional[List[int]]] = {}
_STRUCTURE_CACHE_MAX = 256

_STATS = {
    "profile_hits": 0,
    "profile_misses": 0,
    "structure_hits": 0,
    "structure_misses": 0,
    "hosted_runs": 0,
    "hosted_rollbacks": 0,
}


def clear_cache() -> None:
    """Drop every cached profile and structure memo (tests, and any
    caller that mutated process-model semantics at runtime)."""
    _PROFILE_CACHE.clear()
    _STRUCTURE_CACHE.clear()
    for key in _STATS:
        _STATS[key] = 0


def cache_stats() -> Dict[str, int]:
    """Counters since the last :func:`clear_cache` (copies; mutating
    the returned dict changes nothing)."""
    stats = dict(_STATS)
    stats["profile_entries"] = len(_PROFILE_CACHE)
    stats["structure_entries"] = len(_STRUCTURE_CACHE)
    return stats

#: Sort rank placing a stored-result delivery after any (impossible)
#: same-time data batch of the same producer process.
_STORE_RANK = 1 << 30


def _topo_order(sim) -> Optional[List[int]]:
    """Order tasks so every barrier predecessor and dataflow source
    precedes its dependents, and verify that tasks *not* ordered by
    barriers occupy disjoint processors — otherwise a per-task
    sequential simulation cannot reproduce the interleaved timeline.

    Returns runtime positions in simulation order, or ``None`` if the
    schedule's structure is unsupported.
    """
    runtimes = sim.runtimes
    n = len(runtimes)
    pos_of = {rt.task.index: i for i, rt in enumerate(runtimes)}
    barrier_preds: List[List[int]] = [[] for _ in range(n)]
    all_preds: List[List[int]] = [[] for _ in range(n)]
    procsets: List[frozenset] = []
    for i, rt in enumerate(runtimes):
        task = rt.task
        if not rt.processes:
            return None
        if len(set(task.processors)) != len(task.processors):
            return None
        for dep in task.start_after:
            j = pos_of.get(dep)
            if j is None or j == i:
                return None
            barrier_preds[i].append(j)
            all_preds[i].append(j)
        for spec in (task.left_input, task.right_input):
            if not spec.is_base:
                j = pos_of.get(spec.source)
                if j is None or j == i:
                    return None
                all_preds[i].append(j)
        procsets.append(frozenset(task.processors))

    # Kahn's algorithm, stable by original position (determinism only;
    # independent tasks commute — they share no processors).
    remaining = [len(set(preds)) for preds in all_preds]
    dependents: List[List[int]] = [[] for _ in range(n)]
    for i in range(n):
        for j in set(all_preds[i]):
            dependents[j].append(i)
    order = [i for i in range(n) if remaining[i] == 0]
    head = 0
    while head < len(order):
        for k in dependents[order[head]]:
            remaining[k] -= 1
            if remaining[k] == 0:
                order.append(k)
        head += 1
    if len(order) != n:
        return None  # cycle: broken schedule, let the event loop report

    # Happens-before closure over barriers only; pipelined dataflow
    # runs concurrently, so it creates no ordering for this check.
    ancestors = [0] * n
    for i in order:
        mask = 0
        for j in barrier_preds[i]:
            mask |= (1 << j) | ancestors[j]
        ancestors[i] = mask
    for a in range(n):
        mask_a = ancestors[a]
        mine = procsets[a]
        for b in range(a):
            if not (mask_a >> b) & 1 and not (ancestors[b] >> a) & 1:
                if mine & procsets[b]:
                    return None
    return order


def _structure_key(sim) -> tuple:
    """The pure schedule-shape signature :func:`_topo_order` depends
    on: task graph, processor assignments, input wiring, and process
    counts — no costs, no times.  Identical across every rerun of one
    spec, which is what makes the memo a cross-query win."""
    parts = []
    for rt in sim.runtimes:
        task = rt.task
        parts.append(
            (
                task.index,
                tuple(task.processors),
                tuple(task.start_after),
                (task.left_input.is_base, task.left_input.source),
                (task.right_input.is_base, task.right_input.source),
                len(rt.processes),
            )
        )
    return tuple(parts)


def _topo_memo(sim) -> Optional[List[int]]:
    """Memoized :func:`_topo_order` (structure-keyed; see above)."""
    key = _structure_key(sim)
    try:
        order = _STRUCTURE_CACHE[key]
        _STATS["structure_hits"] += 1
        return order
    except KeyError:
        pass
    _STATS["structure_misses"] += 1
    order = _topo_order(sim)
    if len(_STRUCTURE_CACHE) >= _STRUCTURE_CACHE_MAX:
        _STRUCTURE_CACHE.pop(next(iter(_STRUCTURE_CACHE)))
    _STRUCTURE_CACHE[key] = order
    return order


def _common_eligible(sim, *, hosted: bool) -> Optional[List[int]]:
    """Checks shared by owned and hosted eligibility; returns the topo
    order or ``None``.  Clock-ownership and time-origin checks live
    with the callers."""
    if sim.deadline is not None or sim.skip_tasks:
        return None
    if getattr(sim, "perturbed", False):
        return None
    # Events scheduled on the clock after _build's own would interleave
    # with the analytic run — decline.
    if sim.clock._seq != getattr(sim, "_build_seq", -1):
        return None
    network = sim.network
    if network.faults is not None or network.bandwidth != _INF:
        return None
    config = sim.config
    # Zero-overhead configs make simultaneous events pervasive; the
    # tie-break replication below only covers staggered schedules.
    if (
        config.process_startup <= 0
        or config.network_latency <= 0
        or config.handshake <= 0
        or config.tuple_unit <= 0
    ):
        return None
    start_at = sim.start_at
    for processor in sim.processors.values():
        if processor.stalls:
            return None
        if hosted:
            # Shared processors carry history from earlier queries; all
            # that matters is that none is still busy when this query's
            # scheduler starts (label prefixes keep traces disjoint).
            if processor.busy_until > start_at:
                return None
        elif processor.busy_until != 0.0 or processor.intervals:
            return None
    for rt in sim.runtimes:
        if not rt.processes:
            return None
        for process in rt.processes:
            if process.work_scale <= 0 or process.aborted:
                return None
    return _topo_memo(sim)


def _eligible(sim) -> Optional[List[int]]:
    """The simulation-order task positions if an *owned* ``sim`` can
    run analytically, else ``None``."""
    clock = sim.clock
    if not sim._owns_clock or sim._pool is not None:
        return None
    if sim.on_complete is not None:
        return None
    if clock.watchdog is not None:
        return None
    if clock.now != 0.0 or clock.events_dispatched != 0:
        return None
    return _common_eligible(sim, hosted=False)


def _eligible_hosted(sim) -> Optional[List[int]]:
    """Eligibility for a freshly built *hosted* simulation: external
    clock at exactly ``start_at``, shared pool with idle processors,
    cancellable build events to unwind.  A watchdog is allowed — it
    only observes dispatches, and the fast path dispatches one
    completion event per epoch."""
    if sim._owns_clock or sim._pool is None:
        return None
    if sim.on_complete is None:
        return None
    if sim.clock.now != sim.start_at:
        return None
    if getattr(sim, "_build_handles", None) is None:
        return None
    return _common_eligible(sim, hosted=True)


def _run_process(
    proc,
    entries: List[tuple],
    share: float,
    t_start: float,
    emissions: List[tuple],
    first_pos: Tuple[Optional[float], Optional[float]],
    latency: float,
    porder: int,
    side: int,
) -> Tuple[float, int, int]:
    """Simulate one operation process to completion.

    ``entries`` is the task-wide arrival timeline —
    ``(atime, emit, porder, rank, side, count, eos)`` tuples sorted by
    the classic heap order; this process takes ``count * share`` of
    each batch.  ``first_pos`` holds the arrival time of the first
    positive-count entry per side (every entry is eventually received,
    so the port's ``first_arrival`` is a task-level constant and need
    not be tracked per apply).  Pipelined output batches are appended
    to ``emissions`` already in consumer timeline form — ``latency``,
    ``porder`` and ``side`` are this process's delivery decoration.
    Returns ``(done_time, completion_events, emission_count)``.
    """
    left = proc.left
    right = proc.right
    simple = proc.algorithm == "simple"
    if simple:
        bflag = 1 if proc.build is right else 0
    else:
        bflag = 0
    # Map left/right onto build/probe scalars (pipelining: b=left, p=right).
    b_port = right if bflag else left
    p_port = left if bflag else right
    processor = proc.processor
    config = proc.config
    tu = config.tuple_unit
    hs_unit = config.handshake
    ws = proc.work_scale
    rc = proc.result_coeff
    batches = config.batches
    name = proc.name
    hs_label = f"{name}:hs"
    pipe_out = proc.output is not None and proc.output_pipelined
    has_close = proc.output is not None and not proc.output_pipelined
    close_d = len(proc.output.ports) * hs_unit if has_close else 0.0

    b_total = b_port.local_total
    p_total = p_port.local_total
    b_coeff = b_port.coefficient
    p_coeff = p_port.coefficient
    b_cap = b_port.chunk_cap(batches)
    p_cap = p_port.chunk_cap(batches)
    b_exp = b_port.expected_producers
    p_exp = p_port.expected_producers
    b_base = b_port.mode == "base"
    p_base = p_port.mode == "base"
    b_closed = b_base or b_exp <= 0
    p_closed = p_base or p_exp <= 0
    if simple:
        rl = proc.result_local
        out_ok = p_total > 0
        density = 0.0
    else:
        # density == 0.0 whenever either total is zero, and the output
        # product ``chunk * done * 0.0`` is exactly +0.0 — no guard
        # needed at the emission sites.
        if b_total > 0 and p_total > 0:
            density = proc.result_local / (b_total * p_total)
        else:
            density = 0.0
        rl = 0.0
        out_ok = False

    EPS = EPSILON
    b_pend = 0.0
    p_pend = 0.0
    b_done = 0.0  # "processed" accumulators
    p_done = 0.0
    b_eos = 0
    p_eos = 0
    out_total = 0.0
    ncomp = 0
    busy = processor.busy_until
    intervals = processor.intervals
    cur_s = 0.0
    cur_e = 0.0
    cur_l: Optional[str] = None
    ei = 0
    en = len(entries)
    rank0 = len(emissions)

    # Arrivals strictly before the process starts are received without
    # a kick (the process has not started); state updates only.
    while ei < en:
        ent = entries[ei]
        if ent[0] >= t_start:
            break
        c = ent[5] * share
        if ent[4] == bflag:
            b_pend += c
            k = ent[6]
            if k:
                b_eos += k
                if b_eos >= b_exp:
                    b_closed = True
        else:
            p_pend += c
            k = ent[6]
            if k:
                p_eos += k
                if p_eos >= p_exp:
                    p_closed = True
        ei += 1

    # Start: inject base fragments, then pay startup handshakes.
    now = t_start
    if b_base and b_total > 0:
        b_pend += b_total
    if p_base and p_total > 0:
        p_pend += p_total

    h = proc._startup_handshakes() * hs_unit
    free_end = 0.0
    push_t = 0.0
    chunk = 0.0
    out = 0.0
    d = 0.0
    on_build = False
    in_chunk = False
    done_time = 0.0
    next_at = entries[ei][0] if ei < en else _INF
    if h > 0.0:
        s = now if now >= busy else busy
        e_t = s + h
        busy = e_t
        if cur_l == hs_label and -1e-12 < s - cur_e < 1e-12:
            cur_e = e_t
        else:
            if cur_l is not None:
                intervals.append((cur_s, cur_e, cur_l))
            cur_s = s
            cur_e = e_t
            cur_l = hs_label
        free_end = e_t
        push_t = now
        in_chunk = False
        completing = True
    else:
        completing = False

    while True:
        if completing:
            # Absorb arrivals the heap would dispatch before this
            # completion: strictly earlier, or same-time but pushed
            # earlier (emit precedes the chunk/handshake start).
            if next_at <= free_end:
                while ei < en:
                    ent = entries[ei]
                    ea = ent[0]
                    if ea > free_end or (ea == free_end and ent[1] >= push_t):
                        break
                    c = ent[5] * share
                    if ent[4] == bflag:
                        b_pend += c
                        k = ent[6]
                        if k:
                            b_eos += k
                            if b_eos >= b_exp:
                                b_closed = True
                    else:
                        p_pend += c
                        k = ent[6]
                        if k:
                            p_eos += k
                            if p_eos >= p_exp:
                                p_closed = True
                    ei += 1
                next_at = entries[ei][0] if ei < en else _INF
            now = free_end
            ncomp += 1
            if in_chunk:
                if on_build:
                    b_done += chunk
                else:
                    p_done += chunk
                if out > 0.0:
                    out_total += out
                    if pipe_out:
                        emissions.append(
                                (now + latency, now, porder, len(emissions) - rank0, side, out, 0)
                            )
            completing = False

        if ei >= en and b_closed and p_closed:
            # ---- pure drain: no arrival can interfere any more ----
            # After the first chunk of a drain run the processor chain
            # is contiguous (s == busy == now == cur_e), so subsequent
            # chunks reduce to `now += duration` with the busy/interval
            # state written back once — the same float operations in
            # the same order, minus the per-chunk bookkeeping.  The
            # contiguity argument needs every duration > 0, which the
            # positive-coefficient gates guarantee; degenerate
            # coefficients fall back to the literal per-chunk form.
            if simple:
                if b_pend > EPS and b_coeff > 0.0:
                    chunk = b_pend if b_pend <= b_cap else b_cap
                    b_pend -= chunk
                    if b_pend < EPS:
                        b_pend = 0.0
                    d = (chunk * b_coeff + 0.0 * rc) * tu * ws
                    s = now if now >= busy else busy
                    e_t = s + d
                    if cur_l == name and -1e-12 < s - cur_e < 1e-12:
                        pass
                    else:
                        if cur_l is not None:
                            intervals.append((cur_s, cur_e, cur_l))
                        cur_s = s
                        cur_l = name
                    now = e_t
                    ncomp += 1
                    b_done += chunk
                    while b_pend > EPS:
                        chunk = b_pend if b_pend <= b_cap else b_cap
                        b_pend -= chunk
                        if b_pend < EPS:
                            b_pend = 0.0
                        now = now + (chunk * b_coeff + 0.0 * rc) * tu * ws
                        ncomp += 1
                        b_done += chunk
                    busy = now
                    cur_e = now
                else:
                    while b_pend > EPS:
                        chunk = b_pend if b_pend <= b_cap else b_cap
                        b_pend -= chunk
                        if b_pend < EPS:
                            b_pend = 0.0
                        d = (chunk * b_coeff + 0.0 * rc) * tu * ws
                        s = now if now >= busy else busy
                        e_t = s + d
                        busy = e_t
                        if d > 0.0:
                            if cur_l == name and -1e-12 < s - cur_e < 1e-12:
                                cur_e = e_t
                            else:
                                if cur_l is not None:
                                    intervals.append((cur_s, cur_e, cur_l))
                                cur_s = s
                                cur_e = e_t
                                cur_l = name
                        now = e_t
                        ncomp += 1
                        b_done += chunk
                if p_pend > EPS and p_coeff > 0.0:
                    chunk = p_pend if p_pend <= p_cap else p_cap
                    p_pend -= chunk
                    if p_pend < EPS:
                        p_pend = 0.0
                    out = chunk * rl / p_total if out_ok else 0.0
                    d = (chunk * p_coeff + out * rc) * tu * ws
                    s = now if now >= busy else busy
                    e_t = s + d
                    if cur_l == name and -1e-12 < s - cur_e < 1e-12:
                        pass
                    else:
                        if cur_l is not None:
                            intervals.append((cur_s, cur_e, cur_l))
                        cur_s = s
                        cur_l = name
                    now = e_t
                    ncomp += 1
                    p_done += chunk
                    if out > 0.0:
                        out_total += out
                        if pipe_out:
                            emissions.append(
                                (now + latency, now, porder, len(emissions) - rank0, side, out, 0)
                            )
                    while True:
                        chunk = p_pend if p_pend <= p_cap else p_cap
                        p_pend -= chunk
                        if p_pend < EPS:
                            p_pend = 0.0
                        if chunk <= 0.0:
                            break
                        out = chunk * rl / p_total if out_ok else 0.0
                        now = now + (chunk * p_coeff + out * rc) * tu * ws
                        ncomp += 1
                        p_done += chunk
                        if out > 0.0:
                            out_total += out
                            if pipe_out:
                                emissions.append(
                                (now + latency, now, porder, len(emissions) - rank0, side, out, 0)
                            )
                    busy = now
                    cur_e = now
                else:
                    while True:
                        chunk = p_pend if p_pend <= p_cap else p_cap
                        p_pend -= chunk
                        if p_pend < EPS:
                            p_pend = 0.0
                        if chunk <= 0.0:
                            break
                        out = chunk * rl / p_total if out_ok else 0.0
                        d = (chunk * p_coeff + out * rc) * tu * ws
                        s = now if now >= busy else busy
                        e_t = s + d
                        busy = e_t
                        if d > 0.0:
                            if cur_l == name and -1e-12 < s - cur_e < 1e-12:
                                cur_e = e_t
                            else:
                                if cur_l is not None:
                                    intervals.append((cur_s, cur_e, cur_l))
                                cur_s = s
                                cur_e = e_t
                                cur_l = name
                        now = e_t
                        ncomp += 1
                        p_done += chunk
                        if out > 0.0:
                            out_total += out
                            if pipe_out:
                                emissions.append(
                                (now + latency, now, porder, len(emissions) - rank0, side, out, 0)
                            )
            elif b_coeff > 0.0 and p_coeff > 0.0:
                if b_pend > EPS:
                    if p_pend > EPS:
                        pb = b_done / b_total if b_total > 0 else 1.0
                        pp = p_done / p_total if p_total > 0 else 1.0
                        on_build = pb <= pp
                    else:
                        on_build = True
                    first = True
                elif p_pend > EPS:
                    on_build = False
                    first = True
                else:
                    first = False
                if first:
                    if on_build:
                        chunk = b_pend if b_pend <= b_cap else b_cap
                        b_pend -= chunk
                        if b_pend < EPS:
                            b_pend = 0.0
                        out = chunk * p_done * density
                        d = (chunk * b_coeff + out * rc) * tu * ws
                    else:
                        chunk = p_pend if p_pend <= p_cap else p_cap
                        p_pend -= chunk
                        if p_pend < EPS:
                            p_pend = 0.0
                        out = chunk * b_done * density
                        d = (chunk * p_coeff + out * rc) * tu * ws
                    s = now if now >= busy else busy
                    e_t = s + d
                    if cur_l == name and -1e-12 < s - cur_e < 1e-12:
                        pass
                    else:
                        if cur_l is not None:
                            intervals.append((cur_s, cur_e, cur_l))
                        cur_s = s
                        cur_l = name
                    now = e_t
                    ncomp += 1
                    if on_build:
                        b_done += chunk
                    else:
                        p_done += chunk
                    if out > 0.0:
                        out_total += out
                        if pipe_out:
                            emissions.append(
                                (now + latency, now, porder, len(emissions) - rank0, side, out, 0)
                            )
                    while True:
                        if b_pend > EPS:
                            if p_pend > EPS:
                                pb = b_done / b_total if b_total > 0 else 1.0
                                pp = p_done / p_total if p_total > 0 else 1.0
                                on_build = pb <= pp
                            else:
                                on_build = True
                        elif p_pend > EPS:
                            on_build = False
                        else:
                            break
                        if on_build:
                            chunk = b_pend if b_pend <= b_cap else b_cap
                            b_pend -= chunk
                            if b_pend < EPS:
                                b_pend = 0.0
                            out = chunk * p_done * density
                            now = now + (chunk * b_coeff + out * rc) * tu * ws
                            b_done += chunk
                        else:
                            chunk = p_pend if p_pend <= p_cap else p_cap
                            p_pend -= chunk
                            if p_pend < EPS:
                                p_pend = 0.0
                            out = chunk * b_done * density
                            now = now + (chunk * p_coeff + out * rc) * tu * ws
                            p_done += chunk
                        ncomp += 1
                        if out > 0.0:
                            out_total += out
                            if pipe_out:
                                emissions.append(
                                (now + latency, now, porder, len(emissions) - rank0, side, out, 0)
                            )
                    busy = now
                    cur_e = now
            else:
                while True:
                    if b_pend > EPS:
                        if p_pend > EPS:
                            pb = b_done / b_total if b_total > 0 else 1.0
                            pp = p_done / p_total if p_total > 0 else 1.0
                            on_build = pb <= pp
                        else:
                            on_build = True
                    elif p_pend > EPS:
                        on_build = False
                    else:
                        break
                    if on_build:
                        chunk = b_pend if b_pend <= b_cap else b_cap
                        b_pend -= chunk
                        if b_pend < EPS:
                            b_pend = 0.0
                        out = chunk * p_done * density
                        d = (chunk * b_coeff + out * rc) * tu * ws
                    else:
                        chunk = p_pend if p_pend <= p_cap else p_cap
                        p_pend -= chunk
                        if p_pend < EPS:
                            p_pend = 0.0
                        out = chunk * b_done * density
                        d = (chunk * p_coeff + out * rc) * tu * ws
                    s = now if now >= busy else busy
                    e_t = s + d
                    busy = e_t
                    if d > 0.0:
                        if cur_l == name and -1e-12 < s - cur_e < 1e-12:
                            cur_e = e_t
                        else:
                            if cur_l is not None:
                                intervals.append((cur_s, cur_e, cur_l))
                            cur_s = s
                            cur_e = e_t
                            cur_l = name
                    now = e_t
                    ncomp += 1
                    if on_build:
                        b_done += chunk
                    else:
                        p_done += chunk
                    if out > 0.0:
                        out_total += out
                        if pipe_out:
                            emissions.append(
                                (now + latency, now, porder, len(emissions) - rank0, side, out, 0)
                            )
            # Drained: pay a materialized output's send-setup
            # handshakes, then report completion.
            if has_close and close_d > 0.0:
                s = now if now >= busy else busy
                e_t = s + close_d
                busy = e_t
                if cur_l == hs_label and -1e-12 < s - cur_e < 1e-12:
                    cur_e = e_t
                else:
                    if cur_l is not None:
                        intervals.append((cur_s, cur_e, cur_l))
                    cur_s = s
                    cur_e = e_t
                    cur_l = hs_label
                now = e_t
                ncomp += 1
            done_time = now
            break

        # Select the next CPU chunk (algorithm hook, inlined).
        have = False
        if simple:
            if not (b_closed and b_pend <= EPS):
                chunk = b_pend if b_pend <= b_cap else b_cap
                b_pend -= chunk
                if b_pend < EPS:
                    b_pend = 0.0
                if chunk > 0.0:
                    have = True
                    on_build = True
                    out = 0.0
                    d = (chunk * b_coeff + out * rc) * tu * ws
            else:
                chunk = p_pend if p_pend <= p_cap else p_cap
                p_pend -= chunk
                if p_pend < EPS:
                    p_pend = 0.0
                if chunk > 0.0:
                    have = True
                    on_build = False
                    out = chunk * rl / p_total if out_ok else 0.0
                    d = (chunk * p_coeff + out * rc) * tu * ws
        else:
            if b_pend > EPS:
                if p_pend > EPS:
                    pb = b_done / b_total if b_total > 0 else 1.0
                    pp = p_done / p_total if p_total > 0 else 1.0
                    on_build = pb <= pp
                else:
                    on_build = True
                have = True
            elif p_pend > EPS:
                on_build = False
                have = True
            if have:
                if on_build:
                    chunk = b_pend if b_pend <= b_cap else b_cap
                    b_pend -= chunk
                    if b_pend < EPS:
                        b_pend = 0.0
                    out = chunk * p_done * density
                    d = (chunk * b_coeff + out * rc) * tu * ws
                else:
                    chunk = p_pend if p_pend <= p_cap else p_cap
                    p_pend -= chunk
                    if p_pend < EPS:
                        p_pend = 0.0
                    out = chunk * b_done * density
                    d = (chunk * p_coeff + out * rc) * tu * ws

        if have:
            s = now if now >= busy else busy
            e_t = s + d
            busy = e_t
            if d > 0.0:
                if cur_l == name and -1e-12 < s - cur_e < 1e-12:
                    cur_e = e_t
                else:
                    if cur_l is not None:
                        intervals.append((cur_s, cur_e, cur_l))
                    cur_s = s
                    cur_e = e_t
                    cur_l = name
            free_end = e_t
            push_t = now
            in_chunk = True
            completing = True
            continue

        # No chunk and not finishable (a drained process is caught by
        # the pure-drain branch above): wait for the next arrival.
        if ei >= en:
            raise RuntimeError(
                f"turbo simulation starved in {name}: operands not drained "
                "and no arrivals remain; schedule wiring bug"
            )
        ent = entries[ei]
        ei += 1
        next_at = entries[ei][0] if ei < en else _INF
        now = ent[0]
        c = ent[5] * share
        if ent[4] == bflag:
            b_pend += c
            k = ent[6]
            if k:
                b_eos += k
                if b_eos >= b_exp:
                    b_closed = True
        else:
            p_pend += c
            k = ent[6]
            if k:
                p_eos += k
                if p_eos >= p_exp:
                    p_closed = True

    if cur_l is not None:
        intervals.append((cur_s, cur_e, cur_l))
    processor.busy_until = busy

    # first_arrival: base fragments arrive at process start; streamed
    # sides saw their first positive batch at the precomputed task-wide
    # time (a zero share never registers an arrival, matching receive()).
    if b_base:
        b_first = t_start if b_total > 0 else None
    else:
        b_first = first_pos[bflag] if share > 0.0 else None
    if p_base:
        p_first = t_start if p_total > 0 else None
    else:
        p_first = first_pos[1 - bflag] if share > 0.0 else None

    b_port.pending = b_pend
    b_port.processed = b_done
    b_port.eos_received = b_eos
    b_port.first_arrival = b_first
    p_port.pending = p_pend
    p_port.processed = p_done
    p_port.eos_received = p_eos
    p_port.first_arrival = p_first
    proc.ready = True
    proc.released = True
    proc.started = True
    proc.cpu_busy = False
    proc.closing = True
    proc.done = True
    proc.start_time = t_start
    proc.done_time = done_time
    proc.out_total = out_total
    return done_time, ncomp, len(emissions) - rank0


def _compute(sim, order: List[int]) -> Tuple[float, int, float]:
    """The v1 analytic interpreter: simulate every task in ``order``,
    mutating processor traces, ports, processes and runtimes in place.
    Returns ``(finished_at, nevents, transferred)``; committing those
    to the network/clock/sim is the caller's job (owned and hosted
    callers commit differently, and the hosted caller may roll back)."""
    config = sim.config
    latency = config.network_latency
    startup = config.process_startup
    start_at = sim.start_at
    runtimes = sim.runtimes
    pos_of = {rt.task.index: i for i, rt in enumerate(runtimes)}

    # Global init order: the scheduler claims processes serially.
    porder_of = {}
    init_of = {}
    seq = 0
    for ti, rt in enumerate(runtimes):
        for pi in range(len(rt.processes)):
            seq += 1
            porder_of[(ti, pi)] = seq
            init_of[(ti, pi)] = start_at + seq * startup

    nevents = 0
    released: List[Optional[float]] = []
    for rt in runtimes:
        if rt.remaining_deps == 0:
            released.append(start_at)
            nevents += 1  # the release event at query start
        else:
            released.append(None)

    # Which input side of its (single) consumer each task feeds;
    # producers decorate their emissions with it up front so the
    # consumer's timeline needs no per-entry rewriting.
    consumer_side = [0] * len(runtimes)
    for rt in runtimes:
        for sidx, spec in ((0, rt.task.left_input), (1, rt.task.right_input)):
            if not spec.is_base:
                consumer_side[pos_of[spec.source]] = sidx

    emissions_of: List[List[tuple]] = [[] for _ in runtimes]
    transferred = 0.0
    finished_at = 0.0

    for ti in order:
        rt = runtimes[ti]
        rel = released[ti]
        if rel is None:  # pragma: no cover - excluded by _topo_order
            raise RuntimeError(f"turbo: task {rt.task.index} never released")
        rt.released_at = rel

        # The task-wide arrival timeline, in classic heap order.
        lspec = rt.task.left_input
        rspec = rt.task.right_input
        if not lspec.is_base:
            entries = emissions_of[pos_of[lspec.source]]
            if not rspec.is_base:
                entries = entries + emissions_of[pos_of[rspec.source]]
        elif not rspec.is_base:
            entries = emissions_of[pos_of[rspec.source]]
        else:
            entries = []
        entries.sort()
        fp0: Optional[float] = None
        fp1: Optional[float] = None
        for ent in entries:
            if ent[5] > 0.0:
                if ent[4]:
                    if fp1 is None:
                        fp1 = ent[0]
                        if fp0 is not None:
                            break
                elif fp0 is None:
                    fp0 = ent[0]
                    if fp1 is not None:
                        break
        first_pos = (fp0, fp1)

        shares = rt.shares
        out_side = consumer_side[ti]
        pipe_flag = rt.output_group is not None and rt.output_pipelined
        task_emissions: List[tuple] = []
        procs = rt.processes
        nprocs = len(procs)

        # Sibling replication: a barrier-released task with uniform
        # shares starts every process at the same instant (the release
        # dominates all init times), and a processor's prior busy time
        # never reaches past its task's completion — so every sibling
        # replays the identical float chain.  Simulate one and copy.
        shared = False
        if nprocs > 1:
            s0 = shares[0]
            if rel >= init_of[(ti, nprocs - 1)] and all(
                sh == s0 for sh in shares
            ):
                shared = all(p.processor.busy_until <= rel for p in procs)
        if shared:
            proc0 = procs[0]
            processor0 = proc0.processor
            imark = len(processor0.intervals)
            porder0 = porder_of[(ti, 0)]
            done_t, ncomp, nemit = _run_process(
                proc0,
                entries,
                shares[0],
                rel,
                task_emissions,
                first_pos,
                latency,
                porder0,
                out_side,
            )
            data_slice = task_emissions[len(task_emissions) - nemit :]
            spans = processor0.intervals[imark:]
            busy_final = processor0.busy_until
            nevents += 1 + ncomp
            if pipe_flag:
                task_emissions.append(
                    (done_t + latency, done_t, porder0, nemit, out_side, 0.0, 1)
                )
                nevents += nemit + 1
                transferred += proc0.out_total
            left0 = proc0.left
            right0 = proc0.right
            for pi in range(1, nprocs):
                proc = procs[pi]
                porder = porder_of[(ti, pi)]
                processor = proc.processor
                processor.intervals.extend(spans)
                processor.busy_until = busy_final
                for dst, src in ((proc.left, left0), (proc.right, right0)):
                    dst.pending = src.pending
                    dst.processed = src.processed
                    dst.eos_received = src.eos_received
                    dst.first_arrival = src.first_arrival
                proc.ready = True
                proc.released = True
                proc.started = True
                proc.cpu_busy = False
                proc.closing = True
                proc.done = True
                proc.start_time = rel
                proc.done_time = done_t
                proc.out_total = proc0.out_total
                nevents += 1 + ncomp
                if pipe_flag:
                    task_emissions += [
                        (a, e, porder, r, sd, c, z)
                        for (a, e, _, r, sd, c, z) in data_slice
                    ]
                    task_emissions.append(
                        (done_t + latency, done_t, porder, nemit, out_side, 0.0, 1)
                    )
                    nevents += nemit + 1
                    transferred += proc0.out_total
        else:
            for pi, proc in enumerate(procs):
                init_t = init_of[(ti, pi)]
                t_start = init_t if init_t >= rel else rel
                porder = porder_of[(ti, pi)]
                done_t, ncomp, nemit = _run_process(
                    proc,
                    entries,
                    shares[pi],
                    t_start,
                    task_emissions,
                    first_pos,
                    latency,
                    porder,
                    out_side,
                )
                nevents += 1 + ncomp  # init_ready + hs/chunk completions
                if pipe_flag:
                    task_emissions.append(
                        (done_t + latency, done_t, porder, nemit, out_side, 0.0, 1)
                    )
                    nevents += nemit + 1  # batch arrivals + EOS arrival
                    transferred += proc.out_total
        rt.done_processes = nprocs

        completion = max(p.done_time for p in rt.processes)
        rt.completion = completion
        if completion > finished_at:
            finished_at = completion
        if rt.output_group is not None and not rt.output_pipelined:
            total = sum(p.out_total for p in rt.processes)
            porder = porder_of[(ti, len(rt.processes) - 1)]
            task_emissions.append(
                (
                    completion + latency,
                    completion,
                    porder,
                    _STORE_RANK,
                    out_side,
                    total,
                    len(rt.processes),
                )
            )
            transferred += total
            nevents += 1  # the stored-result arrival
        emissions_of[ti] = task_emissions

        for dependent in rt.dependents:
            dpos = pos_of[dependent.task.index]
            prev = released[dpos]
            if prev is None or completion > prev:
                released[dpos] = completion
        rt.remaining_deps = 0

    return finished_at, nevents, transferred


# -- the drain-structure (profile) cache --------------------------------


def _signature(sim) -> tuple:
    """The complete input signature of the analytic run — everything
    :func:`_compute` reads.  Two simulations with equal signatures
    perform identical float operations in identical order, so the
    recorded final state of one is bit-for-bit the final state of the
    other.  Costs enter through the *realized* per-process values
    (coefficients, totals, caps, shares, work scales), so catalog,
    cost-model and skew changes all change the key."""
    config = sim.config
    parts: List[object] = [
        STRUCTURE_VERSION,
        sim.start_at,
        sim.label_prefix,
        config.tuple_unit,
        config.process_startup,
        config.handshake,
        config.network_latency,
        config.batches,
    ]
    for rt in sim.runtimes:
        task = rt.task
        pparts = []
        for p in rt.processes:
            left = p.left
            right = p.right
            pparts.append(
                (
                    p.algorithm,
                    1 if (p.algorithm == "simple" and p.build is right) else 0,
                    p.work_scale,
                    p.result_coeff,
                    p.result_local,
                    p.processor.ident,
                    p.output_pipelined,
                    len(p.output.ports) if p.output is not None else -1,
                    (left.mode, left.coefficient, left.expected_producers,
                     left.local_total),
                    (right.mode, right.coefficient, right.expected_producers,
                     right.local_total),
                )
            )
        parts.append(
            (
                task.index,
                tuple(task.processors),
                tuple(task.start_after),
                (task.left_input.is_base, task.left_input.source),
                (task.right_input.is_base, task.right_input.source),
                tuple(rt.shares),
                tuple(pparts),
            )
        )
    return tuple(parts)


def _capture(sim, finished_at: float, nevents: int, transferred: float) -> tuple:
    """Record the final observable state of a just-computed owned run
    as an immutable profile (fresh processors: the whole trace is this
    run's own)."""
    procs = tuple(
        (ident, proc.busy_until, tuple(proc.intervals))
        for ident, proc in sim.processors.items()
    )
    tasks = []
    for rt in sim.runtimes:
        pstates = tuple(
            (
                p.start_time,
                p.done_time,
                p.out_total,
                (p.left.pending, p.left.processed,
                 p.left.eos_received, p.left.first_arrival),
                (p.right.pending, p.right.processed,
                 p.right.eos_received, p.right.first_arrival),
            )
            for p in rt.processes
        )
        tasks.append((rt.released_at, rt.completion, pstates))
    return (finished_at, nevents, transferred, procs, tuple(tasks))


def _replay(sim, profile: tuple) -> None:
    """Write a recorded profile onto a freshly built owned simulation —
    the same final state :func:`_compute` would produce, without
    re-interpreting the drain."""
    finished_at, nevents, transferred, procs, tasks = profile
    processors = sim.processors
    for ident, busy, spans in procs:
        processor = processors[ident]
        processor.intervals.extend(spans)
        processor.busy_until = busy
    for rt, (released_at, completion, pstates) in zip(sim.runtimes, tasks):
        rt.released_at = released_at
        rt.completion = completion
        rt.done_processes = len(rt.processes)
        rt.remaining_deps = 0
        for proc, state in zip(rt.processes, pstates):
            proc.ready = True
            proc.released = True
            proc.started = True
            proc.cpu_busy = False
            proc.closing = True
            proc.done = True
            proc.start_time = state[0]
            proc.done_time = state[1]
            proc.out_total = state[2]
            (proc.left.pending, proc.left.processed,
             proc.left.eos_received, proc.left.first_arrival) = state[3]
            (proc.right.pending, proc.right.processed,
             proc.right.eos_received, proc.right.first_arrival) = state[4]
    sim.network.transferred += transferred
    sim._completed_tasks = len(sim.runtimes)
    sim.finished_at = finished_at
    clock = sim.clock
    clock.now = finished_at
    clock.events_dispatched += nevents
    clock._queue.clear()


def execute(sim) -> bool:
    """Analytically simulate an *owned* ``sim`` if eligible.  Returns
    ``True`` on success (the simulation is complete, results identical
    to the event loop's); ``False`` declines without touching any
    state.  Repeat signatures replay the cached drain structure."""
    order = _eligible(sim)
    if order is None:
        return False
    key = _signature(sim)
    profile = _PROFILE_CACHE.get(key)
    if profile is not None:
        _STATS["profile_hits"] += 1
        _replay(sim, profile)
        return True
    _STATS["profile_misses"] += 1
    finished_at, nevents, transferred = _compute(sim, order)
    sim.network.transferred += transferred
    sim._completed_tasks = len(sim.runtimes)
    sim.finished_at = finished_at
    clock = sim.clock
    clock.now = finished_at
    clock.events_dispatched += nevents
    # The build-time init/release events were simulated analytically,
    # never popped; drop them so pending() reflects reality.
    clock._queue.clear()
    if len(_PROFILE_CACHE) >= _PROFILE_CACHE_MAX:
        _PROFILE_CACHE.pop(next(iter(_PROFILE_CACHE)))
    _PROFILE_CACHE[key] = _capture(sim, finished_at, nevents, transferred)
    return True


# -- hosted epochs ------------------------------------------------------


def _rollback(sim, marks: List[Tuple[object, int, float]]) -> None:
    """Undo every mutation :func:`_compute` applied to a freshly built
    hosted simulation: truncate processor traces, restore busy times,
    and reset runtimes/processes/ports to their as-built constants.
    Valid only immediately after ``_build`` — the reset values are the
    constructor's, which is exactly the state the classic loop expects
    to start from."""
    for processor, mark, busy in marks:
        del processor.intervals[mark:]
        processor.busy_until = busy
    for rt in sim.runtimes:
        rt.released_at = 0.0
        rt.completion = None
        rt.done_processes = 0
        rt.remaining_deps = len(rt.task.start_after)
        for proc in rt.processes:
            proc.ready = False
            proc.released = False
            proc.started = False
            proc.cpu_busy = False
            proc.closing = False
            proc.done = False
            proc.start_time = None
            proc.done_time = None
            proc.out_total = 0.0
            for port in (proc.left, proc.right):
                port.pending = 0.0
                port.processed = 0.0
                port.eos_received = 0
                port.first_arrival = None


def execute_hosted(sim, barrier: float) -> Optional[float]:
    """Analytically execute a freshly built *hosted* simulation as a
    single-occupancy epoch.

    ``barrier`` is the earliest simulated time at which any foreign
    event (another arrival, a deadline, a cancellation, a costed
    scheduling decision) is due on the shared clock — the caller scans
    its queue *before* building the simulation, when every entry is
    foreign.  If the analytically computed completion lies strictly
    before the barrier, nothing else can observe or perturb the epoch:
    the state is committed, the simulation's own build events are
    cancelled, and one completion event is scheduled at the finish
    instant to run ``on_complete`` (so the caller's completion logic
    executes at the same clock time, in the same dispatch position,
    as in the classic run).  Otherwise every mutation is rolled back
    and ``None`` is returned — the classic event loop takes over with
    the build events still armed.

    ``clock.events_dispatched`` is deliberately left untouched: the
    classic loop only folds its dispatch count in when ``run()``
    returns, so mid-drain observers (``result()`` included) see the
    pre-drain value on both paths.
    """
    order = _eligible_hosted(sim)
    if order is None:
        return None
    marks = [
        (processor, len(processor.intervals), processor.busy_until)
        for processor in sim.processors.values()
    ]
    _STATS["hosted_runs"] += 1
    finished_at, _nevents, transferred = _compute(sim, order)
    if finished_at >= barrier:
        _STATS["hosted_rollbacks"] += 1
        _rollback(sim, marks)
        return None
    sim.network.transferred += transferred
    sim._completed_tasks = len(sim.runtimes)
    sim.finished_at = finished_at
    for handle in sim._build_handles:
        handle.cancel()
    sim.clock.at(finished_at, sim.on_complete, sim)
    return finished_at
