"""Analytic fast path for owned, unperturbed simulations.

The classic :class:`~repro.sim.events.SimulationClock` dispatches every
batch arrival, CPU-chunk completion and handshake as a heap event —
roughly 3 µs of interpreter work per event.  For the paper's own
operating regime (one query, dedicated machine, no faults, no
deadline, infinite interconnect bandwidth) the dataflow graph is
*feed-forward*: a consumer never influences its producers, concurrent
tasks occupy disjoint processors, and tasks that do share processors
are barrier-ordered.  Under those conditions the global event heap is
pure overhead — every process can be simulated to completion with a
tight inline loop, in topological task order, replaying the exact
floating-point operations (and the exact logical event count) of the
event-driven run.

:func:`execute` checks eligibility and either simulates the whole run
analytically (returning ``True``) or declines (returning ``False``) so
the caller falls back to the event loop.  Ineligible runs — hosted
(workload) queries, fault injection, deadlines, finite bandwidth,
watchdogs, skip-replay — keep the classic path, whose behaviour this
module must match bit for bit.  The golden-identity fixtures under
``tests/golden/`` and the deadline/fault byte-identity tests pin that
equivalence continuously.

Correctness notes (why this reproduces the event loop exactly):

* **Float identity** — every arithmetic expression below mirrors the
  operand order of :mod:`repro.sim.process` / :mod:`repro.sim.streams`
  (e.g. ``(chunk * coeff + out * rc) * tuple_unit * work_scale``); no
  closed forms are used, because sequential float accumulation does
  not commute with algebraic simplification.
* **Event identity** — ``events_dispatched`` is reconstructed by
  logical accounting: one init per process, one release per
  unbarriered task, one handshake completion per nonzero handshake,
  one completion per CPU chunk, one arrival per emitted batch /
  end-of-stream / stored result.
* **Tie-breaking** — simultaneous events are ordered by the heap's
  push sequence in the classic run.  The loops replicate the cases
  that occur in practice: an arrival beats a completion at the same
  instant iff it was pushed earlier (its emit time precedes the
  chunk's start), lock-stepped sibling processes emit in process
  order, and build-time events (init/release) precede same-time
  arrivals.  Configurations where ties are pervasive (zero startup,
  latency or handshake cost — e.g. ``MachineConfig.ideal()``) are
  declared ineligible and stay on the event loop.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .streams import EPSILON

__all__ = ["execute"]

_INF = float("inf")

#: Sort rank placing a stored-result delivery after any (impossible)
#: same-time data batch of the same producer process.
_STORE_RANK = 1 << 30


def _topo_order(sim) -> Optional[List[int]]:
    """Order tasks so every barrier predecessor and dataflow source
    precedes its dependents, and verify that tasks *not* ordered by
    barriers occupy disjoint processors — otherwise a per-task
    sequential simulation cannot reproduce the interleaved timeline.

    Returns runtime positions in simulation order, or ``None`` if the
    schedule's structure is unsupported.
    """
    runtimes = sim.runtimes
    n = len(runtimes)
    pos_of = {rt.task.index: i for i, rt in enumerate(runtimes)}
    barrier_preds: List[List[int]] = [[] for _ in range(n)]
    all_preds: List[List[int]] = [[] for _ in range(n)]
    procsets: List[frozenset] = []
    for i, rt in enumerate(runtimes):
        task = rt.task
        if not rt.processes:
            return None
        if len(set(task.processors)) != len(task.processors):
            return None
        for dep in task.start_after:
            j = pos_of.get(dep)
            if j is None or j == i:
                return None
            barrier_preds[i].append(j)
            all_preds[i].append(j)
        for spec in (task.left_input, task.right_input):
            if not spec.is_base:
                j = pos_of.get(spec.source)
                if j is None or j == i:
                    return None
                all_preds[i].append(j)
        procsets.append(frozenset(task.processors))

    # Kahn's algorithm, stable by original position (determinism only;
    # independent tasks commute — they share no processors).
    remaining = [len(set(preds)) for preds in all_preds]
    dependents: List[List[int]] = [[] for _ in range(n)]
    for i in range(n):
        for j in set(all_preds[i]):
            dependents[j].append(i)
    order = [i for i in range(n) if remaining[i] == 0]
    head = 0
    while head < len(order):
        for k in dependents[order[head]]:
            remaining[k] -= 1
            if remaining[k] == 0:
                order.append(k)
        head += 1
    if len(order) != n:
        return None  # cycle: broken schedule, let the event loop report

    # Happens-before closure over barriers only; pipelined dataflow
    # runs concurrently, so it creates no ordering for this check.
    ancestors = [0] * n
    for i in order:
        mask = 0
        for j in barrier_preds[i]:
            mask |= (1 << j) | ancestors[j]
        ancestors[i] = mask
    for a in range(n):
        mask_a = ancestors[a]
        mine = procsets[a]
        for b in range(a):
            if not (mask_a >> b) & 1 and not (ancestors[b] >> a) & 1:
                if mine & procsets[b]:
                    return None
    return order


def _eligible(sim) -> Optional[List[int]]:
    """The simulation-order task positions if ``sim`` can run
    analytically, else ``None``."""
    clock = sim.clock
    if not sim._owns_clock or sim._pool is not None:
        return None
    if sim.on_complete is not None:
        return None
    if sim.deadline is not None or sim.skip_tasks:
        return None
    if clock.watchdog is not None:
        return None
    if getattr(sim, "perturbed", False):
        return None
    if clock.now != 0.0 or clock.events_dispatched != 0:
        return None
    # Events scheduled on the clock besides _build's own would be
    # silently dropped by the analytic run — decline.
    if clock._seq != getattr(sim, "_build_seq", -1):
        return None
    network = sim.network
    if network.faults is not None or network.bandwidth != _INF:
        return None
    config = sim.config
    # Zero-overhead configs make simultaneous events pervasive; the
    # tie-break replication below only covers staggered schedules.
    if (
        config.process_startup <= 0
        or config.network_latency <= 0
        or config.handshake <= 0
        or config.tuple_unit <= 0
    ):
        return None
    for processor in sim.processors.values():
        if processor.stalls or processor.busy_until != 0.0 or processor.intervals:
            return None
    for rt in sim.runtimes:
        for process in rt.processes:
            if process.work_scale <= 0 or process.aborted:
                return None
    return _topo_order(sim)


def _run_process(
    proc,
    entries: List[tuple],
    share: float,
    t_start: float,
    emissions: List[tuple],
    first_pos: Tuple[Optional[float], Optional[float]],
    latency: float,
    porder: int,
    side: int,
) -> Tuple[float, int, int]:
    """Simulate one operation process to completion.

    ``entries`` is the task-wide arrival timeline —
    ``(atime, emit, porder, rank, side, count, eos)`` tuples sorted by
    the classic heap order; this process takes ``count * share`` of
    each batch.  ``first_pos`` holds the arrival time of the first
    positive-count entry per side (every entry is eventually received,
    so the port's ``first_arrival`` is a task-level constant and need
    not be tracked per apply).  Pipelined output batches are appended
    to ``emissions`` already in consumer timeline form — ``latency``,
    ``porder`` and ``side`` are this process's delivery decoration.
    Returns ``(done_time, completion_events, emission_count)``.
    """
    left = proc.left
    right = proc.right
    simple = proc.algorithm == "simple"
    if simple:
        bflag = 1 if proc.build is right else 0
    else:
        bflag = 0
    # Map left/right onto build/probe scalars (pipelining: b=left, p=right).
    b_port = right if bflag else left
    p_port = left if bflag else right
    processor = proc.processor
    config = proc.config
    tu = config.tuple_unit
    hs_unit = config.handshake
    ws = proc.work_scale
    rc = proc.result_coeff
    batches = config.batches
    name = proc.name
    hs_label = f"{name}:hs"
    pipe_out = proc.output is not None and proc.output_pipelined
    has_close = proc.output is not None and not proc.output_pipelined
    close_d = len(proc.output.ports) * hs_unit if has_close else 0.0

    b_total = b_port.local_total
    p_total = p_port.local_total
    b_coeff = b_port.coefficient
    p_coeff = p_port.coefficient
    b_cap = b_port.chunk_cap(batches)
    p_cap = p_port.chunk_cap(batches)
    b_exp = b_port.expected_producers
    p_exp = p_port.expected_producers
    b_base = b_port.mode == "base"
    p_base = p_port.mode == "base"
    b_closed = b_base or b_exp <= 0
    p_closed = p_base or p_exp <= 0
    if simple:
        rl = proc.result_local
        out_ok = p_total > 0
        density = 0.0
    else:
        # density == 0.0 whenever either total is zero, and the output
        # product ``chunk * done * 0.0`` is exactly +0.0 — no guard
        # needed at the emission sites.
        if b_total > 0 and p_total > 0:
            density = proc.result_local / (b_total * p_total)
        else:
            density = 0.0
        rl = 0.0
        out_ok = False

    EPS = EPSILON
    b_pend = 0.0
    p_pend = 0.0
    b_done = 0.0  # "processed" accumulators
    p_done = 0.0
    b_eos = 0
    p_eos = 0
    out_total = 0.0
    ncomp = 0
    busy = processor.busy_until
    intervals = processor.intervals
    cur_s = 0.0
    cur_e = 0.0
    cur_l: Optional[str] = None
    ei = 0
    en = len(entries)
    rank0 = len(emissions)

    # Arrivals strictly before the process starts are received without
    # a kick (the process has not started); state updates only.
    while ei < en:
        ent = entries[ei]
        if ent[0] >= t_start:
            break
        c = ent[5] * share
        if ent[4] == bflag:
            b_pend += c
            k = ent[6]
            if k:
                b_eos += k
                if b_eos >= b_exp:
                    b_closed = True
        else:
            p_pend += c
            k = ent[6]
            if k:
                p_eos += k
                if p_eos >= p_exp:
                    p_closed = True
        ei += 1

    # Start: inject base fragments, then pay startup handshakes.
    now = t_start
    if b_base and b_total > 0:
        b_pend += b_total
    if p_base and p_total > 0:
        p_pend += p_total

    h = proc._startup_handshakes() * hs_unit
    free_end = 0.0
    push_t = 0.0
    chunk = 0.0
    out = 0.0
    d = 0.0
    on_build = False
    in_chunk = False
    done_time = 0.0
    next_at = entries[ei][0] if ei < en else _INF
    if h > 0.0:
        s = now if now >= busy else busy
        e_t = s + h
        busy = e_t
        if cur_l == hs_label and -1e-12 < s - cur_e < 1e-12:
            cur_e = e_t
        else:
            if cur_l is not None:
                intervals.append((cur_s, cur_e, cur_l))
            cur_s = s
            cur_e = e_t
            cur_l = hs_label
        free_end = e_t
        push_t = now
        in_chunk = False
        completing = True
    else:
        completing = False

    while True:
        if completing:
            # Absorb arrivals the heap would dispatch before this
            # completion: strictly earlier, or same-time but pushed
            # earlier (emit precedes the chunk/handshake start).
            if next_at <= free_end:
                while ei < en:
                    ent = entries[ei]
                    ea = ent[0]
                    if ea > free_end or (ea == free_end and ent[1] >= push_t):
                        break
                    c = ent[5] * share
                    if ent[4] == bflag:
                        b_pend += c
                        k = ent[6]
                        if k:
                            b_eos += k
                            if b_eos >= b_exp:
                                b_closed = True
                    else:
                        p_pend += c
                        k = ent[6]
                        if k:
                            p_eos += k
                            if p_eos >= p_exp:
                                p_closed = True
                    ei += 1
                next_at = entries[ei][0] if ei < en else _INF
            now = free_end
            ncomp += 1
            if in_chunk:
                if on_build:
                    b_done += chunk
                else:
                    p_done += chunk
                if out > 0.0:
                    out_total += out
                    if pipe_out:
                        emissions.append(
                                (now + latency, now, porder, len(emissions) - rank0, side, out, 0)
                            )
            completing = False

        if ei >= en and b_closed and p_closed:
            # ---- pure drain: no arrival can interfere any more ----
            # After the first chunk of a drain run the processor chain
            # is contiguous (s == busy == now == cur_e), so subsequent
            # chunks reduce to `now += duration` with the busy/interval
            # state written back once — the same float operations in
            # the same order, minus the per-chunk bookkeeping.  The
            # contiguity argument needs every duration > 0, which the
            # positive-coefficient gates guarantee; degenerate
            # coefficients fall back to the literal per-chunk form.
            if simple:
                if b_pend > EPS and b_coeff > 0.0:
                    chunk = b_pend if b_pend <= b_cap else b_cap
                    b_pend -= chunk
                    if b_pend < EPS:
                        b_pend = 0.0
                    d = (chunk * b_coeff + 0.0 * rc) * tu * ws
                    s = now if now >= busy else busy
                    e_t = s + d
                    if cur_l == name and -1e-12 < s - cur_e < 1e-12:
                        pass
                    else:
                        if cur_l is not None:
                            intervals.append((cur_s, cur_e, cur_l))
                        cur_s = s
                        cur_l = name
                    now = e_t
                    ncomp += 1
                    b_done += chunk
                    while b_pend > EPS:
                        chunk = b_pend if b_pend <= b_cap else b_cap
                        b_pend -= chunk
                        if b_pend < EPS:
                            b_pend = 0.0
                        now = now + (chunk * b_coeff + 0.0 * rc) * tu * ws
                        ncomp += 1
                        b_done += chunk
                    busy = now
                    cur_e = now
                else:
                    while b_pend > EPS:
                        chunk = b_pend if b_pend <= b_cap else b_cap
                        b_pend -= chunk
                        if b_pend < EPS:
                            b_pend = 0.0
                        d = (chunk * b_coeff + 0.0 * rc) * tu * ws
                        s = now if now >= busy else busy
                        e_t = s + d
                        busy = e_t
                        if d > 0.0:
                            if cur_l == name and -1e-12 < s - cur_e < 1e-12:
                                cur_e = e_t
                            else:
                                if cur_l is not None:
                                    intervals.append((cur_s, cur_e, cur_l))
                                cur_s = s
                                cur_e = e_t
                                cur_l = name
                        now = e_t
                        ncomp += 1
                        b_done += chunk
                if p_pend > EPS and p_coeff > 0.0:
                    chunk = p_pend if p_pend <= p_cap else p_cap
                    p_pend -= chunk
                    if p_pend < EPS:
                        p_pend = 0.0
                    out = chunk * rl / p_total if out_ok else 0.0
                    d = (chunk * p_coeff + out * rc) * tu * ws
                    s = now if now >= busy else busy
                    e_t = s + d
                    if cur_l == name and -1e-12 < s - cur_e < 1e-12:
                        pass
                    else:
                        if cur_l is not None:
                            intervals.append((cur_s, cur_e, cur_l))
                        cur_s = s
                        cur_l = name
                    now = e_t
                    ncomp += 1
                    p_done += chunk
                    if out > 0.0:
                        out_total += out
                        if pipe_out:
                            emissions.append(
                                (now + latency, now, porder, len(emissions) - rank0, side, out, 0)
                            )
                    while True:
                        chunk = p_pend if p_pend <= p_cap else p_cap
                        p_pend -= chunk
                        if p_pend < EPS:
                            p_pend = 0.0
                        if chunk <= 0.0:
                            break
                        out = chunk * rl / p_total if out_ok else 0.0
                        now = now + (chunk * p_coeff + out * rc) * tu * ws
                        ncomp += 1
                        p_done += chunk
                        if out > 0.0:
                            out_total += out
                            if pipe_out:
                                emissions.append(
                                (now + latency, now, porder, len(emissions) - rank0, side, out, 0)
                            )
                    busy = now
                    cur_e = now
                else:
                    while True:
                        chunk = p_pend if p_pend <= p_cap else p_cap
                        p_pend -= chunk
                        if p_pend < EPS:
                            p_pend = 0.0
                        if chunk <= 0.0:
                            break
                        out = chunk * rl / p_total if out_ok else 0.0
                        d = (chunk * p_coeff + out * rc) * tu * ws
                        s = now if now >= busy else busy
                        e_t = s + d
                        busy = e_t
                        if d > 0.0:
                            if cur_l == name and -1e-12 < s - cur_e < 1e-12:
                                cur_e = e_t
                            else:
                                if cur_l is not None:
                                    intervals.append((cur_s, cur_e, cur_l))
                                cur_s = s
                                cur_e = e_t
                                cur_l = name
                        now = e_t
                        ncomp += 1
                        p_done += chunk
                        if out > 0.0:
                            out_total += out
                            if pipe_out:
                                emissions.append(
                                (now + latency, now, porder, len(emissions) - rank0, side, out, 0)
                            )
            elif b_coeff > 0.0 and p_coeff > 0.0:
                if b_pend > EPS:
                    if p_pend > EPS:
                        pb = b_done / b_total if b_total > 0 else 1.0
                        pp = p_done / p_total if p_total > 0 else 1.0
                        on_build = pb <= pp
                    else:
                        on_build = True
                    first = True
                elif p_pend > EPS:
                    on_build = False
                    first = True
                else:
                    first = False
                if first:
                    if on_build:
                        chunk = b_pend if b_pend <= b_cap else b_cap
                        b_pend -= chunk
                        if b_pend < EPS:
                            b_pend = 0.0
                        out = chunk * p_done * density
                        d = (chunk * b_coeff + out * rc) * tu * ws
                    else:
                        chunk = p_pend if p_pend <= p_cap else p_cap
                        p_pend -= chunk
                        if p_pend < EPS:
                            p_pend = 0.0
                        out = chunk * b_done * density
                        d = (chunk * p_coeff + out * rc) * tu * ws
                    s = now if now >= busy else busy
                    e_t = s + d
                    if cur_l == name and -1e-12 < s - cur_e < 1e-12:
                        pass
                    else:
                        if cur_l is not None:
                            intervals.append((cur_s, cur_e, cur_l))
                        cur_s = s
                        cur_l = name
                    now = e_t
                    ncomp += 1
                    if on_build:
                        b_done += chunk
                    else:
                        p_done += chunk
                    if out > 0.0:
                        out_total += out
                        if pipe_out:
                            emissions.append(
                                (now + latency, now, porder, len(emissions) - rank0, side, out, 0)
                            )
                    while True:
                        if b_pend > EPS:
                            if p_pend > EPS:
                                pb = b_done / b_total if b_total > 0 else 1.0
                                pp = p_done / p_total if p_total > 0 else 1.0
                                on_build = pb <= pp
                            else:
                                on_build = True
                        elif p_pend > EPS:
                            on_build = False
                        else:
                            break
                        if on_build:
                            chunk = b_pend if b_pend <= b_cap else b_cap
                            b_pend -= chunk
                            if b_pend < EPS:
                                b_pend = 0.0
                            out = chunk * p_done * density
                            now = now + (chunk * b_coeff + out * rc) * tu * ws
                            b_done += chunk
                        else:
                            chunk = p_pend if p_pend <= p_cap else p_cap
                            p_pend -= chunk
                            if p_pend < EPS:
                                p_pend = 0.0
                            out = chunk * b_done * density
                            now = now + (chunk * p_coeff + out * rc) * tu * ws
                            p_done += chunk
                        ncomp += 1
                        if out > 0.0:
                            out_total += out
                            if pipe_out:
                                emissions.append(
                                (now + latency, now, porder, len(emissions) - rank0, side, out, 0)
                            )
                    busy = now
                    cur_e = now
            else:
                while True:
                    if b_pend > EPS:
                        if p_pend > EPS:
                            pb = b_done / b_total if b_total > 0 else 1.0
                            pp = p_done / p_total if p_total > 0 else 1.0
                            on_build = pb <= pp
                        else:
                            on_build = True
                    elif p_pend > EPS:
                        on_build = False
                    else:
                        break
                    if on_build:
                        chunk = b_pend if b_pend <= b_cap else b_cap
                        b_pend -= chunk
                        if b_pend < EPS:
                            b_pend = 0.0
                        out = chunk * p_done * density
                        d = (chunk * b_coeff + out * rc) * tu * ws
                    else:
                        chunk = p_pend if p_pend <= p_cap else p_cap
                        p_pend -= chunk
                        if p_pend < EPS:
                            p_pend = 0.0
                        out = chunk * b_done * density
                        d = (chunk * p_coeff + out * rc) * tu * ws
                    s = now if now >= busy else busy
                    e_t = s + d
                    busy = e_t
                    if d > 0.0:
                        if cur_l == name and -1e-12 < s - cur_e < 1e-12:
                            cur_e = e_t
                        else:
                            if cur_l is not None:
                                intervals.append((cur_s, cur_e, cur_l))
                            cur_s = s
                            cur_e = e_t
                            cur_l = name
                    now = e_t
                    ncomp += 1
                    if on_build:
                        b_done += chunk
                    else:
                        p_done += chunk
                    if out > 0.0:
                        out_total += out
                        if pipe_out:
                            emissions.append(
                                (now + latency, now, porder, len(emissions) - rank0, side, out, 0)
                            )
            # Drained: pay a materialized output's send-setup
            # handshakes, then report completion.
            if has_close and close_d > 0.0:
                s = now if now >= busy else busy
                e_t = s + close_d
                busy = e_t
                if cur_l == hs_label and -1e-12 < s - cur_e < 1e-12:
                    cur_e = e_t
                else:
                    if cur_l is not None:
                        intervals.append((cur_s, cur_e, cur_l))
                    cur_s = s
                    cur_e = e_t
                    cur_l = hs_label
                now = e_t
                ncomp += 1
            done_time = now
            break

        # Select the next CPU chunk (algorithm hook, inlined).
        have = False
        if simple:
            if not (b_closed and b_pend <= EPS):
                chunk = b_pend if b_pend <= b_cap else b_cap
                b_pend -= chunk
                if b_pend < EPS:
                    b_pend = 0.0
                if chunk > 0.0:
                    have = True
                    on_build = True
                    out = 0.0
                    d = (chunk * b_coeff + out * rc) * tu * ws
            else:
                chunk = p_pend if p_pend <= p_cap else p_cap
                p_pend -= chunk
                if p_pend < EPS:
                    p_pend = 0.0
                if chunk > 0.0:
                    have = True
                    on_build = False
                    out = chunk * rl / p_total if out_ok else 0.0
                    d = (chunk * p_coeff + out * rc) * tu * ws
        else:
            if b_pend > EPS:
                if p_pend > EPS:
                    pb = b_done / b_total if b_total > 0 else 1.0
                    pp = p_done / p_total if p_total > 0 else 1.0
                    on_build = pb <= pp
                else:
                    on_build = True
                have = True
            elif p_pend > EPS:
                on_build = False
                have = True
            if have:
                if on_build:
                    chunk = b_pend if b_pend <= b_cap else b_cap
                    b_pend -= chunk
                    if b_pend < EPS:
                        b_pend = 0.0
                    out = chunk * p_done * density
                    d = (chunk * b_coeff + out * rc) * tu * ws
                else:
                    chunk = p_pend if p_pend <= p_cap else p_cap
                    p_pend -= chunk
                    if p_pend < EPS:
                        p_pend = 0.0
                    out = chunk * b_done * density
                    d = (chunk * p_coeff + out * rc) * tu * ws

        if have:
            s = now if now >= busy else busy
            e_t = s + d
            busy = e_t
            if d > 0.0:
                if cur_l == name and -1e-12 < s - cur_e < 1e-12:
                    cur_e = e_t
                else:
                    if cur_l is not None:
                        intervals.append((cur_s, cur_e, cur_l))
                    cur_s = s
                    cur_e = e_t
                    cur_l = name
            free_end = e_t
            push_t = now
            in_chunk = True
            completing = True
            continue

        # No chunk and not finishable (a drained process is caught by
        # the pure-drain branch above): wait for the next arrival.
        if ei >= en:
            raise RuntimeError(
                f"turbo simulation starved in {name}: operands not drained "
                "and no arrivals remain; schedule wiring bug"
            )
        ent = entries[ei]
        ei += 1
        next_at = entries[ei][0] if ei < en else _INF
        now = ent[0]
        c = ent[5] * share
        if ent[4] == bflag:
            b_pend += c
            k = ent[6]
            if k:
                b_eos += k
                if b_eos >= b_exp:
                    b_closed = True
        else:
            p_pend += c
            k = ent[6]
            if k:
                p_eos += k
                if p_eos >= p_exp:
                    p_closed = True

    if cur_l is not None:
        intervals.append((cur_s, cur_e, cur_l))
    processor.busy_until = busy

    # first_arrival: base fragments arrive at process start; streamed
    # sides saw their first positive batch at the precomputed task-wide
    # time (a zero share never registers an arrival, matching receive()).
    if b_base:
        b_first = t_start if b_total > 0 else None
    else:
        b_first = first_pos[bflag] if share > 0.0 else None
    if p_base:
        p_first = t_start if p_total > 0 else None
    else:
        p_first = first_pos[1 - bflag] if share > 0.0 else None

    b_port.pending = b_pend
    b_port.processed = b_done
    b_port.eos_received = b_eos
    b_port.first_arrival = b_first
    p_port.pending = p_pend
    p_port.processed = p_done
    p_port.eos_received = p_eos
    p_port.first_arrival = p_first
    proc.ready = True
    proc.released = True
    proc.started = True
    proc.cpu_busy = False
    proc.closing = True
    proc.done = True
    proc.start_time = t_start
    proc.done_time = done_time
    proc.out_total = out_total
    return done_time, ncomp, len(emissions) - rank0


def execute(sim) -> bool:
    """Analytically simulate ``sim`` if eligible.  Returns ``True`` on
    success (the simulation is complete, results identical to the
    event loop's); ``False`` declines without touching any state."""
    order = _eligible(sim)
    if order is None:
        return False

    config = sim.config
    latency = config.network_latency
    startup = config.process_startup
    start_at = sim.start_at
    runtimes = sim.runtimes
    pos_of = {rt.task.index: i for i, rt in enumerate(runtimes)}

    # Global init order: the scheduler claims processes serially.
    porder_of = {}
    init_of = {}
    seq = 0
    for ti, rt in enumerate(runtimes):
        for pi in range(len(rt.processes)):
            seq += 1
            porder_of[(ti, pi)] = seq
            init_of[(ti, pi)] = start_at + seq * startup

    nevents = 0
    released: List[Optional[float]] = []
    for rt in runtimes:
        if rt.remaining_deps == 0:
            released.append(start_at)
            nevents += 1  # the release event at query start
        else:
            released.append(None)

    # Which input side of its (single) consumer each task feeds;
    # producers decorate their emissions with it up front so the
    # consumer's timeline needs no per-entry rewriting.
    consumer_side = [0] * len(runtimes)
    for rt in runtimes:
        for sidx, spec in ((0, rt.task.left_input), (1, rt.task.right_input)):
            if not spec.is_base:
                consumer_side[pos_of[spec.source]] = sidx

    emissions_of: List[List[tuple]] = [[] for _ in runtimes]
    transferred = 0.0
    finished_at = 0.0

    for ti in order:
        rt = runtimes[ti]
        rel = released[ti]
        if rel is None:  # pragma: no cover - excluded by _topo_order
            raise RuntimeError(f"turbo: task {rt.task.index} never released")
        rt.released_at = rel

        # The task-wide arrival timeline, in classic heap order.
        lspec = rt.task.left_input
        rspec = rt.task.right_input
        if not lspec.is_base:
            entries = emissions_of[pos_of[lspec.source]]
            if not rspec.is_base:
                entries = entries + emissions_of[pos_of[rspec.source]]
        elif not rspec.is_base:
            entries = emissions_of[pos_of[rspec.source]]
        else:
            entries = []
        entries.sort()
        fp0: Optional[float] = None
        fp1: Optional[float] = None
        for ent in entries:
            if ent[5] > 0.0:
                if ent[4]:
                    if fp1 is None:
                        fp1 = ent[0]
                        if fp0 is not None:
                            break
                elif fp0 is None:
                    fp0 = ent[0]
                    if fp1 is not None:
                        break
        first_pos = (fp0, fp1)

        shares = rt.shares
        out_side = consumer_side[ti]
        pipe_flag = rt.output_group is not None and rt.output_pipelined
        task_emissions: List[tuple] = []
        procs = rt.processes
        nprocs = len(procs)

        # Sibling replication: a barrier-released task with uniform
        # shares starts every process at the same instant (the release
        # dominates all init times), and a processor's prior busy time
        # never reaches past its task's completion — so every sibling
        # replays the identical float chain.  Simulate one and copy.
        shared = False
        if nprocs > 1:
            s0 = shares[0]
            if rel >= init_of[(ti, nprocs - 1)] and all(
                sh == s0 for sh in shares
            ):
                shared = all(p.processor.busy_until <= rel for p in procs)
        if shared:
            proc0 = procs[0]
            processor0 = proc0.processor
            imark = len(processor0.intervals)
            porder0 = porder_of[(ti, 0)]
            done_t, ncomp, nemit = _run_process(
                proc0,
                entries,
                shares[0],
                rel,
                task_emissions,
                first_pos,
                latency,
                porder0,
                out_side,
            )
            data_slice = task_emissions[len(task_emissions) - nemit :]
            spans = processor0.intervals[imark:]
            busy_final = processor0.busy_until
            nevents += 1 + ncomp
            if pipe_flag:
                task_emissions.append(
                    (done_t + latency, done_t, porder0, nemit, out_side, 0.0, 1)
                )
                nevents += nemit + 1
                transferred += proc0.out_total
            left0 = proc0.left
            right0 = proc0.right
            for pi in range(1, nprocs):
                proc = procs[pi]
                porder = porder_of[(ti, pi)]
                processor = proc.processor
                processor.intervals.extend(spans)
                processor.busy_until = busy_final
                for dst, src in ((proc.left, left0), (proc.right, right0)):
                    dst.pending = src.pending
                    dst.processed = src.processed
                    dst.eos_received = src.eos_received
                    dst.first_arrival = src.first_arrival
                proc.ready = True
                proc.released = True
                proc.started = True
                proc.cpu_busy = False
                proc.closing = True
                proc.done = True
                proc.start_time = rel
                proc.done_time = done_t
                proc.out_total = proc0.out_total
                nevents += 1 + ncomp
                if pipe_flag:
                    task_emissions += [
                        (a, e, porder, r, sd, c, z)
                        for (a, e, _, r, sd, c, z) in data_slice
                    ]
                    task_emissions.append(
                        (done_t + latency, done_t, porder, nemit, out_side, 0.0, 1)
                    )
                    nevents += nemit + 1
                    transferred += proc0.out_total
        else:
            for pi, proc in enumerate(procs):
                init_t = init_of[(ti, pi)]
                t_start = init_t if init_t >= rel else rel
                porder = porder_of[(ti, pi)]
                done_t, ncomp, nemit = _run_process(
                    proc,
                    entries,
                    shares[pi],
                    t_start,
                    task_emissions,
                    first_pos,
                    latency,
                    porder,
                    out_side,
                )
                nevents += 1 + ncomp  # init_ready + hs/chunk completions
                if pipe_flag:
                    task_emissions.append(
                        (done_t + latency, done_t, porder, nemit, out_side, 0.0, 1)
                    )
                    nevents += nemit + 1  # batch arrivals + EOS arrival
                    transferred += proc.out_total
        rt.done_processes = nprocs

        completion = max(p.done_time for p in rt.processes)
        rt.completion = completion
        if completion > finished_at:
            finished_at = completion
        if rt.output_group is not None and not rt.output_pipelined:
            total = sum(p.out_total for p in rt.processes)
            porder = porder_of[(ti, len(rt.processes) - 1)]
            task_emissions.append(
                (
                    completion + latency,
                    completion,
                    porder,
                    _STORE_RANK,
                    out_side,
                    total,
                    len(rt.processes),
                )
            )
            transferred += total
            nevents += 1  # the stored-result arrival
        emissions_of[ti] = task_emissions

        for dependent in rt.dependents:
            dpos = pos_of[dependent.task.index]
            prev = released[dpos]
            if prev is None or completion > prev:
                released[dpos] = completion
        rt.remaining_deps = 0

    sim.network.transferred += transferred
    sim._completed_tasks = len(runtimes)
    sim.finished_at = finished_at
    clock = sim.clock
    clock.now = finished_at
    clock.events_dispatched += nevents
    # The build-time init/release events were simulated analytically,
    # never popped; drop them so pending() reflects reality.
    clock._queue.clear()
    return True
