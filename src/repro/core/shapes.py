"""The query-tree shapes of the paper.

Figure 8 shows the five ten-relation shapes used in the experiments —
left-linear, left-oriented (long) bushy, wide bushy, right-oriented
(long) bushy, and right-linear — and Figure 2 shows the 5-way example
tree (with relative-work labels) used to explain the strategies.
Constructors here generalize the five shapes to any relation count.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from .trees import Join, Leaf, Node

#: Names of the five experimental shapes, in the paper's figure order.
SHAPE_NAMES = (
    "left_linear",
    "left_bushy",
    "wide_bushy",
    "right_bushy",
    "right_linear",
)

#: Human-readable shape titles as the paper prints them.
SHAPE_TITLES: Dict[str, str] = {
    "left_linear": "left linear",
    "left_bushy": "left-oriented bushy",
    "wide_bushy": "wide bushy",
    "right_bushy": "right-oriented bushy",
    "right_linear": "right linear",
}


def _leaves(names: Sequence[str]) -> List[Node]:
    if len(names) < 2:
        raise ValueError("a join tree needs at least two relations")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate relation names: {names}")
    return [Leaf(n) for n in names]


def left_linear(names: Sequence[str]) -> Node:
    """``(((R0 ⋈ R1) ⋈ R2) ⋈ ...)`` — every join's right child a leaf."""
    nodes = _leaves(names)
    tree = nodes[0]
    for leaf in nodes[1:]:
        tree = Join(tree, leaf)
    return tree


def right_linear(names: Sequence[str]) -> Node:
    """``(... ⋈ (R8 ⋈ R9))`` — every join's left child a leaf."""
    nodes = _leaves(names)
    tree = nodes[-1]
    for leaf in reversed(nodes[:-1]):
        tree = Join(leaf, tree)
    return tree


def left_bushy(names: Sequence[str]) -> Node:
    """Left-oriented *long* bushy tree.

    A long spine following left children whose right operands alternate
    between a single base relation and a join of two base relations::

        ((((((R0 ⋈ R1) ⋈ R2) ⋈ (R3 ⋈ R4)) ⋈ R5) ⋈ (R6 ⋈ R7)) ⋈ R8) ⋈ R9

    This matches the paper's description of the shape's behaviour: the
    pipeline is only slightly shorter than the linear tree's (7 steps
    against 9 for ten relations), the spine contains bushy steps
    (intermediate ⋈ intermediate — the steps whose pipeline delay is
    proportional to operand size, Section 2.3.3), SE finds only "very
    small" independent subtrees (the two-leaf pairs), and RD's
    right-deep segments are very short.
    """
    nodes = _leaves(names)
    tree = Join(nodes[0], nodes[1])
    i = 2
    next_is_pair = False
    while i < len(nodes):
        if next_is_pair and i + 2 < len(nodes):
            tree = Join(tree, Join(nodes[i], nodes[i + 1]))
            i += 2
        else:
            tree = Join(tree, nodes[i])
            i += 1
        next_is_pair = not next_is_pair
    return tree


def right_bushy(names: Sequence[str]) -> Node:
    """Right-oriented long bushy tree: the mirror image of
    :func:`left_bushy`.

    The long spine now follows right children, so RD forms one fairly
    long probe pipeline whose left (build) operands — the two-leaf
    pairs — are processed independently in parallel on disjoint
    processors first, exactly the situation Section 4.4 reports RD
    winning on.  Mirroring is the paper's own observation that a tree
    can be made right-oriented without cost penalty (Section 5).
    """
    from .trees import mirror

    return mirror(left_bushy(list(reversed(list(names)))))


def wide_bushy(names: Sequence[str]) -> Node:
    """Balanced (wide) bushy tree.

    Recursively splits the relations in half, giving the maximal number
    of independent subtrees — the shape SE is built for.
    """
    nodes = _leaves(names)

    def build(lo: int, hi: int) -> Node:
        if hi - lo == 1:
            return nodes[lo]
        mid = (lo + hi + 1) // 2
        return Join(build(lo, mid), build(mid, hi))

    return build(0, len(nodes))


_SHAPES: Dict[str, Callable[[Sequence[str]], Node]] = {
    "left_linear": left_linear,
    "left_bushy": left_bushy,
    "wide_bushy": wide_bushy,
    "right_bushy": right_bushy,
    "right_linear": right_linear,
}


def make_shape(shape: str, names: Sequence[str]) -> Node:
    """Build the named shape over ``names``; see :data:`SHAPE_NAMES`."""
    try:
        builder = _SHAPES[shape]
    except KeyError:
        raise ValueError(f"unknown shape {shape!r}; choose from {SHAPE_NAMES}") from None
    return builder(names)


def paper_relation_names(count: int = 10) -> List[str]:
    """The experiment's relation names: ``R0 .. R{count-1}``."""
    return [f"R{i}" for i in range(count)]


def example_tree() -> Node:
    """The 5-way example tree of Figure 2.

    Reconstructed from the processor-utilization discussion in
    Sections 3.1–3.4: joins labelled 3 (B⋈C) and 4 (D⋈E) have only
    base-relation operands; join 5 joins their two results (the bushy
    step whose operands "start producing output" in Figure 7); the top
    join, labelled 1, joins base relation A with join 5's result.  The
    labels give the joins' relative amounts of work, so RD's first
    segment is join 4 alone and its second segment is the right-deep
    chain 1–5–3.
    """
    a, b, c, d, e = (Leaf(n) for n in "ABCDE")
    j3 = Join(b, c, label="3", work=3.0)
    j4 = Join(d, e, label="4", work=4.0)
    j5 = Join(j4, j3, label="5", work=5.0)
    return Join(a, j5, label="1", work=1.0)
