"""Memory accounting for parallel schedules.

PRISMA/DB is a main-memory system: each node has 16 MB, and memory
constraints surface twice in the paper —

* Section 4.2: "The total size of the 40K query was too large to run
  on fewer than 30 processors", which is why the 40K sweeps start at
  30; and
* Section 5: "RD uses less memory than FP because only one hash-table
  needs to be built" (the pipelining hash-join keeps a table per
  operand).

This module computes, for any schedule, the peak per-processor memory
demand over the schedule's execution phases: resident base fragments,
stored intermediate results, and the hash tables of the joins active
on each processor.  It exposes the two checks above as first-class
analyses: :func:`peak_memory_per_processor`,
:func:`minimum_processors`, and :func:`fits_in_memory`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .cost import Catalog, CostModel, JoinCost
from .schedule import ParallelSchedule

#: PRISMA/DB node memory (Section 2.1): 16 MB.
PRISMA_NODE_BYTES = 16 * 1024 * 1024

#: Wisconsin tuple width (Section 4.1).
DEFAULT_TUPLE_BYTES = 208


@dataclass(frozen=True)
class MemoryModel:
    """Parameters of the per-node memory estimate.

    ``hash_overhead`` scales tuple storage inside a hash table (bucket
    arrays, chains); ``runtime_bytes`` is the fixed footprint per node
    (operation-process pool, buffers, OS).  With the defaults, the 40K
    query's FP plan first fits at exactly 30 nodes — reproducing the
    Section 4.2 floor of the 40K sweeps — while every strategy fits the
    5K query at 20 nodes.
    """

    tuple_bytes: int = DEFAULT_TUPLE_BYTES
    hash_overhead: float = 1.2
    runtime_bytes: int = 2 * 1024 * 1024
    node_bytes: int = PRISMA_NODE_BYTES

    def table_bytes(self, tuples: float) -> float:
        """Bytes of a resident hash table holding ``tuples`` tuples."""
        return tuples * self.tuple_bytes * self.hash_overhead

    def stored_bytes(self, tuples: float) -> float:
        """Bytes of a stored (non-hashed) fragment."""
        return tuples * self.tuple_bytes


@dataclass
class TaskMemory:
    """Peak memory of one join task, per participating processor."""

    index: int
    hash_tables: int          # 1 for simple, 2 for pipelining
    table_tuples: float       # tuples resident in tables per processor
    bytes_per_processor: float


def _annotation(
    schedule: ParallelSchedule, catalog: Catalog, cost_model: CostModel
) -> Dict[int, JoinCost]:
    per_join = cost_model.annotate(schedule.tree, catalog)
    return {task.index: per_join[task.join] for task in schedule.tasks}


def task_memory(
    schedule: ParallelSchedule,
    catalog: Catalog,
    model: MemoryModel = MemoryModel(),
    cost_model: CostModel = CostModel(),
) -> List[TaskMemory]:
    """Hash-table memory demand of each task, per processor.

    The simple hash-join holds its build operand's fragment; the
    pipelining hash-join holds both operands' fragments (Section 2.3.2:
    "at the cost of using more memory to store a second hash-table").
    """
    costs = _annotation(schedule, catalog, cost_model)
    out: List[TaskMemory] = []
    for task in schedule.tasks:
        cost = costs[task.index]
        m = task.parallelism
        if task.algorithm == "pipelining":
            tables = 2
            tuples = (cost.n1 + cost.n2) / m
        else:
            tables = 1
            build_total = cost.n1 if task.build_side == "left" else cost.n2
            tuples = build_total / m
        out.append(
            TaskMemory(
                index=task.index,
                hash_tables=tables,
                table_tuples=tuples,
                bytes_per_processor=model.table_bytes(tuples),
            )
        )
    return out


def peak_memory_per_processor(
    schedule: ParallelSchedule,
    catalog: Catalog,
    model: MemoryModel = MemoryModel(),
    cost_model: CostModel = CostModel(),
) -> Dict[int, float]:
    """Peak bytes demanded on each processor over the whole execution.

    Components per processor:

    * its share of every base relation consumed by a task it runs (the
      ideal initial fragmentation stores base fragments locally);
    * its share of stored intermediate results that must coexist
      (a materialized result lives from producer completion until its
      consumer has drained it — conservatively counted against every
      overlap-possible task);
    * the hash tables of its tasks, with concurrent tasks summed and
      sequential tasks maxed.
    """
    costs = _annotation(schedule, catalog, cost_model)
    peak: Dict[int, float] = {p: 0.0 for t in schedule.tasks for p in t.processors}

    # Base fragments resident per processor.
    base_bytes: Dict[int, float] = {p: 0.0 for p in peak}
    for task in schedule.tasks:
        for side, spec in (("left", task.left_input), ("right", task.right_input)):
            if spec.is_base:
                total = costs[task.index].n1 if side == "left" else costs[task.index].n2
                share = model.stored_bytes(total / task.parallelism)
                for p in task.processors:
                    base_bytes[p] += share

    # Stored intermediates: a materialized producer's result occupies
    # its own processors until consumed; count it while the consumer
    # runs (the conservative window).
    stored_bytes: Dict[int, float] = {p: 0.0 for p in peak}
    for task in schedule.tasks:
        for spec in (task.left_input, task.right_input):
            if spec.mode == "materialized":
                producer = schedule.tasks[spec.source]
                share = model.stored_bytes(
                    costs[producer.index].result / producer.parallelism
                )
                for p in producer.processors:
                    stored_bytes[p] += share

    # Hash tables: sum over mutually concurrent tasks per processor.
    tables = {tm.index: tm for tm in task_memory(schedule, catalog, model, cost_model)}
    for p in peak:
        tasks_here = [t for t in schedule.tasks if p in t.processors]
        concurrent_peak = 0.0
        for task in tasks_here:
            demand = tables[task.index].bytes_per_processor
            for other in tasks_here:
                if other.index != task.index and schedule.may_overlap(task, other):
                    demand += tables[other.index].bytes_per_processor
            concurrent_peak = max(concurrent_peak, demand)
        peak[p] = base_bytes[p] + stored_bytes[p] + concurrent_peak
    return peak


def fits_in_memory(
    schedule: ParallelSchedule,
    catalog: Catalog,
    model: MemoryModel = MemoryModel(),
    cost_model: CostModel = CostModel(),
) -> bool:
    """Whether every node's peak demand fits under its memory."""
    headroom = model.node_bytes - model.runtime_bytes
    peaks = peak_memory_per_processor(schedule, catalog, model, cost_model)
    return all(demand <= headroom for demand in peaks.values())


def minimum_processors(
    strategy,
    tree,
    catalog: Catalog,
    model: MemoryModel = MemoryModel(),
    cost_model: CostModel = CostModel(),
    upper: int = 512,
) -> Optional[int]:
    """Smallest processor count at which the strategy's plan fits.

    This reproduces the Section 4.2 observation that the 40K query was
    too large for fewer than 30 of PRISMA's nodes.  Returns ``None``
    when even ``upper`` processors do not fit.
    """
    from .strategies.base import Strategy

    assert isinstance(strategy, Strategy)
    from .trees import num_joins

    lower = max(1, num_joins(tree) if strategy.name == "FP" else 1)
    for processors in range(lower, upper + 1):
        try:
            schedule = strategy.schedule(tree, catalog, processors, cost_model)
        except ValueError:
            continue
        if fits_in_memory(schedule, catalog, model, cost_model):
            return processors
    return None


def memory_report(
    schedule: ParallelSchedule,
    catalog: Catalog,
    model: MemoryModel = MemoryModel(),
    cost_model: CostModel = CostModel(),
) -> str:
    """Human-readable per-schedule memory summary."""
    peaks = peak_memory_per_processor(schedule, catalog, model, cost_model)
    worst = max(peaks.values())
    headroom = model.node_bytes - model.runtime_bytes
    tables = task_memory(schedule, catalog, model, cost_model)
    lines = [
        f"{schedule.strategy} on {schedule.processors} processors:",
        f"  peak node demand {worst / 2**20:.2f} MB "
        f"(headroom {headroom / 2**20:.2f} MB) — "
        f"{'fits' if worst <= headroom else 'DOES NOT FIT'}",
        f"  hash tables: "
        + ", ".join(
            f"J{tm.index}:{tm.hash_tables}x{tm.table_tuples:.0f}t" for tm in tables
        ),
    ]
    return "\n".join(lines)
