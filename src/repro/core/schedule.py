"""Parallel schedules: the common output language of all four strategies.

A strategy turns (join tree, catalog, processor count) into a
:class:`ParallelSchedule`: one :class:`JoinTask` per join, each with an
explicit processor set, join algorithm, per-operand input mode, and
barrier dependencies.  The execution engines (real and simulated)
consume this representation, so strategies stay pure planning code.

Input modes (how a join operand reaches the task's processes):

* ``base`` — a base relation with ideal initial fragmentation
  (Section 4.1): the fragments already sit in the local memories of the
  task's own processors, hashed on the join attribute, so consuming a
  tuple costs 1 unit and no redistribution streams are needed.
* ``materialized`` — an intermediate result stored at the producer's
  processors; it is redistributed over the network once the producer
  has completed (and, for simple hash-joins, may then be consumed).
  Costs 2 units per tuple and n×m handshakes.
* ``pipelined`` — an intermediate result streamed tuple-wise while the
  producer is still running.  Same per-tuple and handshake costs as
  ``materialized``; the difference is purely temporal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple, Union

from .trees import Join, Leaf, Node, joins_postorder

#: Valid input modes (see module docstring).
INPUT_MODES = ("base", "materialized", "pipelined")

#: Valid join algorithms: the paper's two hash joins (Section 2.3.2).
ALGORITHMS = ("simple", "pipelining")


@dataclass(frozen=True)
class InputSpec:
    """How one operand of a join task is delivered.

    ``source`` is the leaf name for ``base`` mode, or the producing
    task's postorder index for intermediate modes.
    """

    mode: str
    source: Union[str, int]

    def __post_init__(self) -> None:
        if self.mode not in INPUT_MODES:
            raise ValueError(f"unknown input mode {self.mode!r}")
        if self.mode == "base" and not isinstance(self.source, str):
            raise ValueError("base inputs are sourced from a relation name")
        if self.mode != "base" and not isinstance(self.source, int):
            raise ValueError("intermediate inputs are sourced from a task index")

    @property
    def is_base(self) -> bool:
        return self.mode == "base"


@dataclass(frozen=True)
class JoinTask:
    """One join operation of the schedule.

    ``index`` is the join's postorder position in the tree — the stable
    identifier every map in the engines is keyed by.  ``start_after``
    lists task indices that must *complete* before this task's
    processes begin working (strategy-imposed barriers, e.g. SP's
    sequential chain or RD's segment ordering).
    """

    index: int
    join: Join
    processors: Tuple[int, ...]
    algorithm: str
    left_input: InputSpec
    right_input: InputSpec
    start_after: Tuple[int, ...] = ()
    build_side: str = "left"
    phase: int = 0

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.build_side not in ("left", "right"):
            raise ValueError(f"build_side must be 'left' or 'right'")
        if not self.processors:
            raise ValueError(f"task {self.index} has no processors")
        if len(set(self.processors)) != len(self.processors):
            raise ValueError(f"task {self.index} has duplicate processors")
        if self.algorithm == "simple":
            build = self.left_input if self.build_side == "left" else self.right_input
            if build.mode == "pipelined":
                raise ValueError(
                    "the simple hash-join cannot pipeline its build operand "
                    f"(task {self.index})"
                )

    def inputs(self) -> Tuple[InputSpec, InputSpec]:
        return (self.left_input, self.right_input)

    @property
    def parallelism(self) -> int:
        """Degree of intra-operator parallelism of this join."""
        return len(self.processors)


class ScheduleError(ValueError):
    """A structurally invalid parallel schedule."""


@dataclass
class ParallelSchedule:
    """A complete parallel execution plan for a join tree.

    ``tasks`` are in postorder (consistent with their ``index``
    fields).  :meth:`validate` checks the invariants every engine
    relies on; strategies call it before returning.
    """

    strategy: str
    tree: Node
    processors: int
    tasks: List[JoinTask]

    def task_for(self, join: Join) -> JoinTask:
        """The task executing ``join`` (identity lookup)."""
        for task in self.tasks:
            if task.join is join:
                return task
        raise KeyError(f"no task for join {join}")

    def root_task(self) -> JoinTask:
        """The task producing the query result (the last postorder task)."""
        return self.tasks[-1]

    def operation_processes(self) -> int:
        """Total operation processes the scheduler must initialize.

        The paper's startup metric: SP uses #joins × #processors of
        these (800 at 80 processors), FP only one per processor.
        """
        return sum(task.parallelism for task in self.tasks)

    def stream_count(self) -> int:
        """Total network tuple streams (sender × receiver per
        redistributed operand) — the paper's coordination metric."""
        streams = 0
        by_index = {t.index: t for t in self.tasks}
        for task in self.tasks:
            for spec in task.inputs():
                if not spec.is_base:
                    producer = by_index[spec.source]
                    streams += producer.parallelism * task.parallelism
        return streams

    # -- ordering -------------------------------------------------------

    def ordering_edges(self) -> Set[Tuple[int, int]]:
        """Direct (before, after) pairs: barriers plus materialized
        producer→consumer edges."""
        edges: Set[Tuple[int, int]] = set()
        for task in self.tasks:
            for dep in task.start_after:
                edges.add((dep, task.index))
            for spec in task.inputs():
                if spec.mode == "materialized":
                    edges.add((spec.source, task.index))
        return edges

    def happens_before(self) -> Dict[int, Set[int]]:
        """Transitive closure: for each task, the tasks strictly before it."""
        direct: Dict[int, Set[int]] = {t.index: set() for t in self.tasks}
        for before, after in self.ordering_edges():
            direct[after].add(before)
        closed: Dict[int, Set[int]] = {}
        for task in self.tasks:  # postorder: dependencies have lower depth
            pending = list(direct[task.index])
            seen: Set[int] = set()
            while pending:
                dep = pending.pop()
                if dep in seen:
                    continue
                seen.add(dep)
                pending.extend(closed.get(dep, direct[dep]))
            closed[task.index] = seen
        return closed

    def may_overlap(self, a: JoinTask, b: JoinTask) -> bool:
        """Whether two tasks can be active simultaneously."""
        before = self.happens_before()
        return a.index not in before[b.index] and b.index not in before[a.index]

    # -- validation -------------------------------------------------------

    def validate(self) -> "ParallelSchedule":
        """Check structural invariants; returns self for chaining.

        * exactly one task per join of the tree, indices postorder;
        * input sources match the tree's child structure;
        * processor ids within ``range(processors)``;
        * concurrently runnable tasks use disjoint processors (the
          paper never lets one processor work on two joins at once);
        * ordering contains no cycles (guaranteed by index monotonicity
          checks here).
        """
        joins = joins_postorder(self.tree)
        if len(self.tasks) != len(joins):
            raise ScheduleError(
                f"{len(self.tasks)} tasks for {len(joins)} joins"
            )
        for i, (task, join) in enumerate(zip(self.tasks, joins)):
            if task.index != i:
                raise ScheduleError(f"task {i} carries index {task.index}")
            if task.join is not join:
                raise ScheduleError(f"task {i} is not bound to postorder join {i}")
        index_of = {id(join): i for i, join in enumerate(joins)}
        for task in self.tasks:
            for side, spec in (("left", task.left_input), ("right", task.right_input)):
                child = getattr(task.join, side)
                if isinstance(child, Leaf):
                    if not spec.is_base or spec.source != child.name:
                        raise ScheduleError(
                            f"task {task.index} {side} input must be base "
                            f"relation {child.name!r}, got {spec}"
                        )
                else:
                    if spec.is_base or spec.source != index_of[id(child)]:
                        raise ScheduleError(
                            f"task {task.index} {side} input must come from "
                            f"task {index_of[id(child)]}, got {spec}"
                        )
            for proc in task.processors:
                if not 0 <= proc < self.processors:
                    raise ScheduleError(
                        f"task {task.index} uses processor {proc} outside "
                        f"0..{self.processors - 1}"
                    )
            for dep in task.start_after:
                if not 0 <= dep < len(self.tasks):
                    raise ScheduleError(f"task {task.index} depends on unknown task {dep}")
                if dep == task.index:
                    raise ScheduleError(f"task {task.index} depends on itself")
        before = self.happens_before()
        for idx, deps in before.items():
            if idx in deps:
                raise ScheduleError(f"ordering cycle through task {idx}")
        for i, a in enumerate(self.tasks):
            for b in self.tasks[i + 1:]:
                if self.may_overlap(a, b) and set(a.processors) & set(b.processors):
                    raise ScheduleError(
                        f"tasks {a.index} and {b.index} may overlap but share "
                        f"processors {sorted(set(a.processors) & set(b.processors))}"
                    )
        return self

    def describe(self) -> str:
        """Human-readable one-line-per-task summary."""
        lines = [f"{self.strategy} schedule on {self.processors} processors:"]
        for task in self.tasks:
            procs = task.processors
            span = (
                f"{procs[0]}-{procs[-1]}"
                if procs == tuple(range(procs[0], procs[-1] + 1))
                else ",".join(map(str, procs))
            )
            deps = f" after {list(task.start_after)}" if task.start_after else ""
            lines.append(
                f"  join#{task.index} [{task.join.label or ''}] "
                f"{task.algorithm} on procs {span} "
                f"L={task.left_input.mode} R={task.right_input.mode}{deps}"
            )
        return "\n".join(lines)
