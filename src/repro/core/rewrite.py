"""Cost-free tree rewrites (Section 5).

"RD does not work too well for trees that contain left-deep segments.
However, it is possible without cost penalty to mirror (parts of) a
query to make it more right-oriented, so that in practice RD is
expected to work quite well."

Join is commutative and the paper's cost formula is symmetric in its
operands' *kinds* (base operands cost 1, intermediates 2, regardless
of side), so swapping the children of any join changes neither the
total cost nor the result — only the shape the parallelizer sees.
:func:`right_orient` applies the rewrite everywhere it lengthens the
right-deep segments; :func:`left_orient` is its mirror image.
"""

from __future__ import annotations

from .trees import Join, Leaf, Node, mirror


def right_orient(node: Node) -> Node:
    """Swap join operands, bottom-up, so deeper subtrees hang right.

    The result has maximal right-deep segments for its shape: a
    left-linear tree becomes right-linear, the left-oriented bushy tree
    becomes the right-oriented one, and already right-oriented trees
    are returned unchanged (structurally).  Leaves, labels and work
    annotations are preserved; only operand order changes.
    """
    if isinstance(node, Leaf):
        return node
    left = right_orient(node.left)
    right = right_orient(node.right)
    if _segment_depth(left) > _segment_depth(right):
        left, right = right, left
    return Join(left, right, label=node.label, work=node.work)


def left_orient(node: Node) -> Node:
    """The mirror-image rewrite: deeper subtrees hang left."""
    return mirror(right_orient(node))


def _segment_depth(node: Node) -> int:
    """Length of the right-deep chain starting at ``node``.

    Swapping by chain length (rather than raw height) is what actually
    lengthens the probe pipelines RD exploits.
    """
    depth = 0
    while isinstance(node, Join):
        depth += 1
        node = node.right
    return depth


def orientation_gain(node: Node) -> int:
    """How many joins :func:`right_orient` would swap (0 = already
    right-oriented)."""
    if isinstance(node, Leaf):
        return 0
    gain = orientation_gain(node.left) + orientation_gain(node.right)
    if _segment_depth(right_orient(node.left)) > _segment_depth(
        right_orient(node.right)
    ):
        gain += 1
    return gain
