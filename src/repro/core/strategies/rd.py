"""Segmented Right-Deep execution (RD, Section 3.3, [CLY92]).

The bushy tree is decomposed into right-deep segments (Figure 5).
Within a segment every join is assigned processors proportionally to
its estimated work; all hash tables are built in parallel from the
joins' left operands, and the bottom base relation is then probed
through the segment in one pipeline (simple hash-join, pipelining
along the probe operand only).  Segments in a producer-consumer
relationship run sequentially; independent segments run in parallel on
disjoint processor subsets sized proportionally to segment work.

Degenerations the paper points out and the tests pin down: on a
left-linear tree every segment is a single join, so RD collapses to
SP; on a right-linear tree the whole query is one segment, so RD
coincides with FP (modulo the join algorithm).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..allocation import allocate_ranges
from ..cost import Catalog, CostModel
from ..schedule import InputSpec, JoinTask, ParallelSchedule
from ..trees import Leaf, Node, joins_postorder
from .base import Strategy, postorder_index, register
from .segments import decompose, waves


@register
class SegmentedRightDeep(Strategy):
    """Right-deep segments, pipelined inside, sequenced between."""

    name = "RD"
    title = "Segmented Right-Deep"
    algorithm = "simple"

    def _plan(
        self,
        tree: Node,
        catalog: Catalog,
        processors: int,
        cost_model: CostModel,
    ) -> ParallelSchedule:
        index = postorder_index(tree)
        annotation = cost_model.annotate(tree, catalog)
        segments = decompose(tree)
        plan_waves = waves(segments)

        assignment: Dict[int, Tuple[int, ...]] = {}
        barriers: Dict[int, Tuple[int, ...]] = {}
        #: Joins whose in-segment probe edge had to be sequentialized
        #: (materialized) because the segment got fewer processors than
        #: it has joins.
        sequential_right: set = set()
        previous_wave_tasks: Tuple[int, ...] = ()
        all_procs = tuple(range(processors))

        for wave in plan_waves:
            # A wave can hold more segments than there are processors
            # (tiny machines): run it in sequential groups of at most
            # ``processors`` segments.
            for at in range(0, len(wave), processors):
                group = wave[at:at + processors]
                weights = [segment.work(annotation) for segment in group]
                ranges = allocate_ranges(weights, all_procs)
                group_tasks: List[int] = []
                for segment, procs in zip(group, ranges):
                    if len(segment) <= len(procs):
                        join_weights = [annotation[j].cost for j in segment.joins]
                        join_ranges = allocate_ranges(join_weights, procs)
                        for join, join_procs in zip(segment.joins, join_ranges):
                            i = index[id(join)]
                            assignment[i] = join_procs
                            barriers[i] = previous_wave_tasks
                            group_tasks.append(i)
                    else:
                        # Fewer processors than joins: the segment
                        # cannot pipeline; its joins run one after
                        # another on the whole subset (local SP).
                        chain = list(reversed(segment.joins))  # bottom-up
                        previous: Tuple[int, ...] = previous_wave_tasks
                        for join in chain:
                            i = index[id(join)]
                            assignment[i] = procs
                            barriers[i] = previous
                            sequential_right.add(i)
                            group_tasks.append(i)
                            previous = (i,)
                previous_wave_tasks = tuple(sorted(group_tasks))

        tasks: List[JoinTask] = []
        for i, join in enumerate(joins_postorder(tree)):
            left = join.left
            right = join.right
            if isinstance(left, Leaf):
                left_input = InputSpec("base", left.name)
            else:
                # Left operands always come from an earlier wave's
                # segment: materialized.
                left_input = InputSpec("materialized", index[id(left)])
            if isinstance(right, Leaf):
                right_input = InputSpec("base", right.name)
            elif i in sequential_right:
                # Degenerate (undersized) segment: probe operand is
                # stored and consumed after its producer finishes.
                right_input = InputSpec("materialized", index[id(right)])
            else:
                # Right join children are, by construction of the
                # segmentation, in the same segment: pipelined probes.
                right_input = InputSpec("pipelined", index[id(right)])
            tasks.append(
                JoinTask(
                    index=i,
                    join=join,
                    processors=assignment[i],
                    algorithm="simple",
                    left_input=left_input,
                    right_input=right_input,
                    start_after=barriers[i],
                    build_side="left",
                )
            )
        return ParallelSchedule("RD", tree, processors, tasks)
