"""Synchronous Execution (SE, Section 3.2, [CYW92]).

Inter-operator parallelism between *independent subtrees* of a bushy
tree, on top of intra-operator parallelism.  A join starts only after
both operands are complete (no pipelining, simple hash-join).  When
both children of a join are themselves joins, the available processors
are split over the two subtrees proportionally to the total amount of
work in each subtree, aiming for both operands to become ready at the
same moment; the join itself then runs on the union of the subtree
processors.  On linear trees there are no independent subtrees, so SE
degenerates to SP — exactly what Figures 9 and 13 show.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..allocation import allocate_ranges
from ..cost import Catalog, CostModel
from ..schedule import InputSpec, JoinTask, ParallelSchedule
from ..trees import Join, Leaf, Node, joins_postorder
from .base import Strategy, postorder_index, register


@register
class SynchronousExecution(Strategy):
    """Independent subtrees in parallel; dependent joins synchronous."""

    name = "SE"
    title = "Synchronous Execution"
    algorithm = "simple"

    def _plan(
        self,
        tree: Node,
        catalog: Catalog,
        processors: int,
        cost_model: CostModel,
    ) -> ParallelSchedule:
        index = postorder_index(tree)
        subtree_cost = cost_model.subtree_costs(tree, catalog)
        assignment: Dict[int, Tuple[int, ...]] = {}
        dependencies: Dict[int, Tuple[int, ...]] = {}

        def allocate(
            join: Join, procs: Tuple[int, ...], after: Tuple[int, ...] = ()
        ) -> int:
            """Assign ``procs`` to the subtree rooted at ``join``;
            returns the root task index of the subtree.  ``after``
            barriers the subtree's earliest tasks (used when sibling
            subtrees must share processors sequentially)."""
            left, right = join.left, join.right
            deps: List[int] = []
            if isinstance(left, Join) and isinstance(right, Join):
                if len(procs) >= 2:
                    weights = [subtree_cost[left], subtree_cost[right]]
                    left_procs, right_procs = allocate_ranges(weights, procs)
                    deps.append(allocate(left, left_procs, after))
                    deps.append(allocate(right, right_procs, after))
                else:
                    # Too few processors to run the subtrees in
                    # parallel: evaluate them one after the other on
                    # the whole (single-processor) set — SE degrades
                    # gracefully toward SP.
                    left_root = allocate(left, procs, after)
                    deps.append(left_root)
                    deps.append(allocate(right, procs, (left_root,)))
            elif isinstance(left, Join):
                deps.append(allocate(left, procs, after))
            elif isinstance(right, Join):
                deps.append(allocate(right, procs, after))
            i = index[id(join)]
            assignment[i] = procs
            dependencies[i] = tuple(deps) if deps else after
            return i

        allocate(tree, tuple(range(processors)))

        tasks: List[JoinTask] = []
        for i, join in enumerate(joins_postorder(tree)):
            tasks.append(
                JoinTask(
                    index=i,
                    join=join,
                    processors=assignment[i],
                    algorithm="simple",
                    left_input=_input(join.left, index),
                    right_input=_input(join.right, index),
                    start_after=dependencies[i],
                )
            )
        return ParallelSchedule("SE", tree, processors, tasks)


def _input(child: Node, index) -> InputSpec:
    if isinstance(child, Leaf):
        return InputSpec("base", child.name)
    return InputSpec("materialized", index[id(child)])
