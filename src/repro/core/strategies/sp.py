"""Sequential Parallel execution (SP, Section 3.1).

The simplest parallelization: no inter-operator parallelism at all.
The joins run one after another in postorder, each using *all*
available processors with the simple hash-join.  Idealized load
balancing is perfect and no cost function is needed, but the strategy
pays for it in overhead: #joins × #processors operation processes must
be started (800 at 80 processors for the ten-way query) and every
intermediate result is refragmented over the full machine, generating
n×m tuple streams per operand (6400 at 80 processors).
"""

from __future__ import annotations

from typing import List

from ..cost import Catalog, CostModel
from ..schedule import InputSpec, JoinTask, ParallelSchedule
from ..trees import Leaf, Node, joins_postorder
from .base import Strategy, postorder_index, register


@register
class SequentialParallel(Strategy):
    """Joins in sequence, each on the whole machine."""

    name = "SP"
    title = "Sequential Parallel"
    algorithm = "simple"
    needs_cost_function = False

    def _plan(
        self,
        tree: Node,
        catalog: Catalog,
        processors: int,
        cost_model: CostModel,
    ) -> ParallelSchedule:
        index = postorder_index(tree)
        all_procs = tuple(range(processors))
        tasks: List[JoinTask] = []
        for i, join in enumerate(joins_postorder(tree)):
            tasks.append(
                JoinTask(
                    index=i,
                    join=join,
                    processors=all_procs,
                    algorithm="simple",
                    left_input=_materialized(join.left, index),
                    right_input=_materialized(join.right, index),
                    start_after=(i - 1,) if i > 0 else (),
                    phase=i,
                )
            )
        return ParallelSchedule("SP", tree, processors, tasks)


def _materialized(child: Node, index) -> InputSpec:
    if isinstance(child, Leaf):
        return InputSpec("base", child.name)
    return InputSpec("materialized", index[id(child)])
