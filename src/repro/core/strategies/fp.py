"""Full Parallel execution (FP, Section 3.4, [WiA91, WAF91]).

Every join gets a private set of processors sized proportionally to
its estimated work, and *all* joins run concurrently from the start.
The pipelining hash-join allows dataflow along both operands, so the
whole tree executes as one dataflow network: independent subtrees give
inter-operator parallelism, producer-consumer edges give pipelining.
Only one operation process per processor is started (the smallest
startup overhead of the four strategies), but the processors are
spread over all operations, so FP is most exposed to discretization
error, and deep trees expose it to pipeline delay.
"""

from __future__ import annotations

from typing import List

from ..allocation import allocate_ranges
from ..cost import Catalog, CostModel
from ..schedule import InputSpec, JoinTask, ParallelSchedule
from ..trees import Leaf, Node, joins_postorder
from .base import Strategy, postorder_index, register


@register
class FullParallel(Strategy):
    """All joins at once: pipelining plus independent parallelism."""

    name = "FP"
    title = "Full Parallel"
    algorithm = "pipelining"

    def _plan(
        self,
        tree: Node,
        catalog: Catalog,
        processors: int,
        cost_model: CostModel,
    ) -> ParallelSchedule:
        index = postorder_index(tree)
        annotation = cost_model.annotate(tree, catalog)
        joins = joins_postorder(tree)
        weights = [annotation[j].cost for j in joins]
        ranges = allocate_ranges(weights, tuple(range(processors)))

        tasks: List[JoinTask] = []
        for i, (join, procs) in enumerate(zip(joins, ranges)):
            tasks.append(
                JoinTask(
                    index=i,
                    join=join,
                    processors=procs,
                    algorithm="pipelining",
                    left_input=_pipelined(join.left, index),
                    right_input=_pipelined(join.right, index),
                )
            )
        return ParallelSchedule("FP", tree, processors, tasks)


def _pipelined(child: Node, index) -> InputSpec:
    if isinstance(child, Leaf):
        return InputSpec("base", child.name)
    return InputSpec("pipelined", index[id(child)])
