"""Strategy interface and registry.

A strategy is phase two of the paper's two-phase approach: it takes a
join tree (already chosen for minimal total cost), the catalog, and a
processor count, and produces a validated
:class:`~repro.core.schedule.ParallelSchedule`.  All four paper
strategies register themselves here; :func:`get_strategy` resolves the
short names used throughout the benchmarks ("SP", "SE", "RD", "FP").
"""

from __future__ import annotations

import abc
from typing import Dict, List, Type

from ..cost import Catalog, CostModel
from ..schedule import ParallelSchedule
from ..trees import Node, joins_postorder, num_joins


class Strategy(abc.ABC):
    """Base class of the four parallel execution strategies."""

    #: Short name as the paper uses it ("SP", "SE", "RD", "FP").
    name: str = "?"
    #: Long descriptive name.
    title: str = "?"
    #: Hash-join variant the strategy runs ("simple" or "pipelining").
    algorithm: str = "simple"
    #: Whether the strategy needs a cost function (SP famously does not).
    needs_cost_function: bool = True

    def schedule(
        self,
        tree: Node,
        catalog: Catalog,
        processors: int,
        cost_model: CostModel = CostModel(),
    ) -> ParallelSchedule:
        """Plan ``tree`` on ``processors`` processors; validated."""
        if processors < 1:
            raise ValueError("need at least one processor")
        if num_joins(tree) == 0:
            raise ValueError("tree has no joins to schedule")
        from ..trees import leaf_names

        for name in leaf_names(tree):
            catalog.cardinality_of(name)  # fail fast on unknown relations
        plan = self._plan(tree, catalog, processors, cost_model)
        return plan.validate()

    @abc.abstractmethod
    def _plan(
        self,
        tree: Node,
        catalog: Catalog,
        processors: int,
        cost_model: CostModel,
    ) -> ParallelSchedule:
        """Strategy-specific planning; subclasses implement this."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


#: Registry of strategy short name → class, filled by the submodules.
_REGISTRY: Dict[str, Type[Strategy]] = {}


def register(cls: Type[Strategy]) -> Type[Strategy]:
    """Class decorator adding a strategy to the registry."""
    _REGISTRY[cls.name] = cls
    return cls


def get_strategy(name: str) -> Strategy:
    """Instantiate the strategy registered under ``name`` (e.g. "FP")."""
    try:
        return _REGISTRY[name.upper()]()
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def strategy_names() -> List[str]:
    """Registered short names in the paper's presentation order."""
    order = ["SP", "SE", "RD", "FP"]
    return [n for n in order if n in _REGISTRY] + sorted(
        n for n in _REGISTRY if n not in order
    )


def postorder_index(tree: Node) -> Dict[int, int]:
    """Map ``id(join)`` → postorder index (tasks are keyed this way)."""
    return {id(j): i for i, j in enumerate(joins_postorder(tree))}
