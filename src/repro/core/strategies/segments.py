"""Right-deep segmentation of bushy trees (Figure 5, [CLY92]).

A *segment* is a maximal chain of joins linked through right children:
within a segment all hash tables can be built in parallel from the
joins' left operands, after which the bottom base relation is probed
through the whole chain in one pipeline.  Any bushy tree decomposes
uniquely into such segments; a left-deep tree decomposes into
single-join segments (which is why RD degenerates to SP on it) and a
right-deep tree is a single segment (why RD coincides with FP).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..cost import JoinCost
from ..trees import Join, Leaf, Node


@dataclass
class Segment:
    """One right-deep segment.

    ``joins`` lists the member joins top-down: ``joins[k].right`` is
    ``joins[k+1]`` and the last join's right child is a base relation
    (the pipeline's probe source).  ``producers`` are the segments
    whose results feed this segment's left operands; the segment cannot
    start before all of them complete.
    """

    joins: List[Join]
    producers: List["Segment"] = field(default_factory=list)

    @property
    def top(self) -> Join:
        return self.joins[0]

    @property
    def bottom(self) -> Join:
        return self.joins[-1]

    @property
    def probe_relation(self) -> Leaf:
        """The base relation pumped through the probe pipeline."""
        right = self.bottom.right
        assert isinstance(right, Leaf)
        return right

    def __len__(self) -> int:
        return len(self.joins)

    def work(self, annotation: Dict[Join, JoinCost]) -> float:
        """Total estimated cost of the segment's joins."""
        return sum(annotation[j].cost for j in self.joins)

    def depth(self) -> int:
        """Longest producer chain below this segment (0 = no producers)."""
        if not self.producers:
            return 0
        return 1 + max(p.depth() for p in self.producers)


def decompose(root: Node) -> List[Segment]:
    """Split ``root`` into right-deep segments, root segment first.

    The returned list is in discovery (preorder) order; consumer
    segments appear before their producers.  ``root`` must be a join.
    """
    if not isinstance(root, Join):
        raise ValueError("cannot segment a single base relation")
    segments: List[Segment] = []

    def build(top: Join) -> Segment:
        chain: List[Join] = []
        node: Node = top
        while isinstance(node, Join):
            chain.append(node)
            node = node.right
        segment = Segment(chain)
        segments.append(segment)
        for join in chain:
            if isinstance(join.left, Join):
                segment.producers.append(build(join.left))
        return segment

    build(root)
    return segments


def waves(segments: List[Segment]) -> List[List[Segment]]:
    """Group segments into execution waves.

    Wave ``k`` holds the segments whose longest producer chain has
    length ``k``; the RD strategy runs waves sequentially and the
    segments within a wave in parallel on disjoint processor subsets.
    (Running each segment as soon as *its own* producers finish would
    need dynamic processor reassignment, which the static schedules of
    this reproduction — like the paper's XRA plans — do not express.)
    """
    by_depth: Dict[int, List[Segment]] = {}
    for segment in segments:
        by_depth.setdefault(segment.depth(), []).append(segment)
    return [by_depth[d] for d in sorted(by_depth)]
