"""The four parallel execution strategies of the paper (Section 3)."""

from .base import Strategy, get_strategy, strategy_names
from .fp import FullParallel
from .rd import SegmentedRightDeep
from .se import SynchronousExecution
from .segments import Segment, decompose, waves
from .sp import SequentialParallel

__all__ = [
    "FullParallel",
    "Segment",
    "SegmentedRightDeep",
    "SequentialParallel",
    "Strategy",
    "SynchronousExecution",
    "decompose",
    "get_strategy",
    "strategy_names",
    "waves",
]
