"""Integer processor allocation.

Every strategy except SP distributes a discrete number of processors
over operations proportionally to estimated work.  Because processors
and operations are both discrete, the distribution is generally unfair
— the paper's "4 pieces of candy over 3 kids" discretization error
(Section 3.5).  This module implements the largest-remainder method
the strategies share, contiguous range assignment, and the imbalance
metric the ablation benchmarks report.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def proportional_allocation(
    weights: Sequence[float], processors: int, minimum: int = 1
) -> List[int]:
    """Split ``processors`` over items proportionally to ``weights``.

    Largest-remainder (Hamilton) apportionment with a per-item floor of
    ``minimum``: each item first receives ``minimum`` processors, the
    rest are assigned by proportional quota, ties broken toward earlier
    items for determinism.  The result always sums to ``processors``.

    Raises ``ValueError`` when there are not enough processors to give
    every item its floor — the regime the paper avoids by never letting
    one processor work on two joins concurrently.
    """
    items = len(weights)
    if items == 0:
        raise ValueError("cannot allocate processors to zero items")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    if processors < items * minimum:
        raise ValueError(
            f"{processors} processors cannot give {items} operations "
            f"a minimum of {minimum} each"
        )
    total = float(sum(weights))
    if total == 0.0:
        quotas = [processors / items] * items
    else:
        quotas = [processors * w / total for w in weights]
    counts = [int(q) for q in quotas]
    remainders = [q - c for q, c in zip(quotas, counts)]
    shortfall = processors - sum(counts)
    # Hand out the remaining processors to the largest remainders;
    # ties broken by larger weight, then by position, for determinism.
    order = sorted(
        range(items), key=lambda i: (-remainders[i], -weights[i], i)
    )
    for i in order[:shortfall]:
        counts[i] += 1
    # Enforce the per-item floor by taking from the largest counts
    # (the paper never runs a join on zero processors).
    for i in range(items):
        while counts[i] < minimum:
            donor = max(
                (j for j in range(items) if counts[j] > minimum),
                key=lambda j: counts[j],
            )
            counts[donor] -= 1
            counts[i] += 1
    return counts


def assign_ranges(counts: Sequence[int], start: int = 0) -> List[Tuple[int, ...]]:
    """Turn per-item processor counts into disjoint contiguous id tuples.

    Item ``i`` receives ids ``[start + sum(counts[:i]), ...)``; the
    tuples partition ``range(start, start + sum(counts))``.
    """
    out: List[Tuple[int, ...]] = []
    cursor = start
    for count in counts:
        if count < 0:
            raise ValueError("counts must be non-negative")
        out.append(tuple(range(cursor, cursor + count)))
        cursor += count
    return out


def allocate_ranges(
    weights: Sequence[float], processors: Sequence[int], minimum: int = 1
) -> List[Tuple[int, ...]]:
    """Proportionally partition an explicit processor id list.

    Combines :func:`proportional_allocation` with a split of the given
    (not necessarily contiguous) processor ids, preserving their order.
    """
    counts = proportional_allocation(weights, len(processors), minimum)
    out: List[Tuple[int, ...]] = []
    cursor = 0
    for count in counts:
        out.append(tuple(processors[cursor:cursor + count]))
        cursor += count
    return out


def claim_lowest(free: Sequence[int], count: int) -> Tuple[int, ...]:
    """Deterministically pick the ``count`` lowest ids from ``free``.

    The shared-machine scheduler's claim rule: always the smallest
    free processor ids, so identical workloads claim identical
    processors regardless of release order.  Raises ``ValueError``
    when fewer than ``count`` ids are free.
    """
    if count < 1:
        raise ValueError("must claim at least one processor")
    if len(free) < count:
        raise ValueError(
            f"cannot claim {count} processors from {len(free)} free"
        )
    return tuple(sorted(free)[:count])


def discretization_error(weights: Sequence[float], counts: Sequence[int]) -> float:
    """Load-imbalance factor of an allocation, ≥ 1.0.

    The ratio of the actual makespan ``max_i(w_i / p_i)`` to the ideal
    fluid makespan ``sum(w) / sum(p)``.  1.0 means the discrete
    allocation is as good as splitting processors fractionally; the
    paper predicts the error shrinks as the processor/operation ratio
    grows (Section 3.5).
    """
    if len(weights) != len(counts):
        raise ValueError("weights and counts must have equal length")
    total_work = float(sum(weights))
    total_procs = sum(counts)
    if total_work == 0.0 or total_procs == 0:
        return 1.0
    ideal = total_work / total_procs
    makespan = 0.0
    for w, p in zip(weights, counts):
        if w > 0 and p == 0:
            return float("inf")
        if p > 0:
            makespan = max(makespan, w / p)
    return makespan / ideal
