"""The paper's cost model (Section 4.3).

For a main-memory join with operand cardinalities ``n1``/``n2`` and
result cardinality ``r``::

    cost = a*n1 + b*n2 + c*r

where ``a`` (resp. ``b``) is 1 if the operand is a base relation and 2
if it is an intermediate result, and ``c`` is always 2.  The unit is
"one action on a tuple" (hash, probe, receive from network, send over
network, create) — all taken to be the same order of magnitude.  The
paper argues a more precise estimate is pointless because the chosen
parallelization itself changes the true costs; the experiments show
this estimate yields plans with good parallel behaviour.

A :class:`Catalog` supplies base cardinalities and a join-result
estimator so the same machinery serves both the regular Wisconsin
query (every result equals its operands in size) and the optimizer's
selectivity-based estimation on irregular queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from .trees import Join, Leaf, Node, joins_postorder

#: Estimates the result cardinality of a join from operand cardinalities.
ResultEstimator = Callable[[float, float], float]


def one_to_one_estimator(n1: float, n2: float) -> float:
    """The regular query's estimator: joins are 1:1, result = min(n1, n2)."""
    return float(min(n1, n2))


def selectivity_estimator(selectivity: float) -> ResultEstimator:
    """Classic independence estimator: ``r = selectivity * n1 * n2``."""
    if selectivity < 0:
        raise ValueError("selectivity must be non-negative")

    def estimate(n1: float, n2: float) -> float:
        return selectivity * n1 * n2

    return estimate


@dataclass(frozen=True)
class Catalog:
    """Base-relation cardinalities plus a result-cardinality estimator.

    ``estimator`` maps operand cardinalities to a result cardinality;
    when finer estimates are available (the optimizer's query graphs),
    ``subset_estimator`` — mapping the *set of base relations* under a
    join to its cardinality — takes precedence.
    """

    cardinalities: Mapping[str, int]
    estimator: ResultEstimator = one_to_one_estimator
    subset_estimator: Optional[Callable[[frozenset], float]] = None

    @classmethod
    def regular(cls, names, cardinality: int) -> "Catalog":
        """Catalog of the paper's regular query: equal-size relations,
        one-to-one joins (Section 4.1)."""
        return cls({name: cardinality for name in names})

    def cardinality_of(self, name: str) -> int:
        """Cardinality of base relation ``name``."""
        try:
            return self.cardinalities[name]
        except KeyError:
            raise KeyError(f"relation {name!r} not in catalog") from None


@dataclass(frozen=True)
class JoinCost:
    """Annotated per-join quantities the strategies and simulator use."""

    n1: float            # left operand cardinality
    n2: float            # right operand cardinality
    result: float        # result cardinality
    left_base: bool      # left operand is a base relation
    right_base: bool     # right operand is a base relation
    cost: float          # a*n1 + b*n2 + c*r in tuple-action units


@dataclass(frozen=True)
class CostModel:
    """The §4.3 formula with its coefficients exposed for ablations."""

    base_coeff: float = 1.0          # a or b for a base-relation operand
    intermediate_coeff: float = 2.0  # a or b for an intermediate operand
    result_coeff: float = 2.0        # c

    def join_cost(
        self, n1: float, n2: float, result: float, left_base: bool, right_base: bool
    ) -> float:
        """Cost of one join in tuple-action units."""
        a = self.base_coeff if left_base else self.intermediate_coeff
        b = self.base_coeff if right_base else self.intermediate_coeff
        return a * n1 + b * n2 + self.result_coeff * result

    def annotate(self, root: Node, catalog: Catalog) -> Dict[Join, JoinCost]:
        """Cost-annotate every join of ``root`` bottom-up.

        Joins with an explicit ``work`` override (the Figure 2 example
        tree) keep their cardinalities but report ``work`` as cost.
        """
        annotation: Dict[Join, JoinCost] = {}
        leaf_sets: Dict[int, frozenset] = {}

        def cardinality(node: Node) -> float:
            if isinstance(node, Leaf):
                return float(catalog.cardinality_of(node.name))
            return annotation[node].result

        def leaf_set(node: Node) -> frozenset:
            if isinstance(node, Leaf):
                return frozenset((node.name,))
            return leaf_sets[id(node)]

        for join in joins_postorder(root):
            n1 = cardinality(join.left)
            n2 = cardinality(join.right)
            leaf_sets[id(join)] = leaf_set(join.left) | leaf_set(join.right)
            if catalog.subset_estimator is not None:
                result = catalog.subset_estimator(leaf_sets[id(join)])
            else:
                result = catalog.estimator(n1, n2)
            left_base = isinstance(join.left, Leaf)
            right_base = isinstance(join.right, Leaf)
            cost = (
                join.work
                if join.work is not None
                else self.join_cost(n1, n2, result, left_base, right_base)
            )
            annotation[join] = JoinCost(n1, n2, result, left_base, right_base, cost)
        return annotation

    def total_cost(self, root: Node, catalog: Catalog) -> float:
        """Total cost of the tree: the phase-one objective."""
        return sum(jc.cost for jc in self.annotate(root, catalog).values())

    def subtree_costs(self, root: Node, catalog: Catalog) -> Dict[Join, float]:
        """Total cost of each join's subtree (SE's allocation weight:
        processors proportional to the total amount of work in the
        subtree producing an operand, [CYW92])."""
        annotation = self.annotate(root, catalog)
        totals: Dict[Join, float] = {}
        for join in joins_postorder(root):  # postorder: children first
            total = annotation[join].cost
            for child in (join.left, join.right):
                if isinstance(child, Join):
                    total += totals[child]
            totals[join] = total
        return totals
