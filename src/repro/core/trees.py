"""Join trees.

The unit the whole paper operates on: a binary tree whose leaves are
base relations and whose internal nodes are joins.  Phase one of
two-phase optimization picks such a tree; the four strategies of the
paper (phase two) parallelize it.  This module is the tree ADT plus
the structural predicates the paper's discussion relies on (linear,
left/right-deep, orientation, segments are in
:mod:`repro.core.strategies.segments`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Union


@dataclass(frozen=True)
class Leaf:
    """A base-relation operand, referenced by name."""

    name: str

    def __str__(self) -> str:
        return self.name


class Join:
    """An internal join node.

    ``label`` is an optional display/work label (the Figure 2 example
    tree labels its joins with relative work amounts); ``work`` is an
    optional explicit relative work override used by the idealized
    utilization diagrams.  Identity (not structure) keys allocation
    maps, so two structurally equal nodes are distinct operations.
    """

    __slots__ = ("left", "right", "label", "work")

    def __init__(
        self,
        left: "Node",
        right: "Node",
        label: Optional[str] = None,
        work: Optional[float] = None,
    ):
        if not isinstance(left, (Leaf, Join)) or not isinstance(right, (Leaf, Join)):
            raise TypeError("Join operands must be Leaf or Join nodes")
        self.left = left
        self.right = right
        self.label = label
        self.work = work

    def __str__(self) -> str:
        tag = self.label or "⋈"
        return f"({self.left} {tag} {self.right})"

    def __repr__(self) -> str:
        return f"Join({self.left!r}, {self.right!r}, label={self.label!r})"


Node = Union[Leaf, Join]


def leaves(node: Node) -> List[Leaf]:
    """Leaves of the tree in left-to-right order."""
    if isinstance(node, Leaf):
        return [node]
    return leaves(node.left) + leaves(node.right)


def leaf_names(node: Node) -> List[str]:
    """Base-relation names in left-to-right order."""
    return [leaf.name for leaf in leaves(node)]


def joins_postorder(node: Node) -> List[Join]:
    """Join nodes in postorder (children before parents).

    This is the canonical execution order: a postorder prefix is always
    a valid sequential schedule, which is exactly what the Sequential
    Parallel strategy runs.
    """
    out: List[Join] = []

    def walk(n: Node) -> None:
        if isinstance(n, Join):
            walk(n.left)
            walk(n.right)
            out.append(n)

    walk(node)
    return out


def num_joins(node: Node) -> int:
    """Number of join operations (``len(leaves) - 1`` for any tree)."""
    return len(joins_postorder(node))


def height(node: Node) -> int:
    """Height of the tree; a leaf has height 0."""
    if isinstance(node, Leaf):
        return 0
    return 1 + max(height(node.left), height(node.right))


def parent_map(root: Node) -> dict:
    """Map from each join node to its parent join (root maps to None)."""
    parents = {}

    def walk(n: Node, parent: Optional[Join]) -> None:
        if isinstance(n, Join):
            parents[n] = parent
            walk(n.left, n)
            walk(n.right, n)

    walk(root, None)
    return parents


def is_linear(root: Node) -> bool:
    """True when every join has at most one join child (a linear tree)."""
    return all(
        isinstance(j.left, Leaf) or isinstance(j.right, Leaf)
        for j in joins_postorder(root)
    )


def is_left_linear(root: Node) -> bool:
    """True for left-linear trees: every join's right child is a leaf."""
    return all(isinstance(j.right, Leaf) for j in joins_postorder(root))


def is_right_linear(root: Node) -> bool:
    """True for right-linear trees: every join's left child is a leaf."""
    return all(isinstance(j.left, Leaf) for j in joins_postorder(root))


def is_bushy(root: Node) -> bool:
    """True when some join has two join children (a bushy tree)."""
    return any(
        isinstance(j.left, Join) and isinstance(j.right, Join)
        for j in joins_postorder(root)
    )


def orientation(root: Node) -> float:
    """Right-orientation score in ``[-1, 1]``.

    +1 for a right-linear tree, -1 for a left-linear tree, 0 for a
    perfectly balanced one: the mean over joins with exactly one join
    child of +1 (join child on the right) or -1 (on the left).
    """
    scores = []
    for j in joins_postorder(root):
        left_join = isinstance(j.left, Join)
        right_join = isinstance(j.right, Join)
        if left_join and not right_join:
            scores.append(-1.0)
        elif right_join and not left_join:
            scores.append(1.0)
    if not scores:
        return 0.0
    return sum(scores) / len(scores)


def mirror(node: Node) -> Node:
    """The left-right mirrored tree.

    Section 5 notes mirroring is free (join is commutative) and can
    make a tree right-oriented so that RD performs well on it.
    """
    if isinstance(node, Leaf):
        return node
    return Join(mirror(node.right), mirror(node.left), label=node.label, work=node.work)


def map_labels(root: Node, fn: Callable[[Join, int], Optional[str]]) -> Node:
    """Rebuild the tree assigning ``label = fn(join, postorder_index)``."""
    order = {j: i for i, j in enumerate(joins_postorder(root))}

    def walk(n: Node) -> Node:
        if isinstance(n, Leaf):
            return n
        return Join(walk(n.left), walk(n.right), label=fn(n, order[n]), work=n.work)

    return walk(root)


def structurally_equal(a: Node, b: Node) -> bool:
    """Structural equality (shape and leaf names; labels ignored)."""
    if isinstance(a, Leaf) or isinstance(b, Leaf):
        return isinstance(a, Leaf) and isinstance(b, Leaf) and a.name == b.name
    return structurally_equal(a.left, b.left) and structurally_equal(a.right, b.right)


def render(root: Node, indent: str = "  ") -> str:
    """Multi-line, top-down rendering of the tree for debugging."""
    lines: List[str] = []

    def walk(n: Node, depth: int) -> None:
        if isinstance(n, Leaf):
            lines.append(f"{indent * depth}{n.name}")
        else:
            lines.append(f"{indent * depth}⋈ {n.label or ''}".rstrip())
            walk(n.left, depth + 1)
            walk(n.right, depth + 1)

    walk(root, 0)
    return "\n".join(lines)
