"""Request handling for the JSONL query service.

Requests and responses are plain dicts so the service is trivially
testable without any I/O; :func:`serve` adds the line-delimited JSON
transport.  Every response carries ``"ok"``; failures come back as
``{"ok": False, "error": ...}`` instead of raising, so one malformed
request never kills the stream.

Only the simulating backends (``sim`` / ``ideal``) are served: they
are deterministic, run in simulated time, and cannot be wedged by a
request — a network-facing front-end must not fork real-data executor
threads per request.
"""

from __future__ import annotations

import json
from typing import Dict, IO, Optional

from ..core.shapes import SHAPE_NAMES

#: Backends a service request may ask for.
SERVICE_BACKENDS = ("sim", "ideal")

#: Keys an ``op: "query"`` request may carry.  Every op validates its
#: request strictly: an unknown key (``"deadine"``) is an error naming
#: the accepted keys, never a silently ignored typo.
_QUERY_KEYS = (
    "shape", "strategy", "processors", "backend", "cardinality",
    "skew_theta", "deadline",
)

#: Keys an ``op: "workload"`` request may pass through to
#: :func:`repro.api.run_workload`.
_WORKLOAD_KEYS = (
    "arrivals", "rate", "duration", "seed", "machine_size", "policy",
    "share", "strategy", "cardinality", "relations", "clients",
    "think_time", "queries_per_client", "max_concurrent", "queue_limit",
    "memory_budget_bytes", "skew_theta", "faults", "recovery",
    "max_retries", "retry_backoff", "deadline", "shed", "cancellations",
    "scheduler", "pool_size", "scheduling_cost", "tenants", "fast_path",
)

#: Keys an ``op: "cluster"`` request may pass through to
#: :func:`repro.api.run_cluster`.  ``faults``/``recovery`` inject
#: per-shard engine-level fault schedules; ``shard_faults`` through
#: ``failover`` are the resilience surface (passing any of them runs
#: the coordinated single-clock cluster).
_CLUSTER_KEYS = (
    "trace", "shards", "placement", "autoscale", "scale_max",
    "scale_min", "scale_cooldown", "workers",
    "arrivals", "rate", "duration", "seed", "machine_size", "policy",
    "share", "strategy", "cardinality", "relations", "clients",
    "think_time", "queries_per_client", "max_concurrent", "queue_limit",
    "memory_budget_bytes", "skew_theta", "deadline", "shed",
    "scheduler", "pool_size", "scheduling_cost", "tenants", "fast_path",
    "faults", "recovery", "max_retries", "retry_backoff",
    "shard_faults", "retry_budget", "hedge", "breaker", "throttle",
    "failover",
)

#: Keys a stats request may carry (``{"stats": true}`` or
#: ``{"op": "stats"}``).
_STATS_KEYS = ("stats",)


class QueryService:
    """Handler mapping request dicts to response dicts.

    Request handling is stateless; the service additionally keeps two
    pieces of observability state for the ``stats`` op — per-op served
    counters, and the engine/per-shard occupancy snapshot of the most
    recent workload or cluster run.
    """

    def __init__(self) -> None:
        self._served: Dict[str, int] = {}
        self._engine_stats: Optional[Dict] = None

    def handle(self, request) -> Dict:
        """Serve one request; never raises on bad input."""
        if not isinstance(request, dict):
            return self._error("request must be a JSON object")
        op = request.get("op")
        if op is None and request.get("stats"):
            op = "stats"
        try:
            if op == "query":
                return self._count(op, self._query(request))
            if op == "workload":
                return self._count(op, self._workload(request))
            if op == "cluster":
                return self._count(op, self._cluster(request))
            if op == "stats":
                return self._stats(request)
        except (ValueError, TypeError, KeyError) as exc:
            return self._error(str(exc))
        return self._error(
            f"unknown op {op!r}; expected 'query', 'workload', "
            f"'cluster', or 'stats'"
        )

    def _count(self, op: str, response: Dict) -> Dict:
        if response.get("ok"):
            self._served[op] = self._served.get(op, 0) + 1
        return response

    # -- the two operations -----------------------------------------------

    def _query(self, request: Dict) -> Dict:
        from ..api import DEFAULT_CARDINALITY, run
        from ..sim.run import QueryAbortedError

        unknown = self._unknown_keys(request, _QUERY_KEYS)
        if unknown:
            return self._error(
                f"unknown query parameters {unknown}; "
                f"accepted keys: {sorted(_QUERY_KEYS)}"
            )
        shape = request.get("shape", "wide_bushy")
        if shape not in SHAPE_NAMES:
            return self._error(
                f"unknown shape {shape!r}; expected one of {SHAPE_NAMES}"
            )
        backend = request.get("backend", "sim")
        if backend not in SERVICE_BACKENDS:
            return self._error(
                f"service backends are {SERVICE_BACKENDS}; got {backend!r}"
            )
        try:
            result = run(
                shape,
                request.get("strategy", "FP"),
                request.get("processors", 40),
                backend,
                cardinality=request.get("cardinality", DEFAULT_CARDINALITY),
                skew_theta=request.get("skew_theta", 0.0),
                deadline=request.get("deadline"),
            )
        except QueryAbortedError as exc:
            # The deadline fired: a well-formed request with a definite
            # (deterministic) outcome, not a service error.
            return {
                "ok": True,
                "op": "query",
                "shape": shape,
                "backend": backend,
                "aborted": True,
                "aborted_at": exc.at,
                "reason": exc.reason,
            }
        return {
            "ok": True,
            "op": "query",
            "shape": shape,
            "strategy": result.strategy,
            "processors": result.processors,
            "backend": backend,
            "response_time": result.response_time,
            "busy_time": result.busy_time(),
            "utilization": result.utilization(),
            "events": result.events,
            "result_tuples": result.result_tuples,
        }

    def _workload(self, request: Dict) -> Dict:
        from ..api import run_workload

        unknown = self._unknown_keys(
            request, _WORKLOAD_KEYS + ("shape", "rows")
        )
        if unknown:
            return self._error(
                f"unknown workload parameters {unknown}; accepted keys: "
                f"{sorted(_WORKLOAD_KEYS + ('shape', 'rows'))}"
            )
        options = {
            key: request[key] for key in _WORKLOAD_KEYS if key in request
        }
        if "deadline" in options and isinstance(options["deadline"], list):
            # JSON has no tuples; a two-element list is the (lo, hi)
            # deadline range form.
            options["deadline"] = tuple(options["deadline"])
        if "cancellations" in options:
            try:
                options["cancellations"] = [
                    (float(when), int(index))
                    for when, index in options["cancellations"]
                ]
            except (TypeError, ValueError) as exc:
                return self._error(
                    f"bad cancellations (expected [time, query] pairs): {exc}"
                )
        if "faults" in options:
            # Requests are JSON, so fault schedules arrive as the
            # FaultSchedule.to_payload() dict form.
            from ..faults import FaultSchedule

            try:
                options["faults"] = FaultSchedule.from_payload(
                    options["faults"]
                )
            except (TypeError, KeyError, ValueError) as exc:
                return self._error(f"bad fault schedule: {exc}")
        result = run_workload(request.get("shape", "wide_bushy"), **options)
        response = {
            "ok": True,
            "op": "workload",
            "policy": result.policy,
            "machine_size": result.machine_size,
            "submitted": len(result.records),
            "completed": len(result.completed()),
            "rejected": result.rejected_count(),
            "makespan": result.makespan,
            "throughput": result.throughput(),
            "utilization": result.utilization(),
            "latency": result.latency_stats(),
            "queue_delay_mean": result.mean_queue_delay(),
            "peak_in_flight": result.peak_in_flight,
        }
        if result.scheduler is not None:
            response["scheduler"] = result.scheduler
            response["scheduling_decisions"] = result.scheduling_decisions
        tenants = result.tenants()
        if tenants:
            response["tenants"] = result.tenant_summary()
        if result.faults_injected or result.failed_count():
            response["resilience"] = result.resilience_summary()
        if (
            result.shed_count()
            or result.cancelled_count()
            or result.deadline_missed_count()
        ):
            lifecycle = dict(result.lifecycle_summary())
            if tenants:
                lifecycle["tenants"] = {
                    name: {
                        "shed": result.shed_count(name),
                        "expired": result.expired_count(name),
                    }
                    for name in tenants
                }
            response["lifecycle"] = lifecycle
        if request.get("rows"):
            response["rows"] = result.rows()
        self._engine_stats = {
            "op": "workload",
            "machine_size": result.machine_size,
            "utilization": result.utilization(),
            "peak_in_flight": result.peak_in_flight,
            "peak_queued": result.peak_queued,
            "lifecycle": {
                "submitted": len(result.records),
                "completed": len(result.completed()),
                "rejected": result.rejected_count(),
                "shed": result.shed_count(),
                "expired": result.deadline_missed_count(),
                "cancelled": result.cancelled_count(),
                "failed": result.failed_count(),
            },
        }
        return response

    def _cluster(self, request: Dict) -> Dict:
        from ..api import run_cluster

        accepted = _CLUSTER_KEYS + ("shape", "rows")
        unknown = self._unknown_keys(request, accepted)
        if unknown:
            return self._error(
                f"unknown cluster parameters {unknown}; accepted keys: "
                f"{sorted(accepted)}"
            )
        options = {
            key: request[key] for key in _CLUSTER_KEYS if key in request
        }
        if "deadline" in options and isinstance(options["deadline"], list):
            options["deadline"] = tuple(options["deadline"])
        if "trace" in options:
            # Requests are JSON, so traces arrive as the
            # Trace.to_payload() dict form.
            from ..cluster import Trace

            try:
                options["trace"] = Trace.from_payload(options["trace"])
            except (TypeError, KeyError, ValueError) as exc:
                return self._error(f"bad trace: {exc}")
        if "shard_faults" in options:
            from ..faults import FaultSchedule

            try:
                options["shard_faults"] = FaultSchedule.from_payload(
                    options["shard_faults"]
                )
            except (TypeError, KeyError, ValueError) as exc:
                return self._error(f"bad fault schedule: {exc}")
        if "faults" in options:
            # Engine-level faults: one schedule for every shard, a
            # per-shard list (null = fault-free shard), or a
            # {shard: payload} map — JSON object keys are strings, so
            # the map form converts them back to shard indices.
            try:
                options["faults"] = self._parse_cluster_faults(
                    options["faults"]
                )
            except (TypeError, KeyError, ValueError) as exc:
                return self._error(f"bad fault schedule: {exc}")
        result = run_cluster(request.get("shape", "wide_bushy"), **options)
        response = {
            "ok": True,
            "op": "cluster",
            "shards": len(result.shards),
            "placement": result.placement,
            "autoscale": result.autoscale,
            "submitted": result.submitted_count(),
            "completed": result.completed_count(),
            "rejected": result.rejected_count(),
            "makespan": result.makespan,
            "goodput": result.goodput(),
            "latency": result.latency_stats(),
            "migrations": result.migrations,
            "per_shard": result.per_shard(),
        }
        if result.scale_ups() or result.scale_downs():
            response["scale_ups"] = result.scale_ups()
            response["scale_downs"] = result.scale_downs()
        resilience = getattr(result, "resilience", None)
        if resilience:
            # Coordinated-cluster runs carry the full resilience
            # telemetry, including per-shard abort/retry/hedge counts.
            response["resilience"] = resilience
            response["failed"] = result.failed_count()
        if request.get("rows"):
            response["rows"] = result.rows()
        lifecycle = {
            "submitted": result.submitted_count(),
            "completed": result.completed_count(),
            "useful": result.useful_count(),
            "rejected": result.rejected_count(),
        }
        if resilience:
            lifecycle["failed"] = result.failed_count()
        self._engine_stats = {
            "op": "cluster",
            "shards": result.per_shard(),
            "placement": result.placement,
            "autoscale": result.autoscale,
            "migrations": result.migrations,
            "lifecycle": lifecycle,
        }
        if resilience:
            self._engine_stats["resilience"] = resilience
        return response

    def _stats(self, request: Dict) -> Dict:
        unknown = self._unknown_keys(request, _STATS_KEYS)
        if unknown:
            return self._error(
                f"unknown stats parameters {unknown}; accepted keys: "
                f"{sorted(_STATS_KEYS)}"
            )
        return {
            "ok": True,
            "op": "stats",
            "served": dict(sorted(self._served.items())),
            "engine": self._engine_stats,
        }

    @staticmethod
    def _parse_cluster_faults(value):
        from ..faults import FaultSchedule

        if isinstance(value, dict) and "seed" in value:
            return FaultSchedule.from_payload(value)
        if isinstance(value, dict):
            return {
                int(shard): (
                    None
                    if payload is None
                    else FaultSchedule.from_payload(payload)
                )
                for shard, payload in value.items()
            }
        if isinstance(value, list):
            return [
                None if payload is None else FaultSchedule.from_payload(payload)
                for payload in value
            ]
        raise TypeError(
            "faults must be a FaultSchedule payload, a per-shard list, "
            "or a {shard: payload} map"
        )

    @staticmethod
    def _unknown_keys(request: Dict, accepted) -> list:
        return sorted(key for key in request if key not in accepted + ("op",))

    @staticmethod
    def _error(message: str) -> Dict:
        return {"ok": False, "error": message}


def serve(
    in_stream: IO[str],
    out_stream: IO[str],
    service: Optional[QueryService] = None,
) -> int:
    """Pump line-delimited JSON requests through a service.

    Blank lines are skipped; unparseable lines produce an error
    response on their line rather than aborting the stream.  Returns
    the number of requests served.
    """
    service = service or QueryService()
    served = 0
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            response = {"ok": False, "error": f"bad JSON: {exc}"}
        else:
            response = service.handle(request)
        out_stream.write(json.dumps(response, sort_keys=True) + "\n")
        out_stream.flush()
        served += 1
    return served
