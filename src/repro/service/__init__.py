"""The JSONL query service front-end.

One request per line in, one response per line out — the thinnest
possible "database server" over the reproduction.  A
:class:`~repro.service.frontend.QueryService` accepts ``op: "query"``
requests (one query through :func:`repro.api.run`, simulating backends
only) and ``op: "workload"`` requests (a whole traffic run through
:func:`repro.api.run_workload`), and :func:`~repro.service.frontend.serve`
pumps a line-delimited JSON stream through it.  ``python -m repro
serve`` wires that loop to stdin/stdout.
"""

from .frontend import QueryService, serve

__all__ = ["QueryService", "serve"]
