"""Sharded serving: a shared-nothing cluster of workload engines.

The subsystem has three pieces (DESIGN.md §7d):

:mod:`repro.cluster.router`
    The front-end — fans an arrival stream over N independent
    :class:`~repro.workload.WorkloadEngine` shards and merges the
    per-shard reports into a :class:`ClusterResult`.

:mod:`repro.cluster.trace`
    Deterministic trace record/replay — a frozen, JSON-round-trippable
    :class:`Trace` recorded from any workload run or synthesized at
    scale over a process pool, replayable bit for bit.

:mod:`repro.cluster.placement` / :mod:`repro.cluster.autoscale`
    The routing and elasticity policies: consistent tenant→shard
    hashing (plus ``least_loaded`` and ``round_robin``), and
    ``reactive``/``predictive`` autoscalers that grow and shrink a
    shard's pool in simulated time through the fault/repair machinery.

:mod:`repro.cluster.resilience` / :mod:`repro.cluster.chaos`
    Cluster-grade resilience (DESIGN.md §7e): the coordinated
    single-clock mode with shard failover, retry budgets, hedged
    requests, circuit breakers, and per-tenant rate SLOs — plus the
    seeded chaos-campaign harness that sweeps fault schedules over
    cluster shapes, asserts conservation/watchdog/determinism
    invariants, and delta-debugs failing schedules down to minimal
    regression fixtures.

The user-facing entry points are :func:`repro.api.run_cluster` and
``python -m repro cluster``.
"""

from .autoscale import (
    AUTOSCALE_NAMES,
    DEFAULT_COOLDOWN,
    Autoscaler,
    ElasticEngine,
    PredictiveAutoscaler,
    ReactiveAutoscaler,
    ScaleEvent,
    make_autoscaler,
)
from .placement import (
    PLACEMENT_NAMES,
    HashPlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    build_ring,
    make_placement,
    predict_service_time,
    ring_assignments,
    ring_lookup,
    ring_lookup_live,
)
from .chaos import (
    CampaignResult,
    ChaosPoint,
    run_chaos_campaign,
    shrink_schedule,
)
from .resilience import (
    BreakerPolicy,
    ClusterQueryRecord,
    HedgePolicy,
    ResilientCluster,
    ResilientClusterResult,
    ThrottlePolicy,
    run_resilient_cluster,
)
from .router import (
    SHARD_SEED_STRIDE,
    ClusterResult,
    ShardReport,
    resolve_shard_faults,
    run_cluster_shards,
    shard_seed,
    split_clients,
    split_open_arrivals,
)
from .trace import TRACE_VERSION, Trace, TraceQuery, synthesize_trace

__all__ = [
    "AUTOSCALE_NAMES",
    "Autoscaler",
    "BreakerPolicy",
    "CampaignResult",
    "ChaosPoint",
    "ClusterQueryRecord",
    "ClusterResult",
    "DEFAULT_COOLDOWN",
    "ElasticEngine",
    "HashPlacement",
    "HedgePolicy",
    "LeastLoadedPlacement",
    "PLACEMENT_NAMES",
    "PlacementPolicy",
    "PredictiveAutoscaler",
    "ReactiveAutoscaler",
    "ResilientCluster",
    "ResilientClusterResult",
    "RoundRobinPlacement",
    "SHARD_SEED_STRIDE",
    "ScaleEvent",
    "ShardReport",
    "TRACE_VERSION",
    "ThrottlePolicy",
    "Trace",
    "TraceQuery",
    "build_ring",
    "make_autoscaler",
    "make_placement",
    "predict_service_time",
    "resolve_shard_faults",
    "ring_assignments",
    "ring_lookup",
    "ring_lookup_live",
    "run_chaos_campaign",
    "run_cluster_shards",
    "run_resilient_cluster",
    "shard_seed",
    "shrink_schedule",
    "split_clients",
    "split_open_arrivals",
    "synthesize_trace",
]
