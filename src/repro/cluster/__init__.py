"""Sharded serving: a shared-nothing cluster of workload engines.

The subsystem has three pieces (DESIGN.md §7d):

:mod:`repro.cluster.router`
    The front-end — fans an arrival stream over N independent
    :class:`~repro.workload.WorkloadEngine` shards and merges the
    per-shard reports into a :class:`ClusterResult`.

:mod:`repro.cluster.trace`
    Deterministic trace record/replay — a frozen, JSON-round-trippable
    :class:`Trace` recorded from any workload run or synthesized at
    scale over a process pool, replayable bit for bit.

:mod:`repro.cluster.placement` / :mod:`repro.cluster.autoscale`
    The routing and elasticity policies: consistent tenant→shard
    hashing (plus ``least_loaded`` and ``round_robin``), and
    ``reactive``/``predictive`` autoscalers that grow and shrink a
    shard's pool in simulated time through the fault/repair machinery.

The user-facing entry points are :func:`repro.api.run_cluster` and
``python -m repro cluster``.
"""

from .autoscale import (
    AUTOSCALE_NAMES,
    DEFAULT_COOLDOWN,
    Autoscaler,
    ElasticEngine,
    PredictiveAutoscaler,
    ReactiveAutoscaler,
    ScaleEvent,
    make_autoscaler,
)
from .placement import (
    PLACEMENT_NAMES,
    HashPlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    build_ring,
    make_placement,
    predict_service_time,
    ring_assignments,
    ring_lookup,
)
from .router import (
    SHARD_SEED_STRIDE,
    ClusterResult,
    ShardReport,
    run_cluster_shards,
    shard_seed,
    split_clients,
    split_open_arrivals,
)
from .trace import TRACE_VERSION, Trace, TraceQuery, synthesize_trace

__all__ = [
    "AUTOSCALE_NAMES",
    "Autoscaler",
    "ClusterResult",
    "DEFAULT_COOLDOWN",
    "ElasticEngine",
    "HashPlacement",
    "LeastLoadedPlacement",
    "PLACEMENT_NAMES",
    "PlacementPolicy",
    "PredictiveAutoscaler",
    "ReactiveAutoscaler",
    "RoundRobinPlacement",
    "SHARD_SEED_STRIDE",
    "ScaleEvent",
    "ShardReport",
    "TRACE_VERSION",
    "Trace",
    "TraceQuery",
    "build_ring",
    "make_autoscaler",
    "make_placement",
    "predict_service_time",
    "ring_assignments",
    "ring_lookup",
    "run_cluster_shards",
    "shard_seed",
    "split_clients",
    "split_open_arrivals",
    "synthesize_trace",
]
