"""The cluster front-end: route, fan out, aggregate.

A cluster is N independent :class:`~repro.workload.WorkloadEngine`
shards — each with its own :class:`~repro.sim.events.SimulationClock`,
processor pool, scheduler, and admission control (shared-nothing, like
the paper's machine but one level up).  The router splits the arrival
stream across shards with a :class:`~repro.cluster.placement`
policy *before* any shard simulates, so every shard's run is
self-contained and the fan-out can use a process pool without
touching determinism: results are collected in shard order, and each
shard's simulation depends only on its own arrival list and seed.

House invariants, pinned by tests:

* ``shards=1`` with ``autoscale="static"`` is *byte-identical* to
  :func:`repro.api.run_workload` — the cluster layer is a strict
  superset of the single-engine workload path.
* A fixed-seed N-shard run emits identical JSONL at ``workers=1`` and
  ``workers=4``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..workload.engine import WorkloadEngine
from ..workload.metrics import percentile
from ..workload.mix import QuerySpec
from ..workload.policies import make_policy
from .autoscale import DEFAULT_COOLDOWN, ElasticEngine, make_autoscaler
from .placement import make_placement

#: Per-shard seed stride for closed-loop clients and deadline draws on
#: shards beyond the first.  Shard 0 keeps the caller's seed verbatim
#: (the 1-shard identity invariant); the stride is a prime far from
#: the engine's per-client stride (1_000_003) so shard streams never
#: collide with in-run generators.
SHARD_SEED_STRIDE = 10_000_019


def shard_seed(seed: int, shard: int) -> int:
    return seed if shard == 0 else seed + SHARD_SEED_STRIDE * shard


@dataclass
class ShardReport:
    """One shard's run, as plain picklable data (pool-safe)."""

    shard: int
    rows: List[Dict]
    machine_size: int        # base (provisioned) capacity
    policy: str
    makespan: float
    busy_seconds: float
    peak_in_flight: int
    peak_queued: int
    scheduler: Optional[str]
    scheduling_decisions: int
    fast_path_queries: int
    capacity_base: int
    capacity_max: int
    capacity_final: int
    scale_events: List[Dict] = field(default_factory=list)

    @property
    def scale_ups(self) -> int:
        return sum(1 for e in self.scale_events if e["to"] > e["from"])

    @property
    def scale_downs(self) -> int:
        return sum(1 for e in self.scale_events if e["to"] < e["from"])

    def completed_count(self) -> int:
        return sum(1 for r in self.rows if r["completed"] is not None)

    def useful_count(self) -> int:
        """Completions that met their deadline.  Deadlines are
        engine-enforced (a late runner is aborted), so a completed row
        with ``deadline_missed`` false *is* a useful completion."""
        return sum(
            1
            for r in self.rows
            if r["completed"] is not None and not r["deadline_missed"]
        )

    def latencies(self) -> List[float]:
        return [
            r["latency"] for r in self.rows if r["completed"] is not None
        ]

    def summary_dict(self) -> Dict:
        stats = _latency_stats(self.latencies())
        data = {
            "shard": self.shard,
            "submitted": len(self.rows),
            "completed": self.completed_count(),
            "useful": self.useful_count(),
            "makespan": self.makespan,
            "peak_in_flight": self.peak_in_flight,
            "peak_queued": self.peak_queued,
            "latency": stats,
            "capacity": {
                "base": self.capacity_base,
                "max": self.capacity_max,
                "final": self.capacity_final,
            },
        }
        if self.scale_events:
            data["scale_events"] = self.scale_events
        return data


def _latency_stats(values: Sequence[float]) -> Dict[str, Optional[float]]:
    if not values:
        return {"mean": None, "p50": None, "p95": None, "p99": None}
    values = list(values)
    return {
        "mean": sum(values) / len(values),
        "p50": percentile(values, 50.0),
        "p95": percentile(values, 95.0),
        "p99": percentile(values, 99.0),
    }


@dataclass
class ClusterResult:
    """Everything one cluster run produced, merged across shards."""

    shards: List[ShardReport]
    placement: str
    autoscale: str
    migrations: int = 0

    # -- merged rows ------------------------------------------------------

    def rows(self) -> List[Dict]:
        """Per-query JSONL rows in shard order.  A one-shard cluster
        emits its shard's rows *verbatim* (no ``shard`` key), so the
        1-shard cluster is byte-identical to the single-engine
        workload; multi-shard rows carry their shard index."""
        if len(self.shards) == 1:
            return self.shards[0].rows
        merged: List[Dict] = []
        for report in self.shards:
            for row in report.rows:
                merged.append({**row, "shard": report.shard})
        return merged

    def write_jsonl(self, path):
        from ..runner.results import write_jsonl

        return write_jsonl(path, self.rows())

    # -- cross-shard aggregates -------------------------------------------

    def submitted_count(self) -> int:
        return sum(len(report.rows) for report in self.shards)

    def completed_count(self) -> int:
        return sum(report.completed_count() for report in self.shards)

    def useful_count(self) -> int:
        return sum(report.useful_count() for report in self.shards)

    def rejected_count(self) -> int:
        return sum(
            1
            for report in self.shards
            for row in report.rows
            if row["rejected"]
        )

    @property
    def makespan(self) -> float:
        """Simulated time until the *last* shard drained."""
        return max((report.makespan for report in self.shards), default=0.0)

    def machine_size(self) -> int:
        """Total provisioned base capacity across shards."""
        return sum(report.machine_size for report in self.shards)

    def throughput(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.completed_count() / self.makespan

    def goodput(self) -> float:
        """Merged useful completions per simulated second."""
        if self.makespan <= 0:
            return 0.0
        return self.useful_count() / self.makespan

    def latency_stats(
        self, shard: Optional[int] = None
    ) -> Dict[str, Optional[float]]:
        """Global (or one shard's) mean/p50/p95/p99 latency."""
        if shard is not None:
            return _latency_stats(self.shards[shard].latencies())
        values: List[float] = []
        for report in self.shards:
            values.extend(report.latencies())
        return _latency_stats(values)

    def scale_events(self) -> List[Dict]:
        """Every shard's scale events, tagged with the shard index."""
        return [
            {**event, "shard": report.shard}
            for report in self.shards
            for event in report.scale_events
        ]

    def scale_ups(self) -> int:
        return sum(report.scale_ups for report in self.shards)

    def scale_downs(self) -> int:
        return sum(report.scale_downs for report in self.shards)

    def per_shard(self) -> List[Dict]:
        return [report.summary_dict() for report in self.shards]

    def summary(self) -> str:
        stats = self.latency_stats()
        if stats["p99"] is None:
            latency = "latency n/a (no completions)"
        else:
            latency = (
                f"latency p50 {stats['p50']:.2f}s "
                f"p95 {stats['p95']:.2f}s p99 {stats['p99']:.2f}s"
            )
        text = (
            f"cluster {len(self.shards)}x{self.shards[0].machine_size}p "
            f"({self.placement}/{self.autoscale}): "
            f"{self.completed_count()}/{self.submitted_count()} completed "
            f"({self.rejected_count()} rejected), "
            f"makespan {self.makespan:.1f}s, "
            f"goodput {self.goodput():.3f} q/s, {latency}"
        )
        if self.migrations:
            text += f", {self.migrations} tenant migrations"
        if self.scale_ups() or self.scale_downs():
            text += (
                f" | autoscale: {self.scale_ups()} ups, "
                f"{self.scale_downs()} downs"
            )
        per_shard = ", ".join(
            f"s{report.shard} {report.completed_count()}/{len(report.rows)}"
            for report in self.shards
        )
        if len(self.shards) > 1:
            text += f" | shards: {per_shard}"
        return text


# -- shard execution (process-pool entry points) --------------------------


def _build_engine(
    payload: Dict, *, clock=None, on_query_done=None
) -> WorkloadEngine:
    options = payload["engine"]
    policy = make_policy(options["policy"], options["share"])
    common = dict(
        config=options["config"],
        cost_model=options["cost_model"],
        skew_theta=options["skew_theta"],
        max_concurrent=options["max_concurrent"],
        queue_limit=options["queue_limit"],
        memory_budget_bytes=options["memory_budget_bytes"],
        rejected_retry_delay=options["rejected_retry_delay"],
        deadline=options["deadline"],
        deadline_seed=options["deadline_seed"],
        shed=options["shed"],
        watchdog_limit=options["watchdog_limit"],
        scheduler=options["scheduler"],
        pool_size=options["pool_size"],
        scheduling_cost=options["scheduling_cost"],
        tenants=options["tenants"],
        fast_path=options["fast_path"],
        # Engine-level fault schedule + recovery policy, per shard
        # (absent from pre-resilience payloads; .get keeps them valid).
        faults=options.get("faults"),
        recovery=options.get("recovery", "fail"),
        max_retries=options.get("max_retries", 3),
        retry_backoff=options.get("retry_backoff", 1.0),
        clock=clock,
        on_query_done=on_query_done,
    )
    autoscale = payload["autoscale"]
    if autoscale is None:
        return WorkloadEngine(options["machine_size"], policy, **common)
    return ElasticEngine(
        options["machine_size"],
        policy,
        autoscaler=make_autoscaler(autoscale["policy"]),
        scale_max=autoscale["scale_max"],
        scale_min=autoscale["scale_min"],
        scale_cooldown=autoscale["scale_cooldown"],
        **common,
    )


def run_shard(payload: Dict) -> ShardReport:
    """Run one shard end to end (module-level and picklable — the
    process-pool entry point)."""
    engine = _build_engine(payload)
    closed = payload.get("closed")
    if closed is not None:
        result = engine.run_closed(
            closed["mix"],
            closed["clients"],
            think_time=closed["think_time"],
            queries_per_client=closed["queries_per_client"],
            duration=closed["duration"],
            seed=closed["seed"],
        )
    else:
        result = engine.run_open(payload["arrivals"])
    if isinstance(engine, ElasticEngine):
        capacity = (engine.base_capacity, engine.scale_max, engine.capacity)
        events = [e.to_payload() for e in engine.scale_events]
        base = engine.base_capacity
    else:
        base = engine.machine.size
        capacity = (base, base, base)
        events = []
    return ShardReport(
        shard=payload["shard"],
        rows=result.rows(),
        machine_size=base,
        policy=result.policy,
        makespan=result.makespan,
        busy_seconds=result.busy_seconds,
        peak_in_flight=result.peak_in_flight,
        peak_queued=result.peak_queued,
        scheduler=result.scheduler,
        scheduling_decisions=result.scheduling_decisions,
        fast_path_queries=result.fast_path_queries,
        capacity_base=capacity[0],
        capacity_max=capacity[1],
        capacity_final=capacity[2],
        scale_events=events,
    )


# -- the cluster run ------------------------------------------------------


def split_open_arrivals(
    arrivals: Sequence[Tuple[float, QuerySpec]],
    shards: int,
    placement,
    context: Optional[Dict] = None,
) -> Tuple[List[List[Tuple[float, QuerySpec]]], int]:
    """Assign every arrival to a shard; returns the per-shard arrival
    lists (original time order preserved) and the tenant migration
    count (a tenant routed to a different shard than its previous
    query — nonzero only under load-aware or positional placement)."""
    placement = make_placement(placement)
    placement.reset(shards, context)
    per_shard: List[List[Tuple[float, QuerySpec]]] = [
        [] for _ in range(shards)
    ]
    last_shard: Dict[str, int] = {}
    migrations = 0
    for index, (time, spec) in enumerate(arrivals):
        shard = placement.place(index, time, spec)
        if not 0 <= shard < shards:
            raise ValueError(
                f"placement {placement.name!r} returned shard {shard} "
                f"outside [0, {shards})"
            )
        if spec.tenant is not None:
            previous = last_shard.get(spec.tenant)
            if previous is not None and previous != shard:
                migrations += 1
            last_shard[spec.tenant] = shard
        per_shard[shard].append((time, spec))
    return per_shard, migrations


def split_clients(clients: int, shards: int) -> List[int]:
    """Closed-loop client counts per shard (round-robin remainder)."""
    base, extra = divmod(clients, shards)
    return [base + (1 if shard < extra else 0) for shard in range(shards)]


def run_cluster_shards(
    *,
    shards: int,
    placement: str,
    autoscale: str,
    engine_options: Dict,
    open_arrivals: Optional[Sequence[Tuple[float, QuerySpec]]] = None,
    closed: Optional[Dict] = None,
    scale_max: Optional[int] = None,
    scale_min: Optional[int] = None,
    scale_cooldown: float = DEFAULT_COOLDOWN,
    workers: Optional[int] = None,
    placement_context: Optional[Dict] = None,
) -> ClusterResult:
    """Fan a pre-built arrival stream (or closed-loop population) over
    ``shards`` independent engines and merge the reports.

    ``engine_options`` carries the per-shard engine configuration (see
    :func:`run_shard`).  With ``workers`` > 1 the shards run on a
    process pool; the output is byte-identical to the serial run
    because every shard is self-contained and reports are collected in
    shard order.
    """
    if shards < 1:
        raise ValueError("a cluster needs at least one shard")
    if (open_arrivals is None) == (closed is None):
        raise ValueError("exactly one of open_arrivals/closed is required")
    placement_name = placement if isinstance(placement, str) else placement.name
    autoscale_name = autoscale or "static"
    autoscale_payload = None
    if autoscale_name != "static":
        base = engine_options["machine_size"]
        resolved_max = scale_max if scale_max is not None else 2 * base
        autoscale_payload = {
            "policy": autoscale_name,
            "scale_max": resolved_max,
            "scale_min": scale_min,
            "scale_cooldown": scale_cooldown,
        }
        if engine_options.get("share") is None:
            # An exclusive policy with no explicit share asks for the
            # whole machine — which at scale_max would never fit the
            # base capacity.  Pin the share to the base so elasticity
            # changes *concurrency*, not per-query feasibility.
            engine_options = {**engine_options, "share": base}

    shard_faults = resolve_shard_faults(
        engine_options.get("faults"), shards
    )
    migrations = 0
    payloads: List[Dict] = []
    if open_arrivals is not None:
        per_shard, migrations = split_open_arrivals(
            open_arrivals, shards, placement_name, placement_context
        )
        for shard in range(shards):
            payloads.append({
                "shard": shard,
                "arrivals": per_shard[shard],
                "engine": _shard_engine_options(
                    engine_options, shard, fault=shard_faults[shard]
                ),
                "autoscale": autoscale_payload,
            })
    else:
        counts = split_clients(closed["clients"], shards)
        for shard in range(shards):
            payloads.append({
                "shard": shard,
                "arrivals": None,
                "closed": {
                    **closed,
                    "clients": counts[shard],
                    "seed": shard_seed(closed["seed"], shard),
                },
                "engine": _shard_engine_options(
                    engine_options, shard, fault=shard_faults[shard]
                ),
                "autoscale": autoscale_payload,
            })
        payloads = [p for p in payloads if p["closed"]["clients"] > 0]

    reports = _execute(payloads, workers)
    return ClusterResult(
        shards=reports,
        placement=placement_name,
        autoscale=autoscale_name,
        migrations=migrations,
    )


def _shard_engine_options(
    engine_options: Dict, shard: int, fault=None
) -> Dict:
    """Per-shard engine options: shard 0 keeps the caller's seed (the
    1-shard identity invariant); later shards derive theirs.  ``fault``
    (from :func:`resolve_shard_faults`) replaces any multi-shard
    ``faults`` value with this shard's own schedule."""
    options = dict(engine_options)
    options["deadline_seed"] = shard_seed(options["deadline_seed"], shard)
    options["faults"] = fault
    return options


def resolve_shard_faults(faults, shards: int) -> List:
    """Per-shard fault schedules from a ``faults=`` argument.

    A single :class:`~repro.faults.FaultSchedule` applies to *every*
    shard (each engine builds its own injector, so sharing the
    schedule object is safe); a sequence of length ``shards`` (with
    ``None`` holes) or a ``{shard: schedule}`` dict targets shards
    individually.
    """
    if faults is None:
        return [None] * shards
    from ..faults import FaultSchedule

    if isinstance(faults, FaultSchedule):
        return [faults] * shards
    if isinstance(faults, dict):
        resolved: List = [None] * shards
        for shard, schedule in faults.items():
            if not isinstance(shard, int) or not 0 <= shard < shards:
                raise ValueError(
                    f"faults dict key {shard!r} is not a shard index in "
                    f"[0, {shards})"
                )
            if schedule is not None and not isinstance(
                schedule, FaultSchedule
            ):
                raise ValueError(
                    f"faults[{shard}] must be a FaultSchedule or None, "
                    f"got {type(schedule).__name__}"
                )
            resolved[shard] = schedule
        return resolved
    if isinstance(faults, (list, tuple)):
        if len(faults) != shards:
            raise ValueError(
                f"faults sequence has {len(faults)} entries for "
                f"{shards} shards"
            )
        for shard, schedule in enumerate(faults):
            if schedule is not None and not isinstance(
                schedule, FaultSchedule
            ):
                raise ValueError(
                    f"faults[{shard}] must be a FaultSchedule or None, "
                    f"got {type(schedule).__name__}"
                )
        return list(faults)
    raise ValueError(
        "faults must be a FaultSchedule, a per-shard sequence, or a "
        "{shard: schedule} dict"
    )


def _execute(payloads: List[Dict], workers: Optional[int]) -> List[ShardReport]:
    if workers is not None and workers > 1 and len(payloads) > 1:
        from concurrent.futures import ProcessPoolExecutor

        try:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(payloads))
            ) as pool:
                return list(pool.map(run_shard, payloads))
        except Exception:
            # Parallelism is an optimization, never a correctness
            # risk: anything the pool cannot finish re-runs serially.
            pass
    return [run_shard(payload) for payload in payloads]
