"""Elastic shard capacity in simulated time.

A shard's processor pool grows and shrinks by reusing the fault
machinery of :class:`~repro.workload.engine.SharedMachine`: scale-up
is a repair (the processor rejoins the allocatable pool and admission
re-pumps), scale-down is a crash-stop *drain* (the processor stops
being allocatable; a query already running on it finishes undisturbed
and the processor simply never comes back).  No query is ever aborted
by a scale event.

The :class:`ElasticEngine` is built at ``scale_max`` capacity with the
surplus processors marked failed from t=0, so capacity changes are
pure repair/fail transitions on one fixed machine — the simulated
clock, event order, and therefore the JSONL rows stay deterministic.

Policies (:data:`AUTOSCALE_NAMES`):

``static``
    No autoscaler at all — the engine is a plain
    :class:`~repro.workload.WorkloadEngine`, byte-identical to
    :func:`repro.api.run_workload` by construction.

``reactive``
    Threshold stepping: queue depth above ``up_queue`` grows the pool
    by one ``step``; an empty queue with a fully idle step shrinks by
    one.  A ``cooldown`` (simulated seconds) separates scale events.

``predictive``
    Jumps straight to the forecasted need: the analytic Section 3
    model prices every queued and running query
    (:func:`~repro.cluster.placement.predict_service_time`, cached per
    spec), and the target capacity is what clears that backlog within
    one cooldown window.

Decisions fire only at event instants (arrivals and completions), so
they are deterministic; when a needed scale-up is blocked by the
cooldown, a re-check is armed on the clock at the cooldown's expiry so
a backlogged queue can never strand (the horizon stays reachable).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..workload.engine import WorkloadEngine
from ..workload.mix import QuerySpec
from .placement import _FALLBACK_SERVICE, predict_service_time

#: The autoscaling policies :func:`make_autoscaler` accepts.
AUTOSCALE_NAMES = ("static", "reactive", "predictive")

#: Default simulated seconds between scale events.
DEFAULT_COOLDOWN = 10.0


@dataclass(frozen=True)
class ScaleEvent:
    """One capacity change, recorded for the report."""

    time: float
    capacity_from: int
    capacity_to: int
    reason: str
    queued: int
    in_flight: int

    def to_payload(self) -> Dict:
        return {
            "time": self.time,
            "from": self.capacity_from,
            "to": self.capacity_to,
            "reason": self.reason,
            "queued": self.queued,
            "in_flight": self.in_flight,
        }


class Autoscaler:
    """Decides a target capacity from observable engine state only."""

    name = "base"

    def prepare(self, engine: "ElasticEngine") -> None:
        """Called once before the run starts."""

    def desired(
        self, engine: "ElasticEngine", now: float
    ) -> Optional[Tuple[int, str]]:
        """``(target_capacity, reason)``, or ``None`` to hold."""
        raise NotImplementedError


class ReactiveAutoscaler(Autoscaler):
    """Step on queue-depth / idle-capacity thresholds."""

    name = "reactive"

    def __init__(self, step: Optional[int] = None, up_queue: int = 1):
        if step is not None and step < 1:
            raise ValueError("step must be positive")
        if up_queue < 1:
            raise ValueError("up_queue must be positive")
        self.step = step
        self.up_queue = up_queue

    def prepare(self, engine: "ElasticEngine") -> None:
        if self.step is None:
            self.step = engine.share_hint

    def desired(
        self, engine: "ElasticEngine", now: float
    ) -> Optional[Tuple[int, str]]:
        queued = len(engine._queue)
        if queued >= self.up_queue and engine.capacity < engine.scale_max:
            target = min(engine.scale_max, engine.capacity + self.step)
            return target, f"queue depth {queued} >= {self.up_queue}"
        if (
            queued == 0
            and engine.capacity > engine.scale_min
            and len(engine.machine.free_ids()) >= self.step
        ):
            target = max(engine.scale_min, engine.capacity - self.step)
            return target, "idle step reclaimed"
        return None


class PredictiveAutoscaler(Autoscaler):
    """Target the capacity that clears the forecasted backlog within
    one ``window`` of simulated seconds."""

    name = "predictive"

    def __init__(self, window: Optional[float] = None):
        if window is not None and window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._estimates: Dict[QuerySpec, float] = {}

    def prepare(self, engine: "ElasticEngine") -> None:
        if self.window is None:
            self.window = engine.scale_cooldown

    def _estimate(self, engine: "ElasticEngine", spec: QuerySpec) -> float:
        if spec not in self._estimates:
            estimate = predict_service_time(
                spec,
                engine.scale_max,
                engine.machine.config,
                engine.cost_model,
            )
            self._estimates[spec] = (
                estimate if estimate is not None else _FALLBACK_SERVICE
            )
        return self._estimates[spec]

    def desired(
        self, engine: "ElasticEngine", now: float
    ) -> Optional[Tuple[int, str]]:
        backlog = sum(
            self._estimate(engine, record.spec)
            for record in engine._queue
        )
        running = sum(
            self._estimate(engine, record.spec)
            for record, *_ in engine._active.values()
        )
        forecast = backlog + running
        slots = math.ceil(forecast / self.window) if forecast > 0 else 0
        slots = max(slots, engine._in_flight)
        target = max(
            engine.scale_min,
            min(engine.scale_max, slots * engine.share_hint),
        )
        if target == engine.capacity:
            return None
        direction = "up" if target > engine.capacity else "down"
        return target, (
            f"forecast {forecast:.1f}s backlog -> {slots} slots ({direction})"
        )


def make_autoscaler(policy, **options) -> Optional[Autoscaler]:
    """Resolve a policy name; ``"static"`` (and ``None``) mean *no*
    autoscaler — the caller should use a plain engine."""
    if policy is None or policy == "static":
        return None
    if isinstance(policy, Autoscaler):
        return policy
    if policy == "reactive":
        return ReactiveAutoscaler(**options)
    if policy == "predictive":
        return PredictiveAutoscaler(**options)
    raise ValueError(
        f"unknown autoscale policy {policy!r}; expected one of "
        f"{AUTOSCALE_NAMES}"
    )


class ElasticEngine(WorkloadEngine):
    """A workload engine whose allocatable capacity moves between
    ``scale_min`` and ``scale_max`` under an :class:`Autoscaler`.

    The machine is built at ``scale_max``; processors above the base
    capacity start failed (drained).  ``share_hint`` is the per-query
    processor share the policy grants — the autoscalers' capacity
    quantum.
    """

    def __init__(
        self,
        base_capacity: int,
        policy=None,
        *,
        autoscaler: Autoscaler,
        scale_max: int,
        scale_min: Optional[int] = None,
        scale_cooldown: float = DEFAULT_COOLDOWN,
        **kwargs,
    ):
        if scale_max < base_capacity:
            raise ValueError(
                f"scale_max ({scale_max}) must be >= the base capacity "
                f"({base_capacity})"
            )
        scale_min = base_capacity if scale_min is None else scale_min
        if not 1 <= scale_min <= base_capacity:
            raise ValueError(
                "need 1 <= scale_min <= base capacity, got "
                f"scale_min={scale_min} base={base_capacity}"
            )
        if scale_cooldown < 0:
            raise ValueError("scale_cooldown must be non-negative")
        super().__init__(scale_max, policy, **kwargs)
        if self.policy.name == "round_robin":
            raise ValueError(
                "autoscaling requires a claiming allocation policy "
                "('exclusive' or 'guideline'); 'round_robin' time-shares "
                "the whole pool without claiming processors, so capacity "
                "changes would be a silent no-op"
            )
        self.scale_min = scale_min
        self.scale_max = scale_max
        self.scale_cooldown = scale_cooldown
        self.capacity = base_capacity
        self.base_capacity = base_capacity
        # The capacity quantum: the policy's per-query share when it
        # has one, else the whole base capacity (exclusive runs).
        share = getattr(self.policy, "share", None)
        self.share_hint = min(
            share if share else base_capacity, base_capacity
        )
        self.scale_events: List[ScaleEvent] = []
        self._last_scale = -scale_cooldown  # first decision is free
        self._recheck_armed = False
        self.autoscaler = autoscaler
        # Drain the surplus from t=0: scale-up is a plain repair.
        for ident in range(base_capacity, scale_max):
            self.machine.fail(ident)
        autoscaler.prepare(self)

    # -- observation hooks (every arrival and completion) -----------------

    def _arrive(self, record) -> None:
        super()._arrive(record)
        self._observe()

    def _finish(self, record, sim) -> None:
        super()._finish(record, sim)
        self._observe()

    def _observe(self) -> None:
        now = self.machine.clock.now
        decision = self.autoscaler.desired(self, now)
        if decision is None:
            return
        target, reason = decision
        target = max(self.scale_min, min(self.scale_max, target))
        if target == self.capacity:
            return
        ready = self._last_scale + self.scale_cooldown
        if now < ready:
            if target > self.capacity and not self._recheck_armed:
                # A backlogged queue must never strand behind the
                # cooldown: re-check the moment it expires.  (Blocked
                # scale-downs just wait for the next natural event —
                # arming a timer for them would stretch the makespan.)
                self._recheck_armed = True
                self.machine.clock.at(ready, self._recheck)
            return
        self._scale_to(target, reason)

    def _recheck(self) -> None:
        self._recheck_armed = False
        self._observe()

    def _scale_to(self, target: int, reason: str) -> None:
        now = self.machine.clock.now
        self.scale_events.append(
            ScaleEvent(
                time=now,
                capacity_from=self.capacity,
                capacity_to=target,
                reason=reason,
                queued=len(self._queue),
                in_flight=self._in_flight,
            )
        )
        if target > self.capacity:
            # Repair the lowest drained processors first (stable ids).
            for ident in sorted(self.machine.failed_ids()):
                if self.capacity >= target:
                    break
                self.machine.repair(ident)
                self.capacity += 1
            self._pump()
        else:
            # Drain the highest healthy processors first.  A drained
            # processor that is mid-query keeps running; it just never
            # becomes allocatable again.
            healthy = sorted(
                set(range(self.machine.size)) - self.machine.failed_ids(),
                reverse=True,
            )
            for ident in healthy:
                if self.capacity <= target:
                    break
                self.machine.fail(ident)
                self.capacity -= 1
        self._last_scale = now

    # -- telemetry --------------------------------------------------------

    def scale_ups(self) -> int:
        return sum(
            1 for e in self.scale_events if e.capacity_to > e.capacity_from
        )

    def scale_downs(self) -> int:
        return sum(
            1 for e in self.scale_events if e.capacity_to < e.capacity_from
        )
