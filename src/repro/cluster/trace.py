"""Deterministic trace record and replay.

A :class:`Trace` is a frozen, JSON-round-trippable description of an
open-loop workload: one :class:`TraceQuery` per arrival (arrival time,
tenant, shape, cardinality, strategy, relations, deadline) plus the
seed the traffic was generated with.  Traces are the cluster's
first-class benchmark input — record one from any workload run
(:meth:`Trace.from_workload`), synthesize one at scale over a process
pool (:func:`synthesize_trace`), ship it as JSON, and replay it
bit-for-bit into :func:`repro.api.run_cluster`.

Determinism contract: the JSON form is canonical (sorted keys, fixed
separators), so ``Trace.from_json(trace.to_json()).to_json()`` is
byte-identical to ``trace.to_json()``; and :func:`synthesize_trace`
partitions the horizon into a *fixed* number of segments independent
of the worker count, so ``workers=1`` and ``workers=8`` produce the
same trace byte for byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..workload.arrivals import poisson_arrivals
from ..workload.mix import QueryMix, QuerySpec, sample_specs

#: Bump on an incompatible trace-payload change; recorded in every
#: trace so a reader can reject formats it does not understand.
TRACE_VERSION = 1

#: Per-segment seed stride of :func:`synthesize_trace` — a prime far
#: from the engine's per-client (1_000_003) and per-tenant strides so
#: segment streams never collide with in-run generators.
_SEGMENT_SEED_STRIDE = 9_973


@dataclass(frozen=True)
class TraceQuery:
    """One arrival of a trace: when, and what query."""

    arrival: float
    shape: str
    cardinality: int = 5_000
    strategy: str = "FP"
    relations: int = 10
    deadline: Optional[float] = None
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival must be non-negative")
        # Delegate shape/strategy/cardinality validation to QuerySpec
        # so a malformed trace fails at construction, not mid-replay.
        self.spec()

    def spec(self) -> QuerySpec:
        """The engine-facing query specification."""
        return QuerySpec(
            self.shape,
            self.cardinality,
            self.strategy,
            self.relations,
            deadline=self.deadline,
            tenant=self.tenant,
        )

    def to_payload(self) -> Dict:
        """Plain JSON-able dict; optional fields appear only when set
        so the canonical JSON stays minimal and stable."""
        data = {
            "arrival": self.arrival,
            "shape": self.shape,
            "cardinality": self.cardinality,
            "strategy": self.strategy,
            "relations": self.relations,
        }
        if self.deadline is not None:
            data["deadline"] = self.deadline
        if self.tenant is not None:
            data["tenant"] = self.tenant
        return data

    @classmethod
    def from_payload(cls, data: Dict) -> "TraceQuery":
        known = {
            "arrival", "shape", "cardinality", "strategy", "relations",
            "deadline", "tenant",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown trace-query keys {unknown}; accepted: "
                f"{sorted(known)}"
            )
        return cls(**data)

    @classmethod
    def from_spec(cls, arrival: float, spec: QuerySpec) -> "TraceQuery":
        return cls(
            arrival=arrival,
            shape=spec.shape,
            cardinality=spec.cardinality,
            strategy=spec.strategy,
            relations=spec.relations,
            deadline=spec.deadline,
            tenant=spec.tenant,
        )


@dataclass(frozen=True)
class Trace:
    """A frozen open-loop arrival stream plus its generation seed."""

    queries: Tuple[TraceQuery, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        arrivals = [q.arrival for q in self.queries]
        if arrivals != sorted(arrivals):
            raise ValueError("trace queries must be in arrival-time order")

    def __len__(self) -> int:
        return len(self.queries)

    def arrivals(self) -> List[Tuple[float, QuerySpec]]:
        """The ``(time, spec)`` pairs the workload engine consumes."""
        return [(q.arrival, q.spec()) for q in self.queries]

    def horizon(self) -> float:
        """The last arrival instant (0.0 for an empty trace)."""
        return self.queries[-1].arrival if self.queries else 0.0

    # -- serialization ----------------------------------------------------

    def to_payload(self) -> Dict:
        return {
            "version": TRACE_VERSION,
            "seed": self.seed,
            "queries": [q.to_payload() for q in self.queries],
        }

    @classmethod
    def from_payload(cls, data: Dict) -> "Trace":
        if not isinstance(data, dict):
            raise TypeError("a trace payload must be a JSON object")
        version = data.get("version")
        if version != TRACE_VERSION:
            raise ValueError(
                f"unsupported trace version {version!r}; this reader "
                f"understands version {TRACE_VERSION}"
            )
        unknown = sorted(set(data) - {"version", "seed", "queries"})
        if unknown:
            raise ValueError(
                f"unknown trace keys {unknown}; accepted: "
                f"['queries', 'seed', 'version']"
            )
        return cls(
            queries=tuple(
                TraceQuery.from_payload(q) for q in data.get("queries", ())
            ),
            seed=int(data.get("seed", 0)),
        )

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, fixed separators — the same
        trace always serializes to the same bytes."""
        return json.dumps(
            self.to_payload(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        return cls.from_payload(json.loads(text))

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def read(cls, path: Union[str, Path]) -> "Trace":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # -- recording --------------------------------------------------------

    @classmethod
    def from_arrivals(
        cls,
        arrivals: Sequence[Tuple[float, QuerySpec]],
        seed: int = 0,
    ) -> "Trace":
        # Stable sort: ties keep their submission order.
        ordered = sorted(arrivals, key=lambda pair: pair[0])
        return cls(
            queries=tuple(
                TraceQuery.from_spec(time, spec) for time, spec in ordered
            ),
            seed=seed,
        )

    @classmethod
    def from_workload(cls, result, seed: int = 0) -> "Trace":
        """Record the arrival stream of a finished workload run.

        Works on any :class:`~repro.workload.WorkloadResult` — open or
        closed loop.  A closed-loop run replays as an *open*-loop trace
        (the recorded arrival instants are fixed; think-time feedback
        is not re-simulated), which is exactly what production trace
        replay does.
        """
        return cls(
            queries=tuple(
                TraceQuery.from_spec(record.arrival, record.spec)
                for record in sorted(
                    result.records, key=lambda r: (r.arrival, r.index)
                )
            ),
            seed=seed,
        )


# -- synthesis ------------------------------------------------------------


def _segment_seed(seed: int, segment: int) -> int:
    return seed + _SEGMENT_SEED_STRIDE * (segment + 1)


def _synthesize_segment(payload: Tuple) -> List[Dict]:
    """Generate one horizon segment's arrivals (process-pool entry
    point — module-level and picklable; returns plain payload dicts)."""
    mix, rate, start, length, seed = payload
    times = poisson_arrivals(rate, length, seed, start=start)
    specs = sample_specs(mix, len(times), seed)
    return [
        TraceQuery.from_spec(time, spec).to_payload()
        for time, spec in zip(times, specs)
    ]


def synthesize_trace(
    mix: Union[QueryMix, QuerySpec, str],
    *,
    rate: float = 1.0,
    duration: float = 60.0,
    seed: int = 0,
    segments: int = 8,
    workers: Optional[int] = None,
) -> Trace:
    """Generate a Poisson trace at scale, fanning segments over a
    process pool.

    The horizon is split into ``segments`` equal windows — a *fixed*
    partition independent of ``workers`` — each generated from its own
    derived seed.  Concatenating independent Poisson streams over
    disjoint windows is again a Poisson stream, and the per-segment
    seeds make the result byte-identical at any worker count (the
    house determinism invariant).  ``workers`` ∈ {None, 0, 1} runs the
    segments serially in-process.
    """
    if isinstance(mix, str):
        mix = QuerySpec(mix)
    if isinstance(mix, QuerySpec):
        mix = QueryMix.single(mix)
    if rate <= 0:
        raise ValueError("rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if segments < 1:
        raise ValueError("segments must be positive")
    length = duration / segments
    payloads = [
        (mix, rate, index * length, length, _segment_seed(seed, index))
        for index in range(segments)
    ]
    if workers is not None and workers > 1 and segments > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=min(workers, segments)
        ) as pool:
            chunks = list(pool.map(_synthesize_segment, payloads))
    else:
        chunks = [_synthesize_segment(payload) for payload in payloads]
    queries = tuple(
        TraceQuery.from_payload(item) for chunk in chunks for item in chunk
    )
    return Trace(queries=queries, seed=seed)
