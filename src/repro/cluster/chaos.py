"""Seeded chaos campaigns with invariant checks and fault shrinking.

A chaos campaign sweeps reproducible fault schedules × traffic shapes
over a grid of cluster shapes, runs each point through the coordinated
resilient cluster (:mod:`repro.cluster.resilience`), and asserts the
house invariants on every run:

``conservation``
    Every admitted query ends in **exactly one** terminal state —
    completed, shed (rejected), failed, or cancelled.  No query is
    lost, double-counted, or left dangling, no matter which shards
    died under it.

``watchdog``
    The no-advance livelock detector never fires: a faulted cluster
    must *drain*, not spin.

``determinism``
    Campaign points are self-contained and collected in point order,
    so a campaign is JSONL-identical at ``workers=1`` and
    ``workers=4`` (each point report carries a canonical row digest;
    the test pins the whole payload).

When a point violates an invariant, the campaign *shrinks* the
offending :class:`~repro.faults.FaultSchedule` with delta debugging
(:func:`shrink_schedule`, classic ddmin over the schedule's event
list): the smallest sub-schedule that still reproduces the violation
is emitted as a JSON regression fixture next to the campaign results,
ready to be replayed as a standalone test.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..faults import FaultSchedule
from ..sim.machine import MachineConfig
from ..sim.watchdog import WatchdogError
from ..workload.mix import QueryMix
from .resilience import run_resilient_cluster

#: Per-point seed stride (prime, far from the shard stride) so point
#: traffic/fault streams never collide across the grid.
POINT_SEED_STRIDE = 7_368_787

#: The campaign's traffic population: a light slice of the paper grid
#: (two strategies, one problem size) so a full campaign stays cheap.
CAMPAIGN_MIX = QueryMix.paper(
    cardinalities=(5_000,), strategies=("SP", "FP"), relations=6
)


def campaign_machine_config() -> MachineConfig:
    """The scaled-down machine every campaign point simulates (the
    benchmark-suite constants: fast enough to sweep, slow enough to
    queue)."""
    return MachineConfig(
        tuple_unit=0.001,
        process_startup=0.008,
        handshake=0.012,
        network_latency=0.05,
        batches=8,
    )


def campaign_engine_options(
    machine_size: int,
    config: Optional[MachineConfig] = None,
    **overrides,
) -> Dict:
    """A complete per-shard engine-options dict (every key
    :func:`repro.cluster.router._build_engine` indexes), with the
    campaign defaults; ``overrides`` patch individual keys."""
    options = dict(
        machine_size=machine_size,
        policy="guideline",
        share=None,
        config=config if config is not None else campaign_machine_config(),
        cost_model=None,
        skew_theta=0.0,
        max_concurrent=None,
        queue_limit=None,
        memory_budget_bytes=None,
        rejected_retry_delay=0.25,
        deadline=None,
        deadline_seed=0,
        shed=None,
        watchdog_limit=200_000,
        scheduler=None,
        pool_size=None,
        scheduling_cost=0.0,
        tenants=None,
        fast_path=True,
    )
    unknown = sorted(set(overrides) - set(options))
    if unknown:
        raise ValueError(f"unknown engine option keys {unknown}")
    options.update(overrides)
    return options


@dataclass(frozen=True)
class ChaosPoint:
    """One cell of the campaign grid — everything needed to replay it."""

    index: int
    shards: int
    machine_size: int
    crash_rate: float
    queries: int
    arrival_rate: float
    horizon: float
    repair_time: Optional[float]
    retry_budget: int
    placement: str
    seed: int

    def label(self) -> str:
        return (
            f"point {self.index}: {self.shards}x{self.machine_size}p, "
            f"crash_rate {self.crash_rate:g}/s, {self.queries} queries"
        )

    def schedule(self) -> FaultSchedule:
        """The point's shard-level fault schedule (``machine_size`` of
        the Poisson draw is the *shard count* — crashes name shards)."""
        return FaultSchedule.generate(
            machine_size=self.shards,
            horizon=self.horizon,
            seed=self.seed,
            crash_rate=self.crash_rate,
            repair_time=self.repair_time,
        )

    def arrivals(self):
        """The point's seeded open-loop arrival stream."""
        rng = random.Random(self.seed)
        arrivals = []
        time = 0.0
        for _ in range(self.queries):
            time += rng.expovariate(self.arrival_rate)
            arrivals.append((time, CAMPAIGN_MIX.sample(rng)))
        return arrivals


def build_points(
    *,
    cluster_shapes: Sequence[Tuple[int, int]],
    crash_rates: Sequence[float],
    queries: int,
    arrival_rate: float,
    horizon: float,
    repair_time: Optional[float],
    retry_budget: int,
    placement: str,
    seed: int,
) -> List[ChaosPoint]:
    """The campaign grid, in deterministic (shape-major) order."""
    points: List[ChaosPoint] = []
    for shards, machine_size in cluster_shapes:
        for crash_rate in crash_rates:
            index = len(points)
            points.append(
                ChaosPoint(
                    index=index,
                    shards=shards,
                    machine_size=machine_size,
                    crash_rate=crash_rate,
                    queries=queries,
                    arrival_rate=arrival_rate,
                    horizon=horizon,
                    repair_time=repair_time,
                    retry_budget=retry_budget,
                    placement=placement,
                    seed=seed + POINT_SEED_STRIDE * index,
                )
            )
    return points


def rows_digest(rows: Sequence[Dict]) -> str:
    """Canonical digest of a row population (the determinism pin)."""
    text = "\n".join(json.dumps(row, sort_keys=True) for row in rows)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def check_invariants(result) -> List[Tuple[str, str]]:
    """The per-run invariant battery; each violation is
    ``(invariant, detail)``."""
    violations: List[Tuple[str, str]] = []
    terminal = 0
    for row in result.rows():
        states = [
            bool(row["completed"] is not None),
            bool(row["rejected"]),
            bool(row["failed"]),
            bool(row["cancelled"]),
        ]
        count = sum(states)
        if count != 1:
            violations.append(
                (
                    "conservation",
                    f"query {row['query']} ended in {count} terminal "
                    f"states (completed={states[0]}, rejected={states[1]}, "
                    f"failed={states[2]}, cancelled={states[3]})",
                )
            )
        else:
            terminal += 1
    submitted = result.submitted_count()
    if terminal != submitted:
        violations.append(
            (
                "conservation",
                f"{submitted} submitted but {terminal} single-terminal "
                "queries",
            )
        )
    return violations


def _run_point_payload(payload: Dict) -> Dict:
    """Run one campaign point end to end (module-level and picklable —
    the process-pool entry point)."""
    point = ChaosPoint(**payload["point"])
    schedule = FaultSchedule.from_payload(payload["schedule"])
    extra = payload.get("extra_invariants")
    report: Dict = {
        "point": payload["point"],
        "schedule_events": schedule.event_count,
        "violations": [],
        "summary": None,
        "rows_digest": None,
    }
    try:
        result = run_resilient_cluster(
            open_arrivals=point.arrivals(),
            shards=point.shards,
            engine_options=campaign_engine_options(point.machine_size),
            placement=point.placement,
            shard_faults=schedule,
            retry_budget=point.retry_budget,
        )
    except WatchdogError as exc:
        report["violations"].append(["watchdog", str(exc).splitlines()[0]])
        return report
    except RuntimeError as exc:
        report["violations"].append(["conservation", str(exc)])
        return report
    violations = check_invariants(result)
    if extra is not None:
        violations.extend(extra(result, point))
    report["violations"] = [list(v) for v in violations]
    report["rows_digest"] = rows_digest(result.rows())
    res = result.resilience
    report["summary"] = {
        "completed": result.completed_count(),
        "failed": result.failed_count(),
        "rejected": result.rejected_count(),
        "submitted": result.submitted_count(),
        "makespan": result.makespan,
        "shard_crashes": res["shard_crashes"],
        "shard_repairs": res["shard_repairs"],
        "retries": res["retries"],
        "rerouted": res["rerouted"],
    }
    return report


@dataclass
class CampaignResult:
    """One campaign: per-point reports, violations, emitted fixtures."""

    points: List[ChaosPoint]
    reports: List[Dict]
    fixtures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations()

    def violations(self) -> List[Dict]:
        found = []
        for report in self.reports:
            for invariant, detail in report["violations"]:
                found.append(
                    {
                        "point": report["point"]["index"],
                        "invariant": invariant,
                        "detail": detail,
                    }
                )
        return found

    def to_payload(self) -> Dict:
        return {
            "points": [asdict(point) for point in self.points],
            "reports": self.reports,
            "violations": self.violations(),
            "fixtures": list(self.fixtures),
        }

    def summary(self) -> str:
        violations = self.violations()
        status = (
            "all invariants held"
            if not violations
            else f"{len(violations)} INVARIANT VIOLATIONS"
        )
        crashes = sum(
            r["summary"]["shard_crashes"]
            for r in self.reports
            if r["summary"] is not None
        )
        return (
            f"chaos campaign: {len(self.points)} points, "
            f"{crashes} shard crashes injected, {status}"
        )


def run_chaos_campaign(
    *,
    cluster_shapes: Sequence[Tuple[int, int]] = ((2, 8), (4, 8)),
    crash_rates: Sequence[float] = (0.0, 0.05),
    queries: int = 30,
    arrival_rate: float = 2.0,
    horizon: float = 60.0,
    repair_time: Optional[float] = 15.0,
    retry_budget: int = 3,
    placement: str = "hash",
    seed: int = 0,
    workers: Optional[int] = None,
    extra_invariants: Optional[Callable] = None,
    fixture_dir=None,
    shrink: bool = True,
) -> CampaignResult:
    """Sweep fault × traffic campaigns over cluster shapes.

    Points fan out over a process pool when ``workers`` > 1 — each
    point is self-contained (its own seeds, schedule, and arrival
    stream) and reports are collected in point order, so the campaign
    payload is identical at any worker count.  ``extra_invariants``
    (``fn(result, point) -> [(invariant, detail), ...]``) joins the
    built-in battery, letting tests force violations end to end; it
    must be picklable to ride the pool (the fan-out falls back to
    serial if not).

    On a violation the point's schedule is shrunk to a minimal repro
    (ddmin) and, when ``fixture_dir`` is given, written there as a
    JSON regression fixture.
    """
    points = build_points(
        cluster_shapes=cluster_shapes,
        crash_rates=crash_rates,
        queries=queries,
        arrival_rate=arrival_rate,
        horizon=horizon,
        repair_time=repair_time,
        retry_budget=retry_budget,
        placement=placement,
        seed=seed,
    )
    payloads = [
        {
            "point": asdict(point),
            "schedule": point.schedule().to_payload(),
            "extra_invariants": extra_invariants,
        }
        for point in points
    ]
    reports = _execute_points(payloads, workers)
    result = CampaignResult(points=points, reports=reports)
    if not shrink:
        return result
    for point, report in zip(points, reports):
        if not report["violations"]:
            continue
        schedule = point.schedule()
        shrunk = schedule
        if schedule.event_count > 0:
            shrunk = shrink_schedule(
                schedule,
                lambda candidate: _still_violates(
                    point, candidate, extra_invariants
                ),
            )
        report["shrunk_schedule"] = dict(shrunk.to_payload())
        if fixture_dir is not None:
            path = _emit_fixture(fixture_dir, point, schedule, shrunk, report)
            result.fixtures.append(str(path))
    return result


def _execute_points(
    payloads: List[Dict], workers: Optional[int]
) -> List[Dict]:
    if workers is not None and workers > 1 and len(payloads) > 1:
        from concurrent.futures import ProcessPoolExecutor

        try:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(payloads))
            ) as pool:
                return list(pool.map(_run_point_payload, payloads))
        except Exception:
            # Parallelism is an optimization, never a correctness
            # risk: anything the pool cannot finish re-runs serially.
            pass
    return [_run_point_payload(payload) for payload in payloads]


def _still_violates(
    point: ChaosPoint, schedule: FaultSchedule, extra_invariants
) -> bool:
    """The shrinking predicate: does the point still violate *any*
    invariant under ``schedule``?"""
    report = _run_point_payload(
        {
            "point": asdict(point),
            "schedule": schedule.to_payload(),
            "extra_invariants": extra_invariants,
        }
    )
    return bool(report["violations"])


def _emit_fixture(
    fixture_dir, point: ChaosPoint, schedule, shrunk, report
) -> Path:
    directory = Path(fixture_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"chaos_point{point.index}_seed{point.seed}.json"
    payload = {
        "point": asdict(point),
        "violations": report["violations"],
        "schedule": dict(schedule.to_payload()),
        "shrunk_schedule": dict(shrunk.to_payload()),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


# -- schedule shrinking (delta debugging) ----------------------------------


def _events_of(schedule: FaultSchedule) -> List[Tuple[str, object]]:
    events: List[Tuple[str, object]] = []
    events.extend(("crash", c) for c in schedule.crashes)
    events.extend(("stall", s) for s in schedule.stalls)
    events.extend(("link", w) for w in schedule.link_faults)
    return events


def _from_events(
    events: Sequence[Tuple[str, object]], seed: int
) -> FaultSchedule:
    return FaultSchedule(
        crashes=tuple(e for kind, e in events if kind == "crash"),
        stalls=tuple(e for kind, e in events if kind == "stall"),
        link_faults=tuple(e for kind, e in events if kind == "link"),
        seed=seed,
    )


def _split(events: List, n: int) -> List[List]:
    """``n`` chunks, as even as possible, preserving order."""
    size, extra = divmod(len(events), n)
    chunks = []
    start = 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        if end > start:
            chunks.append(events[start:end])
        start = end
    return chunks


def shrink_schedule(
    schedule: FaultSchedule,
    predicate: Callable[[FaultSchedule], bool],
) -> FaultSchedule:
    """Minimal sub-schedule of ``schedule`` still satisfying
    ``predicate`` — Zeller's ddmin over the schedule's event list.

    ``predicate(candidate)`` must return True when the candidate still
    reproduces the failure; it must hold for the input schedule.  The
    result is 1-minimal: removing any single remaining event makes the
    predicate fail.
    """
    if not predicate(schedule):
        raise ValueError("predicate does not hold on the input schedule")
    events = _events_of(schedule)
    if len(events) <= 1:
        return schedule
    holds = lambda subset: predicate(_from_events(subset, schedule.seed))
    n = 2
    while len(events) >= 2:
        chunks = _split(events, n)
        reduced = False
        for i, chunk in enumerate(chunks):
            if holds(chunk):
                events = chunk
                n = 2
                reduced = True
                break
            complement = [
                event
                for j, other in enumerate(chunks)
                if j != i
                for event in other
            ]
            if complement and holds(complement):
                events = complement
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(events):
                break
            n = min(len(events), 2 * n)
    return _from_events(events, schedule.seed)


__all__ = [
    "CAMPAIGN_MIX",
    "POINT_SEED_STRIDE",
    "CampaignResult",
    "ChaosPoint",
    "build_points",
    "campaign_engine_options",
    "campaign_machine_config",
    "check_invariants",
    "rows_digest",
    "run_chaos_campaign",
    "shrink_schedule",
]
