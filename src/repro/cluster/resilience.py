"""Cluster-grade resilience: shard failover, retries, hedging, SLOs.

The PR 9 router is *pre-routed*: arrivals split across shards before
any shard simulates, so shards never interact and nothing can react to
a shard dying.  This module adds the coordinated mode: N workload
engines hosted on **one** shared :class:`~repro.sim.events.SimulationClock`,
with a live router between the arrival stream and the shards.  Because
every cross-shard reaction (failover, re-dispatch, hedging, breaker
trips) is an ordinary event on the one clock, the whole cluster run
remains a single deterministic discrete-event simulation.

The resilience primitives (DESIGN.md §7e):

Shard failover
    A cluster-level :class:`~repro.faults.FaultSchedule` whose
    ``CrashFault.processor`` is read as a *shard index*.  A shard
    crash aborts its in-flight queries through the engine's abort path
    (burnt CPU is accounted, processors released), fails its queued
    queries, and marks the shard dead on the consistent-hash ring —
    future arrivals walk clockwise to the next live owner
    (:func:`~repro.cluster.placement.ring_lookup_live`, the ~1/N-moves
    bound), and queued victims re-route immediately.  Repair rejoins
    the shard and the ring walk snaps back to the original owner.
    Shard-level ``StallFault``/``LinkFault`` entries degrade the whole
    shard (every processor / its interconnect) — the straggler-shard
    scenario hedging exists for.

Retry budgets
    Aborted queries re-dispatch to a surviving shard with exponential
    backoff in simulated time (``RETRY_BACKOFF * 2**retries``).  A
    query that exhausts its budget is recorded as an honest per-query
    failure — never a workload abort.

Hedged requests
    When the analytic forecast of a query's completion on its chosen
    shard (:func:`~repro.model.analytic.predict_spec_service_time`
    behind the shard's busy-until horizon) exceeds a configurable
    percentile of recently observed attempt latencies, a duplicate is
    dispatched to the least-loaded other live shard; the first
    completion cancels the loser through the cancellation path.  Ties
    break deterministically (event order / lowest shard index).  Off
    by default; a run without ``hedge`` is byte-identical to one that
    never heard of hedging.

Circuit breakers
    Per-shard closed → open → half-open on the observed abort rate
    over a sliding outcome window; an open shard is routed around, a
    half-open shard admits one probe.

Token-bucket throttling
    Per-tenant rate enforcement at *cluster* admission: each rated
    tenant (``TenantSpec.rate``) gets a deterministic token bucket on
    the simulated clock; an arrival that finds no token is shed as
    ``"throttled"`` — the per-tenant SLO enforcement the ROADMAP left
    open.

Every logical query ends in exactly one terminal state (completed /
shed / expired / failed / cancelled) — the conservation invariant the
chaos harness (:mod:`repro.cluster.chaos`) asserts.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..faults import FaultSchedule
from ..sim.events import SimulationClock
from ..sim.watchdog import (
    DEFAULT_MAX_EVENTS_PER_INSTANT,
    Watchdog,
    WatchdogError,
)
from ..workload.metrics import percentile
from ..workload.mix import QuerySpec
from .placement import (
    PLACEMENT_NAMES,
    build_ring,
    predict_service_time,
    ring_lookup_live,
)
from .router import ClusterResult, ShardReport, shard_seed

#: Base cluster-level retry backoff in simulated seconds; retry k of a
#: query waits ``RETRY_BACKOFF * 2**(k-1)`` after its abort.
RETRY_BACKOFF = 0.5

#: Fallback hedging/busy-until estimate for a spec the analytic model
#: cannot cost (mirrors placement's ``_FALLBACK_SERVICE``).
_FALLBACK_SERVICE = 1.0


def _policy_from(cls, value, name: str):
    """Shared ``True`` / dict / instance spelling of the three
    resilience policies (``None`` disables)."""
    if value is None or value is False:
        return None
    if value is True:
        return cls()
    if isinstance(value, cls):
        return value
    if isinstance(value, dict):
        fields_ = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(value) - fields_)
        if unknown:
            raise ValueError(
                f"unknown {name} keys {unknown}; accepted: "
                f"{sorted(fields_)}"
            )
        return cls(**value)
    raise TypeError(
        f"{name} must be True, a dict of {cls.__name__} fields, or a "
        f"{cls.__name__} instance"
    )


@dataclass(frozen=True)
class HedgePolicy:
    """When to dispatch a speculative duplicate.

    A hedge fires when the forecast attempt latency on the chosen
    shard (queueing behind its busy-until horizon plus the analytic
    service estimate) exceeds the ``percentile``-th percentile of the
    last ``window`` observed attempt latencies — once at least
    ``min_observations`` of them exist.

    The forecast is slowdown-corrected by two signals: an EWMA of
    observed-over-estimated service time, updated on every completion
    on the shard, and the live age-over-estimate ratio of the shard's
    in-flight attempts.  The live signal matters because a straggling
    shard (stall faults, degraded pool) betrays itself within one
    service time — long before its first, very slow, completion could
    feed the EWMA — while the stall-blind analytic estimate alone
    would never see it.
    """

    percentile: float = 95.0
    min_observations: int = 10
    window: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError("hedge percentile must be in (0, 100]")
        if self.min_observations < 1:
            raise ValueError("hedge min_observations must be positive")
        if self.window < self.min_observations:
            raise ValueError("hedge window must cover min_observations")

    @classmethod
    def resolve(cls, value) -> Optional["HedgePolicy"]:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return cls(percentile=float(value))
        return _policy_from(cls, value, "hedge")


@dataclass(frozen=True)
class BreakerPolicy:
    """Per-shard circuit breaker: closed → open → half-open.

    The breaker watches the last ``window`` dispatch outcomes on the
    shard; once ``min_samples`` outcomes exist and the abort fraction
    exceeds ``threshold`` it opens, routing traffic around the shard
    for ``reset_timeout`` simulated seconds, then admits one half-open
    probe — success closes it, failure re-opens.
    """

    window: int = 16
    threshold: float = 0.5
    min_samples: int = 4
    reset_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("breaker window must be positive")
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("breaker threshold must be in (0, 1]")
        if self.min_samples < 1:
            raise ValueError("breaker min_samples must be positive")
        if self.reset_timeout <= 0:
            raise ValueError("breaker reset_timeout must be positive")

    @classmethod
    def resolve(cls, value) -> Optional["BreakerPolicy"]:
        return _policy_from(cls, value, "breaker")


@dataclass(frozen=True)
class ThrottlePolicy:
    """Per-tenant token buckets at cluster admission.

    A tenant with ``TenantSpec.rate`` r gets a bucket of capacity
    ``max(1, r * burst_seconds)`` tokens refilled at r tokens per
    simulated second; each admitted query spends one token, and an
    arrival that finds the bucket empty is shed as ``"throttled"``.
    Tenants without a rate (and untenanted queries) pass freely.
    """

    burst_seconds: float = 2.0

    def __post_init__(self) -> None:
        if self.burst_seconds <= 0:
            raise ValueError("throttle burst_seconds must be positive")

    @classmethod
    def resolve(cls, value) -> Optional["ThrottlePolicy"]:
        return _policy_from(cls, value, "throttle")


class _Breaker:
    """One shard's breaker state (deterministic, simulated-clock)."""

    __slots__ = ("policy", "state", "outcomes", "opened_at", "opens",
                 "probing")

    def __init__(self, policy: BreakerPolicy):
        self.policy = policy
        self.state = "closed"
        self.outcomes: Deque[bool] = deque(maxlen=policy.window)
        self.opened_at = 0.0
        self.opens = 0
        self.probing = False

    def allows(self, now: float) -> bool:
        if self.state == "closed":
            return True
        if self.state == "open":
            if now >= self.opened_at + self.policy.reset_timeout:
                self.state = "half_open"
                self.probing = False
            else:
                return False
        # half-open: one probe at a time.
        return not self.probing

    def on_dispatch(self) -> None:
        if self.state == "half_open":
            self.probing = True

    def record(self, success: bool, now: float) -> None:
        if self.state == "half_open":
            self.probing = False
            if success:
                self.state = "closed"
                self.outcomes.clear()
            else:
                self.state = "open"
                self.opened_at = now
                self.opens += 1
            return
        self.outcomes.append(success)
        if self.state == "closed":
            failures = sum(1 for ok in self.outcomes if not ok)
            if (
                len(self.outcomes) >= self.policy.min_samples
                and failures / len(self.outcomes) > self.policy.threshold
            ):
                self.state = "open"
                self.opened_at = now
                self.opens += 1
                self.outcomes.clear()


@dataclass
class ClusterQueryRecord:
    """Lifecycle of one *logical* query through the resilient cluster.

    Mirrors :class:`~repro.workload.metrics.QueryRecord` — one row per
    logical query regardless of how many shard attempts served it —
    plus the cluster outcome fields (``shard``, ``dispatches``,
    ``retries``, ``hedged``, ``hedge_won``).
    """

    index: int
    spec: QuerySpec
    arrival: float
    deadline: Optional[float] = None
    tenant: Optional[str] = None
    admitted: Optional[float] = None
    completed: Optional[float] = None
    strategy: Optional[str] = None
    processors: Tuple[int, ...] = ()
    shard: Optional[int] = None            # shard that decided the outcome
    rejected: bool = False
    error: Optional[str] = None
    failed: bool = False
    shed: Optional[str] = None
    cancelled: bool = False
    deadline_missed: bool = False
    dispatches: int = 0                    # shard dispatches (incl. hedges)
    retries: int = 0                       # budget-consuming re-dispatches
    hedged: bool = False
    hedge_won: bool = False
    #: Every engine attempt serving this query: ``(shard, record)``.
    attempt_records: List[Tuple[int, object]] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return (
            self.completed is not None
            or self.rejected
            or self.failed
            or self.cancelled
        )

    @property
    def latency(self) -> Optional[float]:
        if self.completed is None:
            return None
        return self.completed - self.arrival

    @property
    def queue_delay(self) -> Optional[float]:
        if self.admitted is None:
            return None
        return self.admitted - self.arrival

    @property
    def service_time(self) -> Optional[float]:
        if self.completed is None or self.admitted is None:
            return None
        return self.completed - self.admitted

    def attempts_total(self) -> int:
        return sum(r.attempts for _, r in self.attempt_records)

    def aborts_all(self) -> List[float]:
        times = [t for _, r in self.attempt_records for t in r.aborts]
        return sorted(times)

    def wasted_total(self) -> float:
        return sum(r.wasted_seconds for _, r in self.attempt_records)

    def reused_total(self) -> int:
        return sum(r.reused_tasks for _, r in self.attempt_records)

    def row(self) -> Dict:
        data = {
            "query": self.index,
            "client": None,
            "shape": self.spec.shape,
            "cardinality": self.spec.cardinality,
            "relations": self.spec.relations,
            "strategy_requested": self.spec.strategy,
            "strategy": self.strategy,
            "processors": list(self.processors),
            "arrival": self.arrival,
            "admitted": self.admitted,
            "completed": self.completed,
            "latency": self.latency,
            "queue_delay": self.queue_delay,
            "service_time": self.service_time,
            "rejected": self.rejected,
            "error": self.error,
            "attempts": self.attempts_total(),
            "aborts": self.aborts_all(),
            "wasted_seconds": self.wasted_total(),
            "failed": self.failed,
            "reused_tasks": self.reused_total(),
            "shed": self.shed,
            "cancelled": self.cancelled,
            "deadline_missed": self.deadline_missed,
            "shard": self.shard,
            "dispatches": self.dispatches,
            "retries": self.retries,
            "hedged": self.hedged,
            "hedge_won": self.hedge_won,
        }
        if self.tenant is not None:
            data["tenant"] = self.tenant
        return data


@dataclass
class ResilientClusterResult(ClusterResult):
    """A coordinated cluster run: logical rows over shard telemetry.

    ``shards`` keeps the per-shard attempt-level reports (their rows
    are *attempts*, useful for per-shard telemetry); the logical
    query population lives in ``records`` and everything user-facing —
    ``rows()``, counts, latency — is logical.
    """

    records: List[ClusterQueryRecord] = field(default_factory=list)
    resilience: Dict = field(default_factory=dict)

    def rows(self) -> List[Dict]:
        return [record.row() for record in self.records]

    def submitted_count(self) -> int:
        return len(self.records)

    def completed_count(self) -> int:
        return sum(1 for r in self.records if r.completed is not None)

    def useful_count(self) -> int:
        return sum(
            1
            for r in self.records
            if r.completed is not None and not r.deadline_missed
        )

    def rejected_count(self) -> int:
        return sum(1 for r in self.records if r.rejected)

    def failed_count(self) -> int:
        return sum(1 for r in self.records if r.failed)

    def shed_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for r in self.records:
            if r.shed is not None:
                counts[r.shed] = counts.get(r.shed, 0) + 1
        return counts

    def latency_stats(self, shard=None) -> Dict[str, Optional[float]]:
        if shard is not None:
            return super().latency_stats(shard)
        values = [r.latency for r in self.records if r.completed is not None]
        if not values:
            return {"mean": None, "p50": None, "p95": None, "p99": None}
        return {
            "mean": sum(values) / len(values),
            "p50": percentile(values, 50.0),
            "p95": percentile(values, 95.0),
            "p99": percentile(values, 99.0),
        }

    def summary(self) -> str:
        text = super().summary()
        res = self.resilience
        if res:
            text += (
                f" | resilience: {res['shard_crashes']} shard crashes "
                f"({res['shard_repairs']} repaired), "
                f"{res['retries']} retries, {res['rerouted']} rerouted, "
                f"{res['hedges']} hedges ({res['hedge_wins']} won), "
                f"{res['throttled']} throttled, "
                f"{res['breaker_opens']} breaker opens, "
                f"{self.failed_count()} failed"
            )
        return text


class ResilientCluster:
    """N workload engines on one clock behind a live, failure-aware
    router.  Single-use, like the engine."""

    def __init__(
        self,
        *,
        shards: int,
        engine_options: Dict,
        placement: str = "hash",
        shard_faults: Optional[FaultSchedule] = None,
        retry_budget: int = 0,
        hedge=None,
        breaker=None,
        throttle=None,
        failover: bool = True,
        watchdog_limit: Optional[int] = DEFAULT_MAX_EVENTS_PER_INSTANT,
    ):
        if shards < 1:
            raise ValueError("a cluster needs at least one shard")
        if placement not in PLACEMENT_NAMES:
            raise ValueError(
                f"unknown placement policy {placement!r}; expected one "
                f"of {PLACEMENT_NAMES}"
            )
        if retry_budget < 0:
            raise ValueError("retry_budget must be non-negative")
        if shard_faults is not None and not isinstance(
            shard_faults, FaultSchedule
        ):
            raise TypeError("shard_faults must be a FaultSchedule")
        self.shards = shards
        self.placement = placement
        self.shard_faults = shard_faults
        self.retry_budget = retry_budget
        self.hedge = HedgePolicy.resolve(hedge)
        self.breaker_policy = BreakerPolicy.resolve(breaker)
        self.throttle = ThrottlePolicy.resolve(throttle)
        self.failover = failover
        self.clock = SimulationClock()
        if watchdog_limit is not None:
            self.clock.watchdog = Watchdog(watchdog_limit)

        options = dict(engine_options)
        self._machine_size = options["machine_size"]
        self._config = options.get("config")
        self._cost_model = options.get("cost_model")
        self.tenants = dict(options.get("tenants") or {})
        # The cluster resolves deadlines once, at admission, so every
        # attempt of a query races the *same* absolute deadline; the
        # member engines must not re-draw or re-apply defaults.
        self._deadline = options.get("deadline")
        self._deadline_rng = random.Random(
            1_000_003 * options.get("deadline_seed", 0) + 17
        )
        options["deadline"] = None
        options["tenants"] = {
            name: replace(spec, deadline=None)
            for name, spec in self.tenants.items()
        }
        # One watchdog at the cluster level, not one per member.
        options["watchdog_limit"] = None
        from .router import (
            _build_engine,
            _shard_engine_options,
            resolve_shard_faults,
        )

        # Engine-level (processor) fault schedules can ride along under
        # the cluster-level shard faults — a shard can lose processor 3
        # *and* later crash entirely.
        engine_faults = resolve_shard_faults(options.get("faults"), shards)
        self.engines = []
        for shard in range(shards):
            engine = _build_engine(
                {
                    "shard": shard,
                    "engine": _shard_engine_options(
                        options, shard, fault=engine_faults[shard]
                    ),
                    "autoscale": None,
                },
                clock=self.clock,
                on_query_done=self._make_done_hook(shard),
            )
            self.engines.append(engine)

        self.alive = set(range(shards))
        self._ring = build_ring(shards)
        self._breakers = [
            _Breaker(self.breaker_policy) if self.breaker_policy else None
            for _ in range(shards)
        ]
        self._busy_until = [0.0] * shards
        # Observed-over-estimated service-time EWMA per shard; feeds
        # the hedge forecast so stall-slowed shards are seen as slow.
        self._slowdown = [1.0] * shards
        self._estimates: Dict[Tuple, float] = {}
        self._recent: Deque[float] = deque(
            maxlen=self.hedge.window if self.hedge else 1
        )
        self._buckets: Dict[str, List[float]] = {}  # name -> [tokens, last]
        self.records: List[ClusterQueryRecord] = []
        # (shard, engine-record index) -> logical record
        self._attempt_of: Dict[Tuple[int, int], ClusterQueryRecord] = {}
        # logical index -> its hedge attempt's engine record (identity)
        self._hedge_record: Dict[int, object] = {}
        self._evacuating = False
        self._started = False
        # Counters.
        self.shard_crashes = 0
        self.shard_repairs = 0
        self.evacuated_running = 0
        self.evacuated_queued = 0
        self.retries_total = 0
        self.rerouted = 0
        self.retry_exhausted = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.throttled = 0
        self._shard_stats = [
            {"dispatches": 0, "hedges": 0, "aborts": 0, "retries": 0}
            for _ in range(shards)
        ]
        if shard_faults is not None:
            self._arm_shard_faults(shard_faults)

    # -- shard-level faults ----------------------------------------------

    def _arm_shard_faults(self, schedule: FaultSchedule) -> None:
        """Crashes kill whole shards; stalls slow every processor of
        the shard; link windows degrade the shard's interconnect."""
        for crash in schedule.crashes:
            if not 0 <= crash.processor < self.shards:
                continue
            self.clock.at(crash.at, self._shard_crash, crash.processor)
            if crash.repair_at is not None:
                self.clock.at(
                    crash.repair_at, self._shard_repair, crash.processor
                )
        for stall in schedule.stalls:
            if not 0 <= stall.processor < self.shards:
                continue
            machine = self.engines[stall.processor].machine
            for processor in machine.processors.values():
                processor.stalls.append(
                    (stall.start, stall.end, stall.factor)
                )
        if schedule.link_faults:
            from ..faults.injector import LinkFaultState

            for shard in range(self.shards):
                machine = self.engines[shard].machine
                if machine.network.faults is None:
                    machine.network.faults = LinkFaultState(
                        schedule.link_faults, schedule.seed
                    )

    def _shard_crash(self, shard: int) -> None:
        if shard not in self.alive:
            return  # already down
        self.alive.discard(shard)
        self.shard_crashes += 1
        engine = self.engines[shard]
        now = self.clock.now
        running: List[ClusterQueryRecord] = []
        queued: List[ClusterQueryRecord] = []
        self._evacuating = True
        try:
            for entry in list(engine._active.values()):
                record = entry[0]
                engine._abort_active(record, f"shard {shard} crashed")
                record.aborts.append(now)
                record.failed = True
                record.error = f"shard {shard} crashed"
                engine._query_done(record)
                self._shard_stats[shard]["aborts"] += 1
                self.evacuated_running += 1
                logical = self._attempt_of.get((shard, record.index))
                if logical is not None:
                    running.append(logical)
            while engine._queue:
                record = engine._queue[0]
                engine._remove_queued(record)
                record.failed = True
                record.error = f"shard {shard} crashed while queued"
                engine._query_done(record)
                self.evacuated_queued += 1
                logical = self._attempt_of.get((shard, record.index))
                if logical is not None:
                    queued.append(logical)
        finally:
            self._evacuating = False
        self._record_outcome(shard, success=False)
        # Queued victims re-route immediately (their work is not lost,
        # only their place in a dead line); in-flight victims consumed
        # machine time and go through the retry budget with backoff.
        for logical in queued:
            if not logical.terminal and not self._has_live_attempt(logical):
                self.rerouted += 1
                self._dispatch(logical, role="reroute")
        for logical in running:
            if not logical.terminal and not self._has_live_attempt(logical):
                self._retry_or_fail(logical, f"shard {shard} crashed")

    def _shard_repair(self, shard: int) -> None:
        if shard in self.alive:
            return
        self.alive.add(shard)
        self.shard_repairs += 1

    # -- admission --------------------------------------------------------

    def submit(self, index: int, time: float, spec: QuerySpec) -> None:
        logical = ClusterQueryRecord(
            index=index,
            spec=spec,
            arrival=time,
            deadline=self._resolve_deadline(spec),
            tenant=spec.tenant,
        )
        self.records.append(logical)
        self.clock.at(time, self._admit_arrival, logical)

    def _resolve_deadline(self, spec: QuerySpec) -> Optional[float]:
        if spec.deadline is not None:
            return spec.deadline
        if spec.tenant is not None:
            tenant = self.tenants.get(spec.tenant)
            if tenant is not None and tenant.deadline is not None:
                return tenant.deadline
        if self._deadline is None:
            return None
        if isinstance(self._deadline, (int, float)):
            return float(self._deadline)
        low, high = self._deadline
        return self._deadline_rng.uniform(low, high)

    def _admit_arrival(self, logical: ClusterQueryRecord) -> None:
        if self.throttle is not None and not self._take_token(logical):
            self.throttled += 1
            logical.rejected = True
            logical.shed = "throttled"
            logical.error = (
                f"tenant {logical.tenant!r} token bucket empty "
                "(rate SLO enforced at cluster admission)"
            )
            return
        self._dispatch(logical, role="primary")

    def _take_token(self, logical: ClusterQueryRecord) -> bool:
        if logical.tenant is None:
            return True
        tenant = self.tenants.get(logical.tenant)
        if tenant is None or tenant.rate is None:
            return True
        now = self.clock.now
        capacity = max(1.0, tenant.rate * self.throttle.burst_seconds)
        bucket = self._buckets.get(logical.tenant)
        if bucket is None:
            bucket = [capacity, now]
            self._buckets[logical.tenant] = bucket
        tokens, last = bucket
        tokens = min(capacity, tokens + (now - last) * tenant.rate)
        if tokens >= 1.0:
            bucket[0] = tokens - 1.0
            bucket[1] = now
            return True
        bucket[0] = tokens
        bucket[1] = now
        return False

    # -- routing ----------------------------------------------------------

    def _estimate(self, spec: QuerySpec) -> float:
        key = (spec.shape, spec.cardinality, spec.strategy, spec.relations)
        if key in self._estimates:
            return self._estimates[key]
        estimate = predict_service_time(
            spec, self._machine_size, self._config, self._cost_model
        )
        if estimate is None:
            estimate = _FALLBACK_SERVICE
        self._estimates[key] = estimate
        return estimate

    def _candidates(self, now: float) -> List[int]:
        """Live shards the breakers will route to, in index order."""
        live = self.alive if self.failover else set(range(self.shards))
        picked = []
        for shard in range(self.shards):
            if shard not in live:
                continue
            breaker = self._breakers[shard]
            if breaker is not None and not breaker.allows(now):
                continue
            picked.append(shard)
        if not picked and self.failover:
            # Every live shard's breaker is open: routing *somewhere*
            # beats failing a query because of our own hysteresis.
            picked = sorted(self.alive)
        return picked

    def _choose(
        self,
        logical: ClusterQueryRecord,
        candidates: List[int],
        now: float,
        avoid: Optional[int] = None,
    ) -> int:
        """Pick a shard among ``candidates`` (non-empty) with the
        configured placement; deterministic tie-breaks (lowest index)."""
        pool = [s for s in candidates if s != avoid] or candidates
        if self.placement == "round_robin":
            start = logical.index % self.shards
            for offset in range(self.shards):
                shard = (start + offset) % self.shards
                if shard in pool:
                    return shard
        if self.placement == "hash":
            key = (
                logical.tenant
                if logical.tenant is not None
                else f"query:{logical.index}"
            )
            shard = ring_lookup_live(self._ring, key, set(pool))
            if shard is not None:
                return shard
        # least_loaded — and the fallback for the others.
        return min(pool, key=lambda s: (max(self._busy_until[s], now), s))

    def _least_loaded(
        self, candidates: List[int], now: float, avoid: int
    ) -> Optional[int]:
        pool = [s for s in candidates if s != avoid]
        if not pool:
            return None
        return min(pool, key=lambda s: (max(self._busy_until[s], now), s))

    def _dispatch(self, logical: ClusterQueryRecord, role: str) -> None:
        if logical.terminal:
            return
        now = self.clock.now
        if logical.deadline is not None:
            remaining = logical.arrival + logical.deadline - now
            if remaining <= 0.0:
                logical.rejected = True
                logical.shed = "expired"
                logical.deadline_missed = True
                logical.error = (
                    f"deadline ({logical.deadline:.3f}s) expired before "
                    "a surviving shard could take the query"
                )
                return
        candidates = self._candidates(now)
        if not candidates:
            self._retry_or_fail(logical, "no live shard")
            return
        shard = self._choose(logical, candidates, now)
        if not self.failover and shard not in self.alive:
            # The PR 9 baseline: a dead home shard loses the query.
            logical.failed = True
            logical.shard = shard
            logical.error = f"shard {shard} is down (no failover)"
            return
        before = self._busy_until[shard]
        self._submit_attempt(logical, shard, now, role)
        # Hedge only first dispatches: retries already failed once and
        # go wherever is alive; a hedge of a hedge never pays.
        if (
            role == "primary"
            and self.hedge is not None
            and not logical.hedged
            and len(candidates) >= 2
            and len(self._recent) >= self.hedge.min_observations
        ):
            slow = max(
                self._slowdown[shard], self._live_slowdown(shard, now)
            )
            forecast = slow * (
                max(before - now, 0.0) + self._estimate(logical.spec)
            )
            threshold = percentile(
                list(self._recent), self.hedge.percentile
            )
            if forecast > threshold:
                mate = self._least_loaded(candidates, now, avoid=shard)
                if mate is not None:
                    logical.hedged = True
                    self.hedges += 1
                    self._shard_stats[mate]["hedges"] += 1
                    self._submit_attempt(logical, mate, now, "hedge")
                    self._hedge_record[logical.index] = (
                        logical.attempt_records[-1][1]
                    )

    def _submit_attempt(
        self,
        logical: ClusterQueryRecord,
        shard: int,
        now: float,
        role: str,
    ) -> None:
        spec = logical.spec
        if logical.deadline is not None:
            remaining = logical.arrival + logical.deadline - now
            spec = replace(spec, deadline=remaining)
        else:
            spec = replace(spec, deadline=None)
        record = self.engines[shard].submit_at(now, spec)
        self._attempt_of[(shard, record.index)] = logical
        logical.attempt_records.append((shard, record))
        logical.dispatches += 1
        if role == "retry":
            # logical.retries already advanced when the retry was
            # scheduled (budget is spent at commitment, not dispatch).
            self._shard_stats[shard]["retries"] += 1
        self._shard_stats[shard]["dispatches"] += 1
        breaker = self._breakers[shard]
        if breaker is not None:
            breaker.on_dispatch()
        self._busy_until[shard] = (
            max(self._busy_until[shard], now) + self._estimate(logical.spec)
        )

    def _live_slowdown(self, shard: int, now: float) -> float:
        """The shard's slowness as visible right now: the largest
        age-over-estimate ratio among its in-flight attempts."""
        worst = 1.0
        for entry in self.engines[shard]._active.values():
            record = entry[0]
            if record.admitted is None:
                continue
            estimate = self._estimate(record.spec)
            if estimate > 0.0:
                worst = max(worst, (now - record.admitted) / estimate)
        return worst

    def _retry_or_fail(
        self, logical: ClusterQueryRecord, reason: str
    ) -> None:
        if logical.retries < self.retry_budget:
            delay = RETRY_BACKOFF * (2.0 ** logical.retries)
            self.retries_total += 1
            self.clock.at(
                self.clock.now + delay, self._retry_fire, logical
            )
            # The retry counter advances at *dispatch*; mark the intent
            # here so a crash landing between schedule and fire cannot
            # double-spend the budget.
            logical.retries += 1
        else:
            if self.retry_budget > 0:
                self.retry_exhausted += 1
            logical.failed = True
            logical.error = (
                f"{reason}; retry budget ({self.retry_budget}) exhausted"
                if self.retry_budget > 0
                else reason
            )

    def _retry_fire(self, logical: ClusterQueryRecord) -> None:
        if logical.terminal or self._has_live_attempt(logical):
            return
        self._dispatch(logical, role="retry")

    def _has_live_attempt(self, logical: ClusterQueryRecord) -> bool:
        return any(
            not self.engines[shard]._terminal(record)
            for shard, record in logical.attempt_records
        )

    # -- attempt outcomes -------------------------------------------------

    def _make_done_hook(self, shard: int):
        def hook(record):
            self._attempt_done(shard, record)

        return hook

    def _record_outcome(self, shard: int, success: bool) -> None:
        breaker = self._breakers[shard]
        if breaker is not None:
            breaker.record(success, self.clock.now)

    def _attempt_done(self, shard: int, record) -> None:
        if self._evacuating:
            return  # the crash handler owns these outcomes
        logical = self._attempt_of.get((shard, record.index))
        if logical is None:
            return
        if logical.terminal:
            return  # a sibling already decided the query
        if record.completed is not None:
            self._attempt_won(shard, record, logical)
            return
        if record.deadline_missed:
            # The logical deadline is absolute: no attempt can beat it.
            logical.deadline_missed = True
            logical.shard = shard
            logical.error = record.error
            if record.shed is not None:
                logical.rejected = True
                logical.shed = record.shed
            else:
                logical.failed = True
            self._cancel_siblings(logical, record, "deadline expired")
            return
        if record.cancelled:
            # Not cancelled by us (we only cancel after the logical
            # query is terminal) — propagate the external cancellation.
            logical.cancelled = True
            logical.shard = shard
            logical.error = record.error
            return
        stranded = (
            record.error
            == "machine degraded by failures: no feasible allocation"
        )
        if record.failed or stranded:
            # Crash-stop abort (engine-level fault, recovery gave up)
            # or a degraded machine stranding the attempt.
            self._record_outcome(shard, success=False)
            if self._has_live_attempt(logical):
                return  # a hedge sibling may still win
            self._retry_or_fail(
                logical, record.error or f"attempt failed on shard {shard}"
            )
            if logical.failed:
                logical.shard = shard
            return
        # Admission rejection / load shed / tenant cap: a deliberate
        # policy decision, terminal for the logical query too.
        logical.rejected = True
        logical.shard = shard
        logical.shed = record.shed
        logical.error = record.error
        self._cancel_siblings(logical, record, "sibling attempt shed")

    def _attempt_won(self, shard: int, record, logical) -> None:
        logical.completed = record.completed
        logical.admitted = record.admitted
        logical.shard = shard
        logical.strategy = record.strategy
        logical.processors = record.processors
        # Deterministic tie-break: on a simultaneous finish the attempt
        # whose completion event was scheduled first dispatches first
        # and wins; the sibling is cancelled through the ordinary
        # cancellation path.
        if self._hedge_record.get(logical.index) is record:
            logical.hedge_won = True
            self.hedge_wins += 1
        self._record_outcome(shard, success=True)
        if record.latency is not None:
            self._recent.append(record.latency)
        if self.hedge is not None and record.service_time:
            estimate = self._estimate(logical.spec)
            if estimate > 0.0:
                observed = record.service_time / estimate
                self._slowdown[shard] += 0.5 * (
                    observed - self._slowdown[shard]
                )
        self._cancel_siblings(logical, record, "lost the hedge race")

    def _cancel_siblings(self, logical, winner, reason: str) -> None:
        for shard, record in logical.attempt_records:
            if record is winner:
                continue
            engine = self.engines[shard]
            if not engine._terminal(record):
                engine.cancel(record, reason)

    # -- the run ----------------------------------------------------------

    def run(
        self, arrivals: Sequence[Tuple[float, QuerySpec]]
    ) -> ResilientClusterResult:
        if self._started:
            raise RuntimeError(
                "a ResilientCluster runs one workload; build a fresh one"
            )
        self._started = True
        for index, (time, spec) in enumerate(arrivals):
            self.submit(index, time, spec)
        self._run_clock()
        # Engine-level faults can permanently degrade a live shard and
        # strand its queue (same contract as WorkloadEngine._drain);
        # shedding the stuck head flows back through the hook, so a
        # stranded query still gets its cluster-level retries.
        faulted = self.shard_faults is not None or any(
            engine.injector is not None for engine in self.engines
        )
        progress = True
        while progress:
            progress = False
            for engine in self.engines:
                if not engine._queue:
                    continue
                if not faulted:
                    stuck = [r.index for r in engine._queue]
                    raise RuntimeError(
                        f"cluster drained with queries {stuck} still "
                        "queued; the policy never found them an allocation"
                    )
                if engine._shed_stranded():
                    progress = True
                    self._run_clock()
        loose = [r.index for r in self.records if not r.terminal]
        if loose:
            raise RuntimeError(
                f"conservation violated: queries {loose[:10]} ended in "
                "no terminal state"
            )
        return self._collect()

    def _run_clock(self) -> None:
        try:
            self.clock.run()
        except WatchdogError as exc:
            queued = sum(len(e._queue) for e in self.engines)
            active = sum(len(e._active) for e in self.engines)
            raise WatchdogError(
                str(exc).splitlines()[0],
                at=exc.at,
                diagnostic=(
                    f"{exc.diagnostic}\n"
                    f"cluster state at trip: {queued} queued, "
                    f"{active} in flight, {len(self.records)} submitted, "
                    f"alive shards {sorted(self.alive)}"
                ),
            ) from exc

    def _collect(self) -> ResilientClusterResult:
        reports = []
        for shard, engine in enumerate(self.engines):
            result = engine.collect_result()
            reports.append(
                ShardReport(
                    shard=shard,
                    rows=result.rows(),
                    machine_size=engine.machine.size,
                    policy=result.policy,
                    makespan=result.makespan,
                    busy_seconds=result.busy_seconds,
                    peak_in_flight=result.peak_in_flight,
                    peak_queued=result.peak_queued,
                    scheduler=result.scheduler,
                    scheduling_decisions=result.scheduling_decisions,
                    fast_path_queries=result.fast_path_queries,
                    capacity_base=engine.machine.size,
                    capacity_max=engine.machine.size,
                    capacity_final=engine.machine.size,
                )
            )
        per_shard = []
        for shard, stats in enumerate(self._shard_stats):
            per_shard.append(
                {
                    "shard": shard,
                    "alive": shard in self.alive,
                    **stats,
                }
            )
        resilience = {
            "shard_crashes": self.shard_crashes,
            "shard_repairs": self.shard_repairs,
            "evacuated_running": self.evacuated_running,
            "evacuated_queued": self.evacuated_queued,
            "retries": self.retries_total,
            "rerouted": self.rerouted,
            "retry_exhausted": self.retry_exhausted,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "throttled": self.throttled,
            "breaker_opens": sum(
                b.opens for b in self._breakers if b is not None
            ),
            "per_shard": per_shard,
        }
        return ResilientClusterResult(
            shards=reports,
            placement=self.placement,
            autoscale="static",
            migrations=0,
            records=self.records,
            resilience=resilience,
        )


def run_resilient_cluster(
    *,
    open_arrivals: Sequence[Tuple[float, QuerySpec]],
    shards: int,
    engine_options: Dict,
    placement: str = "hash",
    shard_faults: Optional[FaultSchedule] = None,
    retry_budget: int = 0,
    hedge=None,
    breaker=None,
    throttle=None,
    failover: bool = True,
    workers: Optional[int] = None,
) -> ResilientClusterResult:
    """Run the coordinated (single-clock) resilient cluster.

    ``workers`` is accepted for signature symmetry with the pre-routed
    fan-out and ignored: the shards share one clock, so the run is
    inherently serial — and therefore trivially identical at any
    worker count.  Parallelism lives one level up, in the chaos
    harness's campaign points (:mod:`repro.cluster.chaos`).
    """
    del workers
    cluster = ResilientCluster(
        shards=shards,
        engine_options=engine_options,
        placement=placement,
        shard_faults=shard_faults,
        retry_budget=retry_budget,
        hedge=hedge,
        breaker=breaker,
        throttle=throttle,
        failover=failover,
        watchdog_limit=engine_options.get(
            "watchdog_limit", DEFAULT_MAX_EVENTS_PER_INSTANT
        ),
    )
    return cluster.run(open_arrivals)


__all__ = [
    "RETRY_BACKOFF",
    "BreakerPolicy",
    "ClusterQueryRecord",
    "HedgePolicy",
    "ResilientCluster",
    "ResilientClusterResult",
    "ThrottlePolicy",
    "run_resilient_cluster",
]
