"""Tenant-to-shard placement policies.

The router assigns every arriving query to one of N shards before any
shard starts simulating, so placement must be a pure function of the
arrival stream — never of simulated execution state.  Three policies:

``hash``
    A consistent-hash ring over SHA-1 digests (never Python's
    randomized ``hash()``) with virtual nodes per shard.  Keyed on the
    query's tenant (untenanted queries key on their submission index,
    which spreads them uniformly).  Adding or removing a shard moves
    only ~1/N of the tenants — the classic stability property, pinned
    by a test.

``least_loaded``
    Tracks an analytic occupancy forecast per shard: each placement
    advances the chosen shard's forecasted busy-until horizon by the
    query's predicted service time (the Section 3 cost model at
    advised parallelism, cached per spec).  Ties break to the lowest
    shard index, so tied forecasts place deterministically.

``round_robin``
    Submission order modulo the shard count.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Tuple

from ..workload.mix import QuerySpec

#: The placement policies :func:`make_placement` accepts.
PLACEMENT_NAMES = ("hash", "least_loaded", "round_robin")

#: Virtual nodes per shard on the consistent-hash ring.  More replicas
#: smooth the key distribution; 64 keeps the ring small while holding
#: the add-a-shard movement near the ideal 1/N.
RING_REPLICAS = 64

#: Forecasted service seconds charged for a spec the analytic model
#: cannot cost (infeasible plans are rejected at admission anyway).
_FALLBACK_SERVICE = 1.0


def _digest(key: str) -> int:
    """Stable 64-bit hash point (SHA-1 prefix) — identical across
    processes and Python versions, unlike built-in ``hash``."""
    return int.from_bytes(
        hashlib.sha1(key.encode("utf-8")).digest()[:8], "big"
    )


class PlacementPolicy:
    """Base: stateful per-run, deterministic, reset before each run."""

    name = "base"

    def reset(self, shards: int, context: Optional[Dict] = None) -> None:
        if shards < 1:
            raise ValueError("a cluster needs at least one shard")
        self.shards = shards

    def place(self, index: int, arrival: float, spec: QuerySpec) -> int:
        raise NotImplementedError


class HashPlacement(PlacementPolicy):
    """Consistent tenant→shard hashing with virtual nodes."""

    name = "hash"

    def reset(self, shards: int, context: Optional[Dict] = None) -> None:
        super().reset(shards, context)
        self._ring = build_ring(shards)

    def key_of(self, index: int, spec: QuerySpec) -> str:
        return spec.tenant if spec.tenant is not None else f"query:{index}"

    def place(self, index: int, arrival: float, spec: QuerySpec) -> int:
        return ring_lookup(self._ring, self.key_of(index, spec))


class LeastLoadedPlacement(PlacementPolicy):
    """Route to the shard with the earliest analytic busy-until
    forecast; deterministic tie-break on the lowest shard index."""

    name = "least_loaded"

    def reset(self, shards: int, context: Optional[Dict] = None) -> None:
        super().reset(shards, context)
        context = context or {}
        self._machine_size = context.get("machine_size", 40)
        self._config = context.get("config")
        self._cost_model = context.get("cost_model")
        self._busy_until = [0.0] * shards
        self._estimates: Dict[QuerySpec, float] = {}

    def _estimate(self, spec: QuerySpec) -> float:
        if spec in self._estimates:
            return self._estimates[spec]
        estimate = predict_service_time(
            spec, self._machine_size, self._config, self._cost_model
        )
        if estimate is None:
            estimate = _FALLBACK_SERVICE
        self._estimates[spec] = estimate
        return estimate

    def place(self, index: int, arrival: float, spec: QuerySpec) -> int:
        # min() is stable: on tied forecasts the lowest index wins.
        shard = min(
            range(self.shards),
            key=lambda s: max(self._busy_until[s], arrival),
        )
        self._busy_until[shard] = (
            max(self._busy_until[shard], arrival) + self._estimate(spec)
        )
        return shard


class RoundRobinPlacement(PlacementPolicy):
    """Submission order modulo the shard count."""

    name = "round_robin"

    def place(self, index: int, arrival: float, spec: QuerySpec) -> int:
        return index % self.shards


def make_placement(policy) -> PlacementPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, PlacementPolicy):
        return policy
    if policy == "hash":
        return HashPlacement()
    if policy == "least_loaded":
        return LeastLoadedPlacement()
    if policy == "round_robin":
        return RoundRobinPlacement()
    raise ValueError(
        f"unknown placement policy {policy!r}; expected one of "
        f"{PLACEMENT_NAMES}"
    )


# -- the consistent-hash ring ---------------------------------------------


def build_ring(
    shards: int, replicas: int = RING_REPLICAS
) -> Tuple[List[int], List[int]]:
    """``(points, owners)`` sorted by hash point; ``owners[i]`` is the
    shard owning ``points[i]``."""
    if shards < 1:
        raise ValueError("a ring needs at least one shard")
    pairs = sorted(
        (_digest(f"shard:{shard}:replica:{replica}"), shard)
        for shard in range(shards)
        for replica in range(replicas)
    )
    return [point for point, _ in pairs], [owner for _, owner in pairs]


def ring_lookup(ring: Tuple[List[int], List[int]], key: str) -> int:
    """First ring point clockwise of the key's hash (wrapping)."""
    points, owners = ring
    position = bisect.bisect_right(points, _digest(key))
    if position == len(points):
        position = 0
    return owners[position]


def ring_lookup_live(
    ring: Tuple[List[int], List[int]], key: str, alive
) -> Optional[int]:
    """First ring point clockwise of the key whose owner is in
    ``alive`` (wrapping).  This is consistent-hash failover: a dead
    shard's keys walk clockwise onto the *next* live owner, so only
    ~1/N of the keyspace moves per dead shard, and a repaired shard's
    keys snap back to their original owner (the walk stops at the
    first point again).  Returns ``None`` when no live shard exists.
    """
    points, owners = ring
    if not alive:
        return None
    start = bisect.bisect_right(points, _digest(key))
    for offset in range(len(points)):
        owner = owners[(start + offset) % len(points)]
        if owner in alive:
            return owner
    return None


def ring_assignments(keys, shards: int) -> Dict[str, int]:
    """Map every key to its shard on a fresh ring — the stability
    test's helper (compare assignments at N and N+1 shards)."""
    ring = build_ring(shards)
    return {key: ring_lookup(ring, key) for key in keys}


# -- the analytic service-time forecast -----------------------------------


def predict_service_time(
    spec: QuerySpec,
    machine_size: int,
    config=None,
    cost_model=None,
) -> Optional[float]:
    """Analytic response time of ``spec`` at advised parallelism on a
    ``machine_size`` shard — delegates to
    :func:`repro.model.analytic.predict_spec_service_time`, where the
    model lives alongside the other Section 3 forecasts.  Returns
    ``None`` for an infeasible spec.
    """
    from ..model.analytic import predict_spec_service_time

    return predict_spec_service_time(spec, machine_size, config, cost_model)
