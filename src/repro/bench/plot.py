"""ASCII line plots of response-time sweeps.

The paper's Figures 9-13 are line charts (response time versus number
of processors, one curve per strategy).  This module renders the same
charts as terminal-friendly ASCII, used by EXPERIMENTS.md and the
examples so the reproduction's output is visually comparable to the
paper's figures.
"""

from __future__ import annotations

from typing import Optional

from .workloads import SweepResult

#: Plot glyph per strategy, mirroring the figures' point markers.
MARKERS = {"SP": "*", "SE": "o", "RD": "+", "FP": "#"}


def ascii_plot(
    sweep: SweepResult,
    width: int = 64,
    height: int = 18,
    y_max: Optional[float] = None,
) -> str:
    """Render one sweep as an ASCII chart.

    The x-axis spans the experiment's processor counts; the y-axis
    spans 0 to ``y_max`` (default: 1.05x the slowest observation).
    Later-drawn strategies overwrite earlier ones on collisions, in
    the paper's SP, SE, RD, FP order, so FP's curve is always visible.
    """
    experiment = sweep.experiment
    procs = experiment.processor_counts
    if y_max is None:
        y_max = 1.05 * max(
            max(series.response_times) for series in sweep.series.values()
        )
    if y_max <= 0:
        raise ValueError("y_max must be positive")
    grid = [[" "] * width for _ in range(height)]

    def x_of(processors: int) -> int:
        span = max(procs[-1] - procs[0], 1)
        return round((processors - procs[0]) / span * (width - 1))

    def y_of(seconds: float) -> int:
        row = round(seconds / y_max * (height - 1))
        return (height - 1) - min(max(row, 0), height - 1)

    for name in ("SP", "SE", "RD", "FP"):
        series = sweep.series.get(name)
        if series is None:
            continue
        marker = MARKERS.get(name, name[0])
        points = [
            (x_of(p), y_of(t))
            for p, t in zip(procs, series.response_times)
        ]
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            for x, y in _line(x0, y0, x1, y1):
                grid[y][x] = marker
        for x, y in points:
            grid[y][x] = marker

    lines = [f"{sweep.experiment.title}   (y: 0..{y_max:.0f}s)"]
    for r, row in enumerate(grid):
        label = ""
        if r == 0:
            label = f"{y_max:6.1f}s"
        elif r == height - 1:
            label = f"{0.0:6.1f}s"
        lines.append(f"{label:>8}|{''.join(row)}|")
    axis_labels = f"{procs[0]}" + " " * (width - len(str(procs[0])) - len(str(procs[-1]))) + f"{procs[-1]}"
    lines.append(" " * 8 + "+" + "-" * width + "+")
    lines.append(" " * 9 + axis_labels + "  processors")
    lines.append(
        " " * 9
        + "legend: "
        + "  ".join(f"{MARKERS[s]}={s}" for s in ("SP", "SE", "RD", "FP"))
    )
    return "\n".join(lines)


def _line(x0: int, y0: int, x1: int, y1: int):
    """Integer points of a Bresenham segment."""
    dx = abs(x1 - x0)
    dy = -abs(y1 - y0)
    sx = 1 if x0 < x1 else -1
    sy = 1 if y0 < y1 else -1
    err = dx + dy
    x, y = x0, y0
    while True:
        yield x, y
        if x == x1 and y == y1:
            return
        e2 = 2 * err
        if e2 >= dy:
            err += dy
            x += sx
        if e2 <= dx:
            err += dx
            y += sy
