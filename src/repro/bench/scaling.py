"""Speedup and efficiency analysis of the sweeps.

The paper reports raw response times; the parallel-databases canon it
cites ([DeG92] "Parallel database systems: the future of high
performance database systems") frames such results as *speedup* and
*efficiency*.  This module derives both from any sweep, plus the
knee of each curve (the processor count past which adding nodes stops
paying — the quantity behind the §2.3.1 √size rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .workloads import Series, SweepResult


@dataclass(frozen=True)
class ScalingCurve:
    """Speedup/efficiency of one strategy across a sweep."""

    strategy: str
    processor_counts: Tuple[int, ...]
    response_times: Tuple[float, ...]
    #: Speedup relative to the smallest machine in the sweep,
    #: normalized by the processor ratio.
    speedups: Tuple[float, ...]
    efficiencies: Tuple[float, ...]

    def knee(self, threshold: float = 0.5) -> int:
        """Largest processor count whose marginal efficiency is still
        at least ``threshold``: adding the last block of processors
        bought at least ``threshold`` times the ideal gain."""
        best = self.processor_counts[0]
        for i in range(1, len(self.processor_counts)):
            p_prev, p_now = self.processor_counts[i - 1], self.processor_counts[i]
            t_prev, t_now = self.response_times[i - 1], self.response_times[i]
            if t_now >= t_prev:
                break
            # Marginal speedup vs ideal marginal speedup.
            actual = t_prev / t_now
            ideal = p_now / p_prev
            if (actual - 1) / (ideal - 1) < threshold:
                break
            best = p_now
        return best


def scaling_curve(series: Series) -> ScalingCurve:
    """Derive the scaling curve of one strategy's series."""
    base_procs = series.processor_counts[0]
    base_time = series.response_times[0]
    speedups = tuple(
        base_time / t if t > 0 else float("inf") for t in series.response_times
    )
    efficiencies = tuple(
        s * base_procs / p
        for s, p in zip(speedups, series.processor_counts)
    )
    return ScalingCurve(
        series.strategy,
        series.processor_counts,
        series.response_times,
        speedups,
        efficiencies,
    )


def scaling_report(sweep: SweepResult) -> str:
    """Text table of speedup and efficiency for all strategies."""
    curves = {name: scaling_curve(s) for name, s in sweep.series.items()}
    lines = [f"{sweep.experiment.title} — scaling relative to "
             f"{sweep.experiment.processor_counts[0]} processors"]
    header = "procs  " + "  ".join(
        f"{name + ' S':>8}{name + ' E':>8}" for name in curves
    )
    lines.append(header)
    for i, procs in enumerate(sweep.experiment.processor_counts):
        cells = "  ".join(
            f"{curves[name].speedups[i]:8.2f}{curves[name].efficiencies[i]:8.2f}"
            for name in curves
        )
        lines.append(f"{procs:5d}  {cells}")
    lines.append(
        "knees: "
        + ", ".join(f"{name}@{curve.knee()}" for name, curve in curves.items())
    )
    return "\n".join(lines)


def best_scaling_strategy(sweep: SweepResult) -> str:
    """The strategy with the highest speedup at the largest machine —
    the paper's 'best job in scaling up' criterion."""
    curves = {name: scaling_curve(s) for name, s in sweep.series.items()}
    return max(curves, key=lambda name: curves[name].speedups[-1])
