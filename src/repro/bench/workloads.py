"""The paper's experimental workloads (Section 4.1–4.2).

One multi-join query over ten Wisconsin relations; varied are the
parallelization strategy (SP/SE/RD/FP), the number of processors
(20–80 for the 5K experiment, 30–80 for 40K — the 40K query was too
large for fewer than 30 of PRISMA's 16 MB nodes), the query shape
(the five Figure 8 trees), and the problem size (5 000 or 40 000
tuples per relation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cost import Catalog, CostModel
from ..core.shapes import SHAPE_NAMES, SHAPE_TITLES, make_shape, paper_relation_names
from ..core.strategies import get_strategy, strategy_names
from ..core.trees import Node
from ..sim.machine import MachineConfig
from ..sim.run import simulate

#: Relations in the paper's query.
RELATION_COUNT = 10

#: Tuples per relation in the small ("5K") and large ("40K") experiments.
SMALL_CARDINALITY = 5_000
LARGE_CARDINALITY = 40_000

#: Processor sweeps (the 40K query does not fit under 30 nodes).
SMALL_PROCESSORS: Tuple[int, ...] = (20, 30, 40, 50, 60, 70, 80)
LARGE_PROCESSORS: Tuple[int, ...] = (30, 40, 50, 60, 70, 80)

#: Experiment size labels as the paper prints them.
SIZE_LABELS = {SMALL_CARDINALITY: "5K", LARGE_CARDINALITY: "40K"}

#: Paper figure number per query shape (Figures 9–13).
FIGURE_OF_SHAPE = {
    "left_linear": 9,
    "left_bushy": 10,
    "wide_bushy": 11,
    "right_bushy": 12,
    "right_linear": 13,
}


@dataclass(frozen=True)
class Experiment:
    """One response-time sweep: a shape at a size over processor counts."""

    shape: str
    cardinality: int
    processor_counts: Tuple[int, ...]

    @property
    def size_label(self) -> str:
        return SIZE_LABELS.get(self.cardinality, str(self.cardinality))

    @property
    def figure(self) -> int:
        return FIGURE_OF_SHAPE[self.shape]

    @property
    def title(self) -> str:
        return f"Figure {self.figure} ({SHAPE_TITLES[self.shape]}, {self.size_label})"

    def tree(self) -> Node:
        return make_shape(self.shape, paper_relation_names(RELATION_COUNT))

    def catalog(self) -> Catalog:
        return Catalog.regular(paper_relation_names(RELATION_COUNT), self.cardinality)


def paper_experiments(shape: str) -> Tuple[Experiment, Experiment]:
    """The (5K, 40K) experiment pair of one figure."""
    if shape not in SHAPE_NAMES:
        raise ValueError(f"unknown shape {shape!r}")
    return (
        Experiment(shape, SMALL_CARDINALITY, SMALL_PROCESSORS),
        Experiment(shape, LARGE_CARDINALITY, LARGE_PROCESSORS),
    )


def all_paper_experiments() -> List[Experiment]:
    """All ten sweeps of the evaluation (5 shapes × 2 sizes)."""
    out: List[Experiment] = []
    for shape in SHAPE_NAMES:
        out.extend(paper_experiments(shape))
    return out


@dataclass
class Series:
    """Response times of one strategy across a processor sweep."""

    strategy: str
    processor_counts: Tuple[int, ...]
    response_times: Tuple[float, ...]

    def at(self, processors: int) -> float:
        return self.response_times[self.processor_counts.index(processors)]

    def best(self) -> Tuple[float, int]:
        """(best response time, processor count achieving it)."""
        idx = min(
            range(len(self.response_times)), key=lambda i: self.response_times[i]
        )
        return self.response_times[idx], self.processor_counts[idx]


@dataclass
class SweepResult:
    """All four strategies' series for one experiment."""

    experiment: Experiment
    series: Dict[str, Series]

    def best_cell(self) -> Tuple[float, str, int]:
        """(best seconds, strategy, processors) — one Figure 14 cell."""
        best: Optional[Tuple[float, str, int]] = None
        for name, series in self.series.items():
            seconds, procs = series.best()
            if best is None or seconds < best[0]:
                best = (seconds, name, procs)
        assert best is not None
        return best

    def table(self) -> str:
        """Plain-text data table of the figure."""
        strategies = list(self.series)
        header = "procs  " + "  ".join(f"{s:>8}" for s in strategies)
        lines = [self.experiment.title, header]
        for i, procs in enumerate(self.experiment.processor_counts):
            cells = "  ".join(
                f"{self.series[s].response_times[i]:8.2f}" for s in strategies
            )
            lines.append(f"{procs:5d}  {cells}")
        return "\n".join(lines)


def run_sweep(
    experiment: Experiment,
    strategies: Optional[Sequence[str]] = None,
    config: Optional[MachineConfig] = None,
    cost_model: Optional[CostModel] = None,
) -> SweepResult:
    """Run one experiment serially, in-process: all strategies over its
    processor counts.  The parallel, disk-cached counterpart is
    :func:`repro.bench.runner.sweep` / :func:`repro.runner.run_sweep`."""
    if strategies is None:
        strategies = strategy_names()
    if config is None:
        config = MachineConfig.paper()
    if cost_model is None:
        cost_model = CostModel()
    tree = experiment.tree()
    catalog = experiment.catalog()
    series: Dict[str, Series] = {}
    for name in strategies:
        strategy = get_strategy(name)
        times = []
        for processors in experiment.processor_counts:
            schedule = strategy.schedule(tree, catalog, processors, cost_model)
            result = simulate(schedule, catalog, config, cost_model=cost_model)
            times.append(result.response_time)
        series[name] = Series(name, experiment.processor_counts, tuple(times))
    return SweepResult(experiment, series)
