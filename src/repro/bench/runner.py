"""Figure sweeps on the parallel runner, memoized in-process.

The figure benchmarks share sweeps (Figure 14 needs all of Figures
9–13), so results are memoized per (experiment, config) within the
process; the actual computation is delegated to the process-parallel
sweep runner (:mod:`repro.runner`), whose content-addressed disk cache
(``.repro_cache/``) makes repeated benchmark runs near-instant across
processes as well.  Use :func:`clear_cache` between calibration
iterations (it drops the in-process memo only — the disk cache keys on
every machine constant, so calibration's config changes never collide).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..sim.machine import MachineConfig
from .workloads import (
    Experiment,
    SweepResult,
    all_paper_experiments,
    paper_experiments,
)

_CACHE: Dict[Tuple, SweepResult] = {}


def _key(experiment: Experiment, config: MachineConfig, strategies) -> Tuple:
    return (
        experiment,
        config,
        tuple(strategies) if strategies else None,
    )


def sweep(
    experiment: Experiment,
    config: Optional[MachineConfig] = None,
    strategies: Optional[Sequence[str]] = None,
) -> SweepResult:
    """One experiment's sweep, computed on the parallel runner."""
    if config is None:
        config = MachineConfig.paper()
    key = _key(experiment, config, strategies)
    if key not in _CACHE:
        # Imported lazily: repro.runner reaches back into repro.bench
        # for the SweepResult bridge.
        from ..core.strategies import strategy_names
        from ..runner import SweepSpec, run_sweep as run_spec, to_sweep_result

        spec = SweepSpec(
            shapes=(experiment.shape,),
            strategies=tuple(strategies) if strategies else tuple(strategy_names()),
            processors=tuple(experiment.processor_counts),
            cardinalities=(experiment.cardinality,),
            configs=(config,),
        )
        run = run_spec(spec)
        _CACHE[key] = to_sweep_result(run.rows(), experiment)
    return _CACHE[key]


def figure_sweeps(
    shape: str, config: Optional[MachineConfig] = None
) -> Tuple[SweepResult, SweepResult]:
    """The (5K, 40K) sweeps of one figure."""
    small, large = paper_experiments(shape)
    return sweep(small, config), sweep(large, config)


def all_sweeps(
    config: Optional[MachineConfig] = None,
) -> Dict[Tuple[str, str], SweepResult]:
    """Every sweep of the evaluation, keyed (shape, size label)."""
    out: Dict[Tuple[str, str], SweepResult] = {}
    for experiment in all_paper_experiments():
        result = sweep(experiment, config)
        out[(experiment.shape, experiment.size_label)] = result
    return out


def clear_cache() -> None:
    """Drop memoized sweeps (used by calibration loops)."""
    _CACHE.clear()
