"""Sweep runner with in-process caching.

The figure benchmarks share sweeps (Figure 14 needs all of Figures
9–13), so results are memoized per (experiment, config) within the
process.  Use :func:`clear_cache` between calibration iterations.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..core.cost import CostModel
from ..sim.machine import MachineConfig
from .workloads import (
    Experiment,
    SweepResult,
    all_paper_experiments,
    paper_experiments,
    run_sweep,
)

_CACHE: Dict[Tuple, SweepResult] = {}


def _key(experiment: Experiment, config: MachineConfig, strategies) -> Tuple:
    return (
        experiment,
        config,
        tuple(strategies) if strategies else None,
    )


def sweep(
    experiment: Experiment,
    config: Optional[MachineConfig] = None,
    strategies: Optional[Sequence[str]] = None,
) -> SweepResult:
    """Memoized :func:`~repro.bench.workloads.run_sweep`."""
    if config is None:
        config = MachineConfig.paper()
    key = _key(experiment, config, strategies)
    if key not in _CACHE:
        _CACHE[key] = run_sweep(experiment, strategies, config)
    return _CACHE[key]


def figure_sweeps(
    shape: str, config: Optional[MachineConfig] = None
) -> Tuple[SweepResult, SweepResult]:
    """The (5K, 40K) sweeps of one figure."""
    small, large = paper_experiments(shape)
    return sweep(small, config), sweep(large, config)


def all_sweeps(
    config: Optional[MachineConfig] = None,
) -> Dict[Tuple[str, str], SweepResult]:
    """Every sweep of the evaluation, keyed (shape, size label)."""
    out: Dict[Tuple[str, str], SweepResult] = {}
    for experiment in all_paper_experiments():
        result = sweep(experiment, config)
        out[(experiment.shape, experiment.size_label)] = result
    return out


def clear_cache() -> None:
    """Drop memoized sweeps (used by calibration loops)."""
    _CACHE.clear()
