"""Reference data digitized from the paper.

Figure 14 is printed as exact numbers; Figures 9–13 are curves, so
their content is encoded as the *qualitative claims* Section 4.4 makes
about them — the claims a reproduction must reproduce (who wins, who
coincides with whom, where crossovers fall).  Each claim is a callable
check over a :class:`~repro.bench.workloads.SweepResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .workloads import SweepResult

#: Figure 14 — best response times in seconds, with the (strategy,
#: processors) that achieved them, exactly as printed.
PAPER_FIGURE_14: Dict[Tuple[str, str], Tuple[float, str, int]] = {
    ("left_linear", "5K"): (9.4, "FP", 40),
    ("left_bushy", "5K"): (7.0, "FP", 80),
    ("wide_bushy", "5K"): (5.2, "FP", 80),
    ("right_bushy", "5K"): (5.7, "RD", 80),
    ("right_linear", "5K"): (10.1, "FP", 60),
    ("left_linear", "40K"): (34.0, "FP", 80),
    ("left_bushy", "40K"): (34.0, "FP", 80),
    ("wide_bushy", "40K"): (26.0, "SE", 80),
    ("right_bushy", "40K"): (32.0, "RD", 80),
    ("right_linear", "40K"): (33.0, "RD", 80),
}


@dataclass(frozen=True)
class Claim:
    """One qualitative claim of Section 4.4 about a figure."""

    figure: int
    description: str
    check: Callable[[SweepResult], bool]

    def holds(self, sweep: SweepResult) -> bool:
        return self.check(sweep)


def _coincide(sweep: SweepResult, a: str, b: str, tolerance: float = 0.12) -> bool:
    """Two strategies' curves coincide within a relative tolerance."""
    sa, sb = sweep.series[a], sweep.series[b]
    return all(
        abs(x - y) <= tolerance * max(x, y)
        for x, y in zip(sa.response_times, sb.response_times)
    )


def _wins_at_max(sweep: SweepResult, name: str, slack: float = 0.0) -> bool:
    """``name`` is (within ``slack``) the best strategy at the largest
    processor count of the sweep."""
    procs = sweep.experiment.processor_counts[-1]
    mine = sweep.series[name].at(procs)
    best = min(series.at(procs) for series in sweep.series.values())
    return mine <= best * (1.0 + slack)


def _between_at_max(sweep: SweepResult, name: str) -> bool:
    """``name`` lands between FP (best) and SP (worst) at max
    processors, with a 5% band for near-ties at either end."""
    procs = sweep.experiment.processor_counts[-1]
    value = sweep.series[name].at(procs)
    return (
        sweep.series["FP"].at(procs) * 0.95
        <= value
        <= sweep.series["SP"].at(procs) * 1.05
    )


def _sp_degrades(sweep: SweepResult) -> bool:
    """SP's overhead dominates at large processor counts.

    "The 5K experiment shows this effect stronger than the 40K
    experiment" (Section 4.4): for 5K the curve's minimum must be
    interior (it rises again); for 40K — whose optimum processor count
    lies near or beyond 80 per the √size rule — it suffices that SP
    has fallen clearly behind the best strategy at 80 processors.
    """
    series = sweep.series["SP"]
    if sweep.experiment.cardinality < 40_000:
        return series.response_times[-1] > min(series.response_times) * 1.05
    procs = sweep.experiment.processor_counts[-1]
    best = min(s.at(procs) for s in sweep.series.values())
    return series.at(procs) > best * 1.2


def claims_for_figure(figure: int) -> List[Claim]:
    """The Section 4.4 claims about one of Figures 9–13."""
    if figure == 9:  # left linear
        return [
            Claim(9, "SE degenerates to SP on a left-linear tree",
                  lambda s: _coincide(s, "SE", "SP")),
            Claim(9, "RD degenerates to SP on a left-linear tree",
                  lambda s: _coincide(s, "RD", "SP")),
            Claim(9, "SP's performance degenerates for larger processor counts",
                  _sp_degrades),
            Claim(9, "FP is the best strategy at the largest processor count",
                  lambda s: _wins_at_max(s, "FP", slack=0.02)),
            Claim(9, "for the 40K experiment FP loses to SP at the lowest "
                     "processor count (constant delay over the long pipeline)",
                  lambda s: (
                      s.experiment.cardinality < 40_000
                      or s.series["FP"].response_times[0]
                      > s.series["SP"].response_times[0]
                  )),
        ]
    if figure == 10:  # left-oriented bushy
        return [
            Claim(10, "SE performs between SP and FP at high processor counts",
                  lambda s: _between_at_max(s, "SE")),
            Claim(10, "RD performs between SP and FP at high processor counts",
                  lambda s: _between_at_max(s, "RD")),
            Claim(10, "SE and RD work much better than on the left-linear tree",
                  lambda s: s.series["SE"].best()[0] < s.series["SP"].best()[0]),
            Claim(10, "FP is the best strategy at the largest processor count",
                  lambda s: _wins_at_max(s, "FP", slack=0.10)),
        ]
    if figure == 11:  # wide bushy
        return [
            Claim(11, "SE wins the large (40K) experiment",
                  lambda s: (
                      s.experiment.cardinality < 40_000
                      or _wins_at_max(s, "SE", slack=0.02)
                  )),
            Claim(11, "SE is almost as good as FP on the small experiment",
                  lambda s: (
                      s.experiment.cardinality >= 40_000
                      or s.series["SE"].best()[0]
                      <= s.series["FP"].best()[0] * 1.6
                  )),
            Claim(11, "FP wins the small (5K) experiment",
                  lambda s: (
                      s.experiment.cardinality >= 40_000
                      or _wins_at_max(s, "FP", slack=0.02)
                  )),
            Claim(11, "RD performs better than on the left-oriented tree "
                      "(checked externally against Figure 10)",
                  lambda s: True),
        ]
    if figure == 12:  # right-oriented bushy
        return [
            Claim(12, "RD performs best on this tree (the paper's own RD/FP "
                      "gap at 5K-80 is ~5%, so a 10% tie band applies)",
                  lambda s: _wins_at_max(
                      s, "RD",
                      slack=0.10 if s.experiment.cardinality < 40_000 else 0.02,
                  )),
            Claim(12, "FP performs almost as well as RD at high parallelism",
                  lambda s: _wins_at_max(s, "FP", slack=0.25)),
            Claim(12, "RD clearly beats SP and SE on this tree",
                  lambda s: s.series["RD"].best()[0]
                  < min(s.series["SP"].best()[0], s.series["SE"].best()[0])),
        ]
    if figure == 13:  # right linear
        return [
            Claim(13, "RD coincides with FP on a right-linear tree",
                  lambda s: _coincide(s, "RD", "FP", tolerance=0.20)),
            Claim(13, "SE coincides with SP on a right-linear tree",
                  lambda s: _coincide(s, "SE", "SP")),
            Claim(13, "SP degenerates at large processor counts", _sp_degrades),
        ]
    raise ValueError(f"no claims recorded for figure {figure}")


def figure14_claims() -> List[str]:
    """Cross-figure claims about the best-times table (Section 4.4)."""
    return [
        "bushy trees give better minimal response times than linear trees",
        "the wide bushy tree gives the best 5K and 40K times overall",
        "FP or the paper's winner is within 15% of our best in every cell",
    ]
