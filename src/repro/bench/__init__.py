"""Benchmark harness reproducing the paper's evaluation section."""

from .paperdata import PAPER_FIGURE_14, Claim, claims_for_figure
from .plot import ascii_plot
from .scaling import ScalingCurve, best_scaling_strategy, scaling_curve, scaling_report
from .report import (
    evaluate_claims,
    figure14_table,
    figure_report,
    markdown_figure_section,
)
from .runner import all_sweeps, clear_cache, figure_sweeps, sweep
from .workloads import (
    Experiment,
    FIGURE_OF_SHAPE,
    LARGE_CARDINALITY,
    LARGE_PROCESSORS,
    SIZE_LABELS,
    SMALL_CARDINALITY,
    SMALL_PROCESSORS,
    Series,
    SweepResult,
    all_paper_experiments,
    paper_experiments,
    run_sweep,
)

__all__ = [
    "Claim",
    "Experiment",
    "FIGURE_OF_SHAPE",
    "LARGE_CARDINALITY",
    "LARGE_PROCESSORS",
    "PAPER_FIGURE_14",
    "SIZE_LABELS",
    "SMALL_CARDINALITY",
    "SMALL_PROCESSORS",
    "ScalingCurve",
    "Series",
    "best_scaling_strategy",
    "scaling_curve",
    "scaling_report",
    "SweepResult",
    "all_paper_experiments",
    "ascii_plot",
    "all_sweeps",
    "claims_for_figure",
    "clear_cache",
    "evaluate_claims",
    "figure14_table",
    "figure_report",
    "figure_sweeps",
    "markdown_figure_section",
    "paper_experiments",
    "run_sweep",
    "sweep",
]
