"""Report generation: paper-versus-measured comparisons.

Produces the per-figure markdown sections of EXPERIMENTS.md and the
Figure 14 comparison table.  Absolute seconds are not expected to
match PRISMA hardware; the report therefore prints both the absolute
numbers and the *shape* checks (Section 4.4 claims) for every figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .paperdata import PAPER_FIGURE_14, Claim, claims_for_figure
from .workloads import SweepResult


@dataclass
class ClaimOutcome:
    claim: Claim
    holds: bool

    def line(self) -> str:
        mark = "PASS" if self.holds else "FAIL"
        return f"  [{mark}] {self.claim.description}"


def evaluate_claims(sweep: SweepResult) -> List[ClaimOutcome]:
    """Check every Section 4.4 claim recorded for the sweep's figure."""
    return [
        ClaimOutcome(claim, claim.holds(sweep))
        for claim in claims_for_figure(sweep.experiment.figure)
    ]


def figure_report(sweeps: Sequence[SweepResult]) -> str:
    """Text report for one figure (its 5K and 40K sweeps)."""
    lines: List[str] = []
    for sweep in sweeps:
        lines.append(sweep.table())
        best_seconds, best_strategy, best_procs = sweep.best_cell()
        lines.append(
            f"best: {best_seconds:.2f}s ({best_strategy}{best_procs})"
        )
        key = (sweep.experiment.shape, sweep.experiment.size_label)
        if key in PAPER_FIGURE_14:
            seconds, strategy, procs = PAPER_FIGURE_14[key]
            lines.append(f"paper: {seconds:.1f}s ({strategy}{procs})")
        for outcome in evaluate_claims(sweep):
            lines.append(outcome.line())
        lines.append("")
    return "\n".join(lines)


def figure14_table(
    sweeps: Dict[Tuple[str, str], SweepResult]
) -> str:
    """Our Figure 14: best response times per shape × size, with the
    paper's printed values alongside."""
    lines = [
        "shape          size   measured            paper",
        "-" * 58,
    ]
    for (shape, size), paper_cell in PAPER_FIGURE_14.items():
        sweep = sweeps.get((shape, size))
        if sweep is None:
            continue
        seconds, strategy, procs = sweep.best_cell()
        p_seconds, p_strategy, p_procs = paper_cell
        lines.append(
            f"{shape:<14} {size:<5} "
            f"{seconds:6.2f}s ({strategy}{procs:<3})   "
            f"{p_seconds:5.1f}s ({p_strategy}{p_procs})"
        )
    return "\n".join(lines)


def markdown_figure_section(sweep: SweepResult) -> str:
    """EXPERIMENTS.md section for one sweep."""
    exp = sweep.experiment
    lines = [
        f"### {exp.title}",
        "",
        "| procs | " + " | ".join(sweep.series) + " |",
        "|" + "---|" * (len(sweep.series) + 1),
    ]
    for i, procs in enumerate(exp.processor_counts):
        row = " | ".join(
            f"{sweep.series[s].response_times[i]:.2f}" for s in sweep.series
        )
        lines.append(f"| {procs} | {row} |")
    lines.append("")
    best_seconds, best_strategy, best_procs = sweep.best_cell()
    lines.append(
        f"Best: **{best_seconds:.2f}s ({best_strategy}@{best_procs})**."
    )
    key = (exp.shape, exp.size_label)
    if key in PAPER_FIGURE_14:
        seconds, strategy, procs = PAPER_FIGURE_14[key]
        lines.append(f"Paper: {seconds:.1f}s ({strategy}@{procs}).")
    lines.append("")
    lines.append("Section 4.4 claims:")
    for outcome in evaluate_claims(sweep):
        mark = "x" if outcome.holds else " "
        lines.append(f"- [{mark}] {outcome.claim.description}")
    lines.append("")
    return "\n".join(lines)
