"""Real execution of parallel schedules over arbitrary (natural-join)
schemas — the generalization of :mod:`repro.engine.local` beyond the
Wisconsin query, supporting the star/snowflake workloads the paper's
conclusion points at.

The join predicate at every node is the natural one: equality on the
single attribute name the operand schemas share.  Redistribution
hashes on that attribute, so fragment-wise joins remain correct, and
every strategy again must produce the same bag as the sequential
oracle (:func:`natural_reference`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from ..core.schedule import InputSpec, JoinTask, ParallelSchedule
from ..core.trees import Leaf, Node
from ..relational.hashjoin import PipeliningHashJoin, SimpleHashJoin
from ..relational.partition import bucket
from ..relational.query import (
    natural_combiner,
    natural_join,
    natural_join_key,
    natural_result_schema,
)
from ..relational.relation import Relation
from ..relational.schema import Schema


@dataclass
class NaturalExecution:
    """Result of executing one schedule over natural-join relations."""

    schedule: ParallelSchedule
    fragments_by_task: Dict[int, List[Relation]]
    schemas_by_task: Dict[int, Schema]

    @property
    def relation(self) -> Relation:
        root = self.schedule.tasks[-1].index
        return Relation.union_all(self.fragments_by_task[root])


def natural_reference(tree: Node, relations: Mapping[str, Relation]) -> Relation:
    """Sequential oracle: fold natural joins bottom-up over the tree."""

    def evaluate(node: Node) -> Relation:
        if isinstance(node, Leaf):
            return relations[node.name]
        return natural_join(evaluate(node.left), evaluate(node.right))

    return evaluate(tree)


def execute_natural_schedule(
    schedule: ParallelSchedule, relations: Mapping[str, Relation]
) -> NaturalExecution:
    """Execute ``schedule`` on real relations with natural-join
    semantics; any strategy and processor count gives the same bag."""
    schemas: Dict[int, Schema] = {}
    fragments: Dict[int, List[Relation]] = {}

    def operand_schema(spec: InputSpec) -> Schema:
        if spec.is_base:
            return relations[spec.source].schema
        return schemas[spec.source]

    for task in schedule.tasks:
        left_schema = operand_schema(task.left_input)
        right_schema = operand_schema(task.right_input)
        key = natural_join_key(left_schema, right_schema)
        left_frags = _fragments(
            task, task.left_input, key, relations, fragments, schemas
        )
        right_frags = _fragments(
            task, task.right_input, key, relations, fragments, schemas
        )
        combine = natural_combiner(left_schema, right_schema)
        result_schema = natural_result_schema(left_schema, right_schema)
        out: List[Relation] = []
        for left, right in zip(left_frags, right_frags):
            out.append(
                _join_fragment(
                    task, left, right,
                    left.schema.index_of(key), right.schema.index_of(key),
                    combine, result_schema,
                )
            )
        fragments[task.index] = out
        schemas[task.index] = result_schema
    return NaturalExecution(schedule, fragments, schemas)


def _fragments(
    task: JoinTask,
    spec: InputSpec,
    key: str,
    relations: Mapping[str, Relation],
    fragments: Dict[int, List[Relation]],
    schemas: Dict[int, Schema],
) -> List[Relation]:
    parallelism = task.parallelism
    if spec.is_base:
        source = relations[spec.source]
        parts: List[List[tuple]] = [[] for _ in range(parallelism)]
        idx = source.schema.index_of(key)
        for row in source:
            parts[bucket(row[idx], parallelism)].append(row)
        return [Relation(source.schema, rows) for rows in parts]
    schema = schemas[spec.source]
    idx = schema.index_of(key)
    parts = [[] for _ in range(parallelism)]
    for fragment in fragments[spec.source]:
        for row in fragment:
            parts[bucket(row[idx], parallelism)].append(row)
    return [Relation(schema, rows) for rows in parts]


def _join_fragment(
    task: JoinTask,
    left: Relation,
    right: Relation,
    left_key: int,
    right_key: int,
    combine,
    result_schema: Schema,
) -> Relation:
    if task.algorithm == "simple":
        if task.build_side == "left":
            build, probe = left, right
            build_key, probe_key = left_key, right_key
            oriented = combine
        else:
            build, probe = right, left
            build_key, probe_key = right_key, left_key
            oriented = lambda b, p: combine(p, b)
        join = SimpleHashJoin(build_key, probe_key, oriented)
        for row in build:
            join.build(row)
        join.end_build()
        rows: List[tuple] = []
        for row in probe:
            rows.extend(join.probe(row))
        return Relation(result_schema, rows)
    join = PipeliningHashJoin(left_key, right_key, combine)
    rows = []
    left_iter = iter(left)
    right_iter = iter(right)
    exhausted = 0
    while exhausted < 2:
        exhausted = 0
        row = next(left_iter, None)
        if row is None:
            exhausted += 1
        else:
            rows.extend(join.insert_left(row))
        row = next(right_iter, None)
        if row is None:
            exhausted += 1
        else:
            rows.extend(join.insert_right(row))
    return Relation(result_schema, rows)
