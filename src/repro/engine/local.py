"""Real (non-simulated) execution of parallel schedules.

This engine executes any :class:`~repro.core.schedule.ParallelSchedule`
on actual :class:`~repro.relational.Relation` data, faithfully
following the plan's data movement: base relations start with the
ideal initial fragmentation of Section 4.1 (hashed on the join
attribute over the consuming join's processors), intermediate results
are hash-redistributed between tasks, and each (join, processor) pair
runs its own instance of the plan's hash-join algorithm on its
fragments.

It is the reproduction's correctness oracle: whatever strategy,
processor count, or shape is chosen, the result must be bag-equal to
the sequential reference (:func:`repro.relational.wisconsin_join_project`
folded over the tree).  Performance is *not* modelled here — that is
the simulator's job — but per-fragment statistics are reported so the
tests can check the non-skew assumption the simulator relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..core.schedule import InputSpec, JoinTask, ParallelSchedule
from ..core.trees import Leaf, Node
from ..relational import columnar
from ..relational.hashjoin import PipeliningHashJoin, SimpleHashJoin
from ..relational.operators import wisconsin_combine
from ..relational.partition import hash_partition
from ..relational.relation import Relation
from ..relational.wisconsin import WISCONSIN_SCHEMA


@dataclass
class TaskExecution:
    """What one task's parallel execution produced."""

    index: int
    fragments: List[Relation]
    #: Tuples consumed per fragment from (left, right) operands.
    input_sizes: List[tuple]

    def result(self) -> Relation:
        """The task result as one relation (union of fragments)."""
        return Relation.union_all(self.fragments)

    def fragment_sizes(self) -> List[int]:
        return [f.cardinality() for f in self.fragments]


@dataclass
class ExecutionResult:
    """Result of executing a whole schedule on real data."""

    schedule: ParallelSchedule
    tasks: List[TaskExecution]

    @property
    def relation(self) -> Relation:
        """The query result."""
        return self.tasks[-1].result()


def execute_schedule(
    schedule: ParallelSchedule,
    relations: Mapping[str, Relation],
    *,
    key: str = "unique1",
    use_columnar: Optional[bool] = None,
) -> ExecutionResult:
    """Execute ``schedule`` on real relations; returns all task results.

    ``relations`` maps leaf names to base relations (Wisconsin schema;
    the join/projection semantics are the paper's regular query).  Any
    topological execution order gives the same answer; postorder is
    used, mirroring the schedule's task order.

    ``use_columnar`` selects the fragment-join kernel: ``None`` (the
    default) takes the vectorized :mod:`repro.relational.columnar`
    path whenever numpy is importable, ``True`` requires it, and
    ``False`` pins the row-at-a-time reference joins.  Both kernels
    produce identical row sequences, not merely equal bags.
    """
    if use_columnar is None:
        use_columnar = columnar.HAVE_NUMPY
    elif use_columnar and not columnar.HAVE_NUMPY:
        raise RuntimeError("use_columnar=True requires numpy")
    executions: Dict[int, TaskExecution] = {}
    for task in schedule.tasks:
        left_frags = _operand_fragments(task, task.left_input, relations, executions, key)
        right_frags = _operand_fragments(task, task.right_input, relations, executions, key)
        fragments: List[Relation] = []
        input_sizes: List[tuple] = []
        for left, right in zip(left_frags, right_frags):
            fragments.append(_join_fragment(task, left, right, key, use_columnar))
            input_sizes.append((left.cardinality(), right.cardinality()))
        executions[task.index] = TaskExecution(task.index, fragments, input_sizes)
    return ExecutionResult(schedule, [executions[t.index] for t in schedule.tasks])


def _operand_fragments(
    task: JoinTask,
    spec: InputSpec,
    relations: Mapping[str, Relation],
    executions: Dict[int, TaskExecution],
    key: str,
) -> List[Relation]:
    """Fragments of one operand, redistributed onto the task's processors."""
    parallelism = task.parallelism
    if spec.is_base:
        try:
            base = relations[spec.source]
        except KeyError:
            raise KeyError(
                f"schedule references base relation {spec.source!r} "
                f"not supplied to execute_schedule"
            ) from None
        # Ideal initial fragmentation: already hashed on the join key
        # over exactly this join's processors (Section 4.1).
        return hash_partition(base, key, parallelism)
    producer = executions[spec.source]
    redistributed: List[List[tuple]] = [[] for _ in range(parallelism)]
    key_index = WISCONSIN_SCHEMA.index_of(key)
    from ..relational.partition import bucket

    for fragment in producer.fragments:
        for row in fragment:
            redistributed[bucket(row[key_index], parallelism)].append(row)
    return [Relation(WISCONSIN_SCHEMA, rows) for rows in redistributed]


def _join_fragment(
    task: JoinTask, left: Relation, right: Relation, key: str,
    use_columnar: bool = False,
) -> Relation:
    """Join one fragment pair with the task's algorithm."""
    key_index = WISCONSIN_SCHEMA.index_of(key)
    if use_columnar:
        rows = columnar.join_fragment_rows(
            left.rows, right.rows, key_index, task.algorithm, task.build_side
        )
        return Relation(WISCONSIN_SCHEMA, rows)
    if task.algorithm == "simple":
        build, probe = (left, right) if task.build_side == "left" else (right, left)
        join = SimpleHashJoin(key_index, key_index, _combine_for(task.build_side))
        for row in build:
            join.build(row)
        join.end_build()
        rows: List[tuple] = []
        for row in probe:
            rows.extend(join.probe(row))
        return Relation(WISCONSIN_SCHEMA, rows)
    join = PipeliningHashJoin(key_index, key_index, wisconsin_combine)
    rows = []
    left_iter = iter(left)
    right_iter = iter(right)
    exhausted = 0
    while exhausted < 2:
        exhausted = 0
        row = next(left_iter, None)
        if row is None:
            exhausted += 1
        else:
            rows.extend(join.insert_left(row))
        row = next(right_iter, None)
        if row is None:
            exhausted += 1
        else:
            rows.extend(join.insert_right(row))
    return Relation(WISCONSIN_SCHEMA, rows)


def _combine_for(build_side: str):
    """Wisconsin combiner oriented by build side.

    The combiner is defined on (left_row, right_row) of the *join*;
    :class:`SimpleHashJoin` hands (build_row, probe_row), so when the
    build side is the right operand the arguments swap.
    """
    if build_side == "left":
        return wisconsin_combine
    return lambda build_row, probe_row: wisconsin_combine(probe_row, build_row)


def reference_result(tree: Node, relations: Mapping[str, Relation]) -> Relation:
    """The sequential oracle: fold the paper's join/projection bottom-up."""
    from ..relational.wisconsin import wisconsin_join_project

    def evaluate(node: Node) -> Relation:
        if isinstance(node, Leaf):
            return relations[node.name]
        return wisconsin_join_project(evaluate(node.left), evaluate(node.right))

    return evaluate(tree)
