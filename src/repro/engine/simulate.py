"""Friendly front-ends over the machine simulation."""

from __future__ import annotations

from typing import Optional, Union

from ..core.cost import Catalog, CostModel
from ..core.schedule import ParallelSchedule
from ..core.strategies import Strategy, get_strategy
from ..core.trees import Node
from ..sim.machine import MachineConfig
from ..sim.metrics import SimulationResult
from ..sim.run import simulate


def simulate_schedule(
    schedule: ParallelSchedule,
    catalog: Catalog,
    config: Optional[MachineConfig] = None,
    cost_model: CostModel = CostModel(),
) -> SimulationResult:
    """Run one schedule on the simulated machine."""
    return simulate(schedule, catalog, config, cost_model)


def simulate_strategy(
    tree: Node,
    catalog: Catalog,
    strategy: Union[str, Strategy],
    processors: int,
    config: Optional[MachineConfig] = None,
    cost_model: CostModel = CostModel(),
) -> SimulationResult:
    """Plan ``tree`` with ``strategy`` and simulate it in one call —
    the paper's basic experimental step (strategy × tree × processors
    → response time)."""
    if isinstance(strategy, str):
        strategy = get_strategy(strategy)
    schedule = strategy.schedule(tree, catalog, processors, cost_model)
    return simulate(schedule, catalog, config, cost_model)
