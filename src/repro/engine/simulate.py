"""Friendly front-ends over the machine simulation.

Both entry points take the full, uniform execution-context keyword set
(``config``, ``cost_model``, ``skew_theta``) — keyword-only, with the
same defaults as every other engine front-end, so callers can switch
between front-ends (or to :func:`repro.api.run`) without re-spelling
arguments.
"""

from __future__ import annotations

from typing import Optional, Union

from ..core.cost import Catalog, CostModel
from ..core.schedule import ParallelSchedule
from ..core.strategies import Strategy, get_strategy
from ..core.trees import Node
from ..sim.machine import MachineConfig
from ..sim.metrics import SimulationResult
from ..sim.run import simulate


def simulate_schedule(
    schedule: ParallelSchedule,
    catalog: Catalog,
    *,
    config: Optional[MachineConfig] = None,
    cost_model: Optional[CostModel] = None,
    skew_theta: float = 0.0,
) -> SimulationResult:
    """Run one schedule on the simulated machine."""
    return simulate(
        schedule, catalog, config, cost_model=cost_model, skew_theta=skew_theta
    )


def simulate_strategy(
    tree: Node,
    catalog: Catalog,
    strategy: Union[str, Strategy],
    processors: int,
    *,
    config: Optional[MachineConfig] = None,
    cost_model: Optional[CostModel] = None,
    skew_theta: float = 0.0,
) -> SimulationResult:
    """Plan ``tree`` with ``strategy`` and simulate it in one call —
    the paper's basic experimental step (strategy × tree × processors
    → response time)."""
    if isinstance(strategy, str):
        strategy = get_strategy(strategy)
    schedule = strategy.schedule(
        tree, catalog, processors, cost_model or CostModel()
    )
    return simulate(
        schedule, catalog, config, cost_model=cost_model, skew_theta=skew_theta
    )
