"""Processor-utilization diagrams (Figures 3, 4, 6, 7).

The paper explains each strategy with an idealized processor
utilization diagram: the x-axis is time, one line per processor, and
each cell carries the label of the join the processor is working on.
This module renders exactly that from a simulation's interval trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.metrics import SimulationResult

#: Character shown for an idle processor slot.
IDLE = "."


def _cell_label(label: str, label_map: Dict[str, str]) -> str:
    """Single display character for an interval label."""
    base = label[:-3] if label.endswith(":hs") else label
    return label_map.get(base, base[-1])


def utilization_diagram(
    result: SimulationResult,
    width: int = 72,
    label_map: Optional[Dict[str, str]] = None,
) -> str:
    """Render the run as the paper's processor-utilization diagram.

    Each row is a processor (highest id on top, like the figures); each
    column is a time bin of ``response_time / width``; a cell shows the
    join that occupied most of that bin, or ``.`` when idle.
    ``label_map`` optionally maps internal task labels (``J0``, ``J1``,
    ...) to display characters — the figure benchmarks map them to the
    example tree's work labels 1/3/4/5.
    """
    if label_map is None:
        label_map = {}
    span = result.response_time
    if span <= 0:
        return "(empty run)"
    bin_width = span / width
    rows: List[str] = []
    procs = sorted(result.intervals, reverse=True)
    for ident in procs:
        cells = []
        spans = result.intervals[ident]
        for b in range(width):
            lo = b * bin_width
            hi = lo + bin_width
            per_label: Dict[str, float] = {}
            for start, end, label in spans:
                overlap = min(end, hi) - max(start, lo)
                if overlap > 0:
                    key = _cell_label(label, label_map)
                    per_label[key] = per_label.get(key, 0.0) + overlap
            if not per_label:
                cells.append(IDLE)
                continue
            best_label, best_overlap = max(per_label.items(), key=lambda kv: kv[1])
            if best_overlap < bin_width * 0.25:
                cells.append(IDLE)
            else:
                cells.append(best_label)
        rows.append(f"{ident:3d} |{''.join(cells)}|")
    header = (
        f"{result.strategy} on {result.processors} processors — "
        f"response {result.response_time:.2f}s, "
        f"utilization {result.utilization():.0%}"
    )
    axis = "    +" + "-" * width + "+"
    return "\n".join([header, axis] + rows + [axis])


def busy_fractions(result: SimulationResult) -> Dict[int, float]:
    """Per-processor busy fraction of the response time."""
    out: Dict[int, float] = {}
    span = result.response_time
    for ident, spans in result.intervals.items():
        busy = sum(end - start for start, end, _ in spans)
        out[ident] = busy / span if span > 0 else 0.0
    return out
