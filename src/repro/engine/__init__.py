"""Execution engines: real local execution and machine simulation."""

from ..sim.machine import MachineConfig
from ..sim.metrics import SimulationResult
from .ideal import ideal_diagram, ideal_simulation, label_map_for
from .local import (
    ExecutionResult,
    TaskExecution,
    execute_schedule,
    reference_result,
)
from .natural import execute_natural_schedule, natural_reference
from .simulate import simulate_schedule, simulate_strategy
from .threaded import ThreadedExecutor, execute_threaded
from .trace import critical_path, spans_of, task_marks, to_json
from .utilization import busy_fractions, utilization_diagram

__all__ = [
    "ExecutionResult",
    "MachineConfig",
    "SimulationResult",
    "TaskExecution",
    "busy_fractions",
    "critical_path",
    "spans_of",
    "task_marks",
    "to_json",
    "ThreadedExecutor",
    "execute_natural_schedule",
    "execute_schedule",
    "execute_threaded",
    "natural_reference",
    "ideal_diagram",
    "ideal_simulation",
    "label_map_for",
    "reference_result",
    "simulate_schedule",
    "simulate_strategy",
    "utilization_diagram",
]
