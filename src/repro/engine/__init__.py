"""Execution engines: real local execution and machine simulation.

The four historical front-ends — :func:`simulate_strategy`,
:func:`execute_schedule`, :func:`execute_threaded` and
:func:`ideal_simulation` — went through a deprecation cycle and are
now *removed aliases* (the v1 API freeze): calling them raises with a
pointer at the unified facade :func:`repro.api.run`, which dispatches
between the same engines through one frozen signature.  The
undecorated implementations remain importable from their submodules
(e.g. :func:`repro.engine.simulate.simulate_strategy`) for callers
that genuinely need an engine rather than the facade.
"""

import functools

from ..sim.machine import MachineConfig
from ..sim.metrics import SimulationResult
from .ideal import ideal_diagram, label_map_for
from .ideal import ideal_simulation as _ideal_simulation
from .local import (
    ExecutionResult,
    TaskExecution,
    reference_result,
)
from .local import execute_schedule as _execute_schedule
from .natural import execute_natural_schedule, natural_reference
from .simulate import simulate_schedule
from .simulate import simulate_strategy as _simulate_strategy
from .threaded import ThreadedExecutor
from .threaded import execute_threaded as _execute_threaded
from .trace import critical_path, spans_of, task_marks, to_json
from .utilization import busy_fractions, utilization_diagram


def _removed_front_end(func):
    """Alias a legacy front-end that now refuses to run.

    The v1 freeze graduated the :class:`DeprecationWarning` these
    aliases emitted for one release into a hard error; the message
    names both the facade call to migrate to and the submodule import
    that still reaches the raw engine.
    """

    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        raise RuntimeError(
            f"repro.engine.{func.__name__} was removed in the v1 API; "
            f"call repro.api.run(..., backend=...) instead, or import "
            f"the engine directly from {func.__module__}"
        )

    wrapper.__doc__ = (
        f"Removed alias of :func:`{func.__module__}.{func.__name__}`; "
        f"use :func:`repro.api.run`.\n\n{func.__doc__ or ''}"
    )
    return wrapper


simulate_strategy = _removed_front_end(_simulate_strategy)
execute_schedule = _removed_front_end(_execute_schedule)
execute_threaded = _removed_front_end(_execute_threaded)
ideal_simulation = _removed_front_end(_ideal_simulation)

__all__ = [
    "ExecutionResult",
    "MachineConfig",
    "SimulationResult",
    "TaskExecution",
    "busy_fractions",
    "critical_path",
    "spans_of",
    "task_marks",
    "to_json",
    "ThreadedExecutor",
    "execute_natural_schedule",
    "execute_schedule",
    "execute_threaded",
    "natural_reference",
    "ideal_diagram",
    "ideal_simulation",
    "label_map_for",
    "reference_result",
    "simulate_schedule",
    "simulate_strategy",
    "utilization_diagram",
]
