"""Execution traces: Gantt data and JSON export.

Turns a :class:`~repro.sim.metrics.SimulationResult` into structured
trace data — one span per contiguous processor-busy interval, plus
per-task lifecycle marks — suitable for external tooling (the JSON
form loads directly into timeline viewers) and for the repository's
own diagnostics.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List

from ..sim.metrics import SimulationResult


@dataclass(frozen=True)
class Span:
    """One contiguous busy interval of one processor."""

    processor: int
    start: float
    end: float
    task: str          # "J<index>"
    kind: str          # "work" | "handshake"

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class TaskMark:
    """Lifecycle timestamps of one join task."""

    index: int
    label: str
    released: float
    first_work: float
    completion: float


def spans_of(result: SimulationResult) -> List[Span]:
    """All busy spans, ordered by start time."""
    out: List[Span] = []
    for processor, intervals in result.intervals.items():
        for start, end, label in intervals:
            kind = "handshake" if label.endswith(":hs") else "work"
            task = label[:-3] if kind == "handshake" else label
            out.append(Span(processor, start, end, task, kind))
    out.sort(key=lambda span: (span.start, span.processor))
    return out


def task_marks(result: SimulationResult) -> List[TaskMark]:
    """Lifecycle marks for every task."""
    return [
        TaskMark(
            index=t.index,
            label=t.label,
            released=t.released,
            first_work=t.first_work if t.first_work is not None else t.released,
            completion=t.completion,
        )
        for t in result.task_timings
    ]


def critical_path(result: SimulationResult) -> List[TaskMark]:
    """Tasks whose completion gates the response time, latest first.

    A simple backward walk: starting from the last-finishing task,
    repeatedly step to the latest-finishing task that completed before
    the current one was released.  On barrier-structured plans (SP,
    SE, RD) this is the actual critical chain; on FP it degenerates to
    the root task alone (everything overlaps).
    """
    marks = sorted(task_marks(result), key=lambda m: m.completion, reverse=True)
    if not marks:
        return []
    path = [marks[0]]
    while True:
        current = path[-1]
        gating = [
            m for m in marks
            if m.completion <= current.released + 1e-12 and m is not current
        ]
        if not gating or current.released == 0.0:
            break
        path.append(max(gating, key=lambda m: m.completion))
    return path


def to_json(result: SimulationResult, indent: int = None) -> str:
    """Serialize the full trace as JSON.

    Schema: ``{"meta": {...}, "tasks": [...], "spans": [...]}``;
    spans carry (processor, start, end, task, kind).
    """
    payload = {
        "meta": {
            "strategy": result.strategy,
            "processors": result.processors,
            "response_time": result.response_time,
            "utilization": result.utilization(),
            "operation_processes": result.operation_processes,
            "stream_count": result.stream_count,
            "events": result.events,
        },
        "tasks": [asdict(mark) for mark in task_marks(result)],
        "spans": [asdict(span) for span in spans_of(result)],
    }
    return json.dumps(payload, indent=indent)


def from_json(text: str) -> Dict:
    """Parse a trace produced by :func:`to_json` (round-trip helper)."""
    payload = json.loads(text)
    for key in ("meta", "tasks", "spans"):
        if key not in payload:
            raise ValueError(f"not a trace document: missing {key!r}")
    return payload
