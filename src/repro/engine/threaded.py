"""A real threaded dataflow executor.

PRISMA executes a plan as communicating operation processes; this
engine does the same with Python threads and queues: one worker thread
per (join, processor) pair, real tuple queues as streams, real
hash-join objects per worker, barriers for ``start_after``, and
store-and-forward for materialized operands.

Because of the CPython GIL this engine is *functional*, not a
performance instrument (the repository's performance claims all come
from the discrete-event simulator; see DESIGN.md).  Its value is that
the dataflow — including pipelining through both operands of the
symmetric hash-join — actually runs concurrently and must produce the
same answer as the sequential oracle, which the tests assert for all
strategies.  Natural-join semantics (see
:mod:`repro.relational.query`) are used, so it runs both the Wisconsin
query and arbitrary snowflake queries.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.schedule import InputSpec, JoinTask, ParallelSchedule
from ..relational.hashjoin import PipeliningHashJoin, SimpleHashJoin
from ..relational.partition import bucket
from ..relational.query import JoinResolution, natural_resolution
from ..relational.relation import Relation
from ..relational.schema import Schema

#: Stream sentinel: one per producer worker, counted by consumers.
_EOS = object()


@dataclass
class _TaskWiring:
    """Static wiring of one task before threads start."""

    task: JoinTask
    resolution: JoinResolution
    left_schema: Schema
    right_schema: Schema
    result_schema: Schema
    #: queues[worker][side] — the worker's input streams.
    queues: List[Dict[str, "queue.Queue"]] = field(default_factory=list)
    barrier: threading.Event = field(default_factory=threading.Event)
    done: threading.Event = field(default_factory=threading.Event)
    results: List[List[tuple]] = field(default_factory=list)
    producers: Dict[str, int] = field(default_factory=dict)


class ThreadedExecutor:
    """Execute a schedule as communicating threads."""

    def __init__(
        self,
        schedule: ParallelSchedule,
        relations: Mapping[str, Relation],
        queue_capacity: int = 256,
        resolve=natural_resolution,
    ):
        """``resolve(left_schema, right_schema) -> JoinResolution``
        supplies the join semantics: :func:`natural_resolution` for
        snowflake-style queries (the default) or
        :func:`repro.relational.query.wisconsin_resolution` for the
        paper's regular query."""
        self.schedule = schedule
        self.relations = relations
        self.queue_capacity = queue_capacity
        self.resolve = resolve
        self._wirings: Dict[int, _TaskWiring] = {}
        self._build()

    # -- wiring ----------------------------------------------------------

    def _operand_schema(self, spec: InputSpec) -> Schema:
        if spec.is_base:
            return self.relations[spec.source].schema
        return self._wirings[spec.source].result_schema

    def _build(self) -> None:
        for task in self.schedule.tasks:
            left_schema = self._operand_schema(task.left_input)
            right_schema = self._operand_schema(task.right_input)
            resolution = self.resolve(left_schema, right_schema)
            wiring = _TaskWiring(
                task=task,
                resolution=resolution,
                left_schema=left_schema,
                right_schema=right_schema,
                result_schema=resolution.result_schema,
            )
            for _ in task.processors:
                wiring.queues.append(
                    {
                        "left": queue.Queue(self.queue_capacity),
                        "right": queue.Queue(self.queue_capacity),
                    }
                )
                wiring.results.append([])
            for side, spec in (("left", task.left_input), ("right", task.right_input)):
                if spec.is_base or spec.mode == "materialized":
                    # One feeder thread (base scan) or one store-and-
                    # forward coordinator streams this operand.
                    wiring.producers[side] = 1
                else:
                    wiring.producers[side] = self.schedule.tasks[
                        spec.source
                    ].parallelism
            self._wirings[task.index] = wiring

    # -- stream helpers -----------------------------------------------------

    def _send(self, wiring: _TaskWiring, side: str, key_index: int, row: tuple) -> None:
        worker = bucket(row[key_index], len(wiring.queues))
        wiring.queues[worker][side].put(row)

    def _send_eos(self, wiring: _TaskWiring, side: str) -> None:
        for worker_queues in wiring.queues:
            worker_queues[side].put(_EOS)

    # -- threads -------------------------------------------------------------

    def _feeder(self, wiring: _TaskWiring, side: str, relation: Relation) -> None:
        """Streams a base relation into a task's workers."""
        wiring.barrier.wait()
        key = (
            wiring.resolution.left_key
            if side == "left"
            else wiring.resolution.right_key
        )
        key_index = relation.schema.index_of(key)
        for row in relation:
            self._send(wiring, side, key_index, row)
        self._send_eos(wiring, side)

    def _worker(self, wiring: _TaskWiring, slot: int) -> None:
        task = wiring.task
        wiring.barrier.wait()
        combine = wiring.resolution.combine
        left_key = wiring.left_schema.index_of(wiring.resolution.left_key)
        right_key = wiring.right_schema.index_of(wiring.resolution.right_key)
        out = wiring.results[slot]
        consumer = self._consumer_of(task.index)

        def emit(rows: List[tuple]) -> None:
            out.extend(rows)
            if consumer is not None and consumer[2] == "pipelined":
                target, side, _mode = consumer
                key = (
                    target.resolution.left_key
                    if side == "left"
                    else target.resolution.right_key
                )
                key_index = wiring.result_schema.index_of(key)
                for row in rows:
                    self._send(target, side, key_index, row)

        queues = wiring.queues[slot]
        if task.algorithm == "simple":
            build_side = task.build_side
            probe_side = "right" if build_side == "left" else "left"
            build_key = left_key if build_side == "left" else right_key
            probe_key = right_key if build_side == "left" else left_key
            oriented = (
                combine if build_side == "left" else (lambda b, p: combine(p, b))
            )
            join = SimpleHashJoin(build_key, probe_key, oriented)
            self._drain(queues[build_side], wiring.producers[build_side], join.build)
            join.end_build()
            self._drain(
                queues[probe_side],
                wiring.producers[probe_side],
                lambda row: emit(join.probe(row)),
            )
        else:
            join = PipeliningHashJoin(left_key, right_key, combine)
            self._drain_both(
                queues,
                wiring.producers,
                lambda row: emit(join.insert_left(row)),
                lambda row: emit(join.insert_right(row)),
            )

    @staticmethod
    def _drain(q: "queue.Queue", producers: int, handle) -> None:
        remaining = producers
        while remaining:
            item = q.get()
            if item is _EOS:
                remaining -= 1
            else:
                handle(item)

    @staticmethod
    def _drain_both(queues, producers, handle_left, handle_right) -> None:
        """Consume both operand streams as they arrive (symmetric)."""
        remaining = {"left": producers["left"], "right": producers["right"]}
        while remaining["left"] or remaining["right"]:
            progressed = False
            for side, handle in (("left", handle_left), ("right", handle_right)):
                if not remaining[side]:
                    continue
                try:
                    item = queues[side].get(
                        timeout=0.0005 if progressed else 0.005
                    )
                except queue.Empty:
                    continue
                progressed = True
                if item is _EOS:
                    remaining[side] -= 1
                else:
                    handle(item)

    def _consumer_of(self, index: int) -> Optional[Tuple[_TaskWiring, str, str]]:
        for task in self.schedule.tasks:
            for side, spec in (("left", task.left_input), ("right", task.right_input)):
                if not spec.is_base and spec.source == index:
                    return (self._wirings[task.index], side, spec.mode)
        return None

    def _coordinator(self, wiring: _TaskWiring, workers: List[threading.Thread]) -> None:
        """Releases the task's barrier, forwards its output, signals done."""
        for dep in wiring.task.start_after:
            self._wirings[dep].done.wait()
        wiring.barrier.set()
        for worker in workers:
            worker.join()
        # Signal completion *before* store-and-forward: the consumer's
        # barrier typically waits on this very task, and its queues are
        # bounded, so forwarding first could deadlock.
        wiring.done.set()
        consumer = self._consumer_of(wiring.task.index)
        if consumer is None:
            return
        target, side, mode = consumer
        if mode == "materialized":
            key = (
                target.resolution.left_key
                if side == "left"
                else target.resolution.right_key
            )
            key_index = wiring.result_schema.index_of(key)
            for rows in wiring.results:
                for row in rows:
                    self._send(target, side, key_index, row)
            self._send_eos(target, side)
        else:
            # Pipelined: workers streamed rows as they were produced;
            # the consumer counts one EOS per producer worker.
            for _ in wiring.task.processors:
                self._send_eos(target, side)

    # -- execution --------------------------------------------------------------

    def run(self, timeout: float = 60.0) -> Relation:
        """Run all threads to completion; returns the query result."""
        threads: List[threading.Thread] = []
        for wiring in self._wirings.values():
            workers = [
                threading.Thread(
                    target=self._worker, args=(wiring, slot), daemon=True
                )
                for slot in range(len(wiring.task.processors))
            ]
            for side, spec in (
                ("left", wiring.task.left_input),
                ("right", wiring.task.right_input),
            ):
                if spec.is_base:
                    threads.append(
                        threading.Thread(
                            target=self._feeder,
                            args=(wiring, side, self.relations[spec.source]),
                            daemon=True,
                        )
                    )
            threads.extend(workers)
            threads.append(
                threading.Thread(
                    target=self._coordinator, args=(wiring, workers), daemon=True
                )
            )
        for thread in threads:
            thread.start()
        root = self._wirings[self.schedule.tasks[-1].index]
        if not root.done.wait(timeout):
            raise TimeoutError("threaded execution did not finish in time")
        rows = [row for worker_rows in root.results for row in worker_rows]
        return Relation(root.result_schema, rows)


def execute_threaded(
    schedule: ParallelSchedule,
    relations: Mapping[str, Relation],
    *,
    timeout: float = 60.0,
    resolve=natural_resolution,
) -> Relation:
    """One-call front end over :class:`ThreadedExecutor`."""
    return ThreadedExecutor(schedule, relations, resolve=resolve).run(timeout)
