"""Idealized executions (the Section 3 explanation figures).

Figures 3, 4, 6 and 7 show *idealized* processor-utilization diagrams
for the four strategies on the Figure 2 example tree: overhead from
parallel execution is not taken into account, only work amounts,
allocation and dataflow dependencies.  We reproduce them by running
the real simulator with :meth:`MachineConfig.ideal` (zero startup,
handshake and latency costs) and the example tree's explicit relative
work labels.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from ..core.cost import Catalog, CostModel
from ..core.shapes import example_tree
from ..core.strategies import Strategy, get_strategy
from ..core.trees import Node, joins_postorder
from ..sim.machine import MachineConfig
from ..sim.metrics import SimulationResult
from ..sim.run import simulate
from .utilization import utilization_diagram


def ideal_simulation(
    tree: Node,
    strategy: Union[str, Strategy],
    processors: int,
    leaf_cardinality: int = 1000,
    batches: int = 64,
    *,
    config: Optional[MachineConfig] = None,
    cost_model: Optional[CostModel] = None,
    skew_theta: float = 0.0,
) -> SimulationResult:
    """Zero-overhead run of ``strategy`` on ``tree``.

    ``leaf_cardinality`` only sets the fluid flow granularity; with the
    ideal machine config the response time is in units of work (a join
    labelled ``work=5`` occupies five work-units of processor time in
    total).  ``config`` overrides the zero-overhead machine (for
    what-if diagrams); ``cost_model`` and ``skew_theta`` thread through
    exactly as in every other engine front-end.
    """
    if isinstance(strategy, str):
        strategy = get_strategy(strategy)
    names = [leaf.name for leaf in _leaves(tree)]
    catalog = Catalog.regular(names, leaf_cardinality)
    schedule = strategy.schedule(
        tree, catalog, processors, cost_model or CostModel()
    )
    # With the ideal config, a join carrying an explicit ``work``
    # label occupies exactly that many machine-seconds of CPU in
    # total (the work_scale mechanism of the simulator), so the
    # diagram's time axis is in the figure's relative work units.
    if config is None:
        config = MachineConfig.ideal(batches=batches)
    return simulate(
        schedule, catalog, config, cost_model=cost_model, skew_theta=skew_theta
    )


def label_map_for(tree: Node) -> Dict[str, str]:
    """Map internal task labels (J0, J1, ...) to the tree's join labels."""
    out: Dict[str, str] = {}
    for index, join in enumerate(joins_postorder(tree)):
        if join.label:
            out[f"J{index}"] = join.label
    return out


def ideal_diagram(
    strategy: Union[str, Strategy],
    processors: int = 10,
    tree: Optional[Node] = None,
    width: int = 72,
) -> str:
    """One of the paper's idealized diagrams.

    With the defaults this renders the strategy's Section 3 figure:
    the Figure 2 example tree on a 10-processor system (Figure 3 for
    SP, 4 for SE, 6 for RD, 7 for FP).
    """
    if tree is None:
        tree = example_tree()
    result = ideal_simulation(tree, strategy, processors)
    return utilization_diagram(result, width=width, label_map=label_map_for(tree))


def _leaves(tree: Node):
    from ..core.trees import leaves

    return leaves(tree)
