"""Quickstart: plan and simulate one parallel multi-join query.

Builds the paper's 10-relation Wisconsin query as a wide bushy tree,
parallelizes it with each strategy on a 40-processor machine, and
prints the simulated response times — one cell of the paper's
evaluation, end to end.

Run:  python examples/quickstart.py
"""

from repro import (
    Catalog,
    MachineConfig,
    get_strategy,
    make_shape,
    paper_relation_names,
    simulate_schedule,
    strategy_names,
)


def main() -> None:
    names = paper_relation_names(10)
    tree = make_shape("wide_bushy", names)
    catalog = Catalog.regular(names, cardinality=5000)
    config = MachineConfig.paper()

    print(f"query tree : {tree}")
    print(f"machine    : 40 processors, PRISMA/DB-calibrated constants")
    print()
    print(f"{'strategy':>28}  response  processes  streams")
    for name in strategy_names():
        schedule = get_strategy(name).schedule(tree, catalog, processors=40)
        result = simulate_schedule(schedule, catalog, config)
        title = get_strategy(name).title
        print(
            f"{title + ' (' + name + ')':>28}  "
            f"{result.response_time:7.2f}s  "
            f"{result.operation_processes:9d}  {result.stream_count:7d}"
        )


if __name__ == "__main__":
    main()
