"""Quickstart: plan and simulate one parallel multi-join query.

Builds the paper's 10-relation Wisconsin query as a wide bushy tree,
parallelizes it with each strategy on a 40-processor machine through
the unified :func:`repro.api.run` facade, and prints the simulated
response times — one cell of the paper's evaluation, end to end.

Run:  python examples/quickstart.py
"""

from repro import get_strategy, run, strategy_names


def main() -> None:
    print("query tree : the paper's wide bushy shape over R0..R9 (5K tuples)")
    print("machine    : 40 processors, PRISMA/DB-calibrated constants")
    print()
    print(f"{'strategy':>28}  response  processes  streams")
    for name in strategy_names():
        result = run("wide_bushy", name, processors=40)
        title = get_strategy(name).title
        print(
            f"{title + ' (' + name + ')':>28}  "
            f"{result.response_time:7.2f}s  "
            f"{result.operation_processes:9d}  {result.stream_count:7d}"
        )
    print()
    print('(same cell on the ideal machine: '
          f'{run("wide_bushy", "FP", 40, "ideal").response_time:.2f} '
          'work-units)')


if __name__ == "__main__":
    main()
