"""Strategy comparison across query shapes — a miniature of Figures 9-13.

Sweeps processor counts for every query shape at the 5K problem size on
the parallel sweep runner (:mod:`repro.runner`) — every (strategy,
processors) point is a separate job, fanned out over worker processes
and memoized in ``.repro_cache/`` — and prints one response-time table
per shape, plus the winner per shape (the corresponding Figure 14
cell).

Run:  python examples/strategy_comparison.py [cardinality]
"""

import sys

from repro.bench import Experiment
from repro.core import SHAPE_NAMES
from repro.runner import SweepSpec, run_sweep, to_sweep_result


def main(cardinality: int = 5000) -> None:
    processors = (20, 40, 60, 80)
    print(f"Wisconsin 10-relation query, {cardinality} tuples per relation\n")
    for shape in SHAPE_NAMES:
        spec = SweepSpec(
            shapes=(shape,),
            cardinalities=(cardinality,),
            processors=processors,
        )
        run = run_sweep(spec)
        sweep = to_sweep_result(
            run.rows(), Experiment(shape, cardinality, processors)
        )
        print(sweep.table())
        seconds, strategy, procs = sweep.best_cell()
        print(f"--> best: {seconds:.2f}s with {strategy} on {procs} processors")
        print(f"    ({run.summary()})")
        print()
    print("Reading guide (Section 5 of the paper):")
    print(" * few processors   -> SP (no cost function needed)")
    print(" * wide bushy tree  -> SE")
    print(" * right-oriented   -> RD (mirror left-oriented trees first)")
    print(" * many processors  -> FP, best overall")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5000)
