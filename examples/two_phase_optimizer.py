"""Two-phase optimization of an irregular multi-join query.

Phase one enumerates bushy join trees over a 7-relation chain query
with skewed cardinalities and selectivities and picks the cheapest
(total cost, the paper's Section 4.3 formula).  Phase two parallelizes
that tree: once via the Section 5 guidelines and once by simulating
all four strategies and keeping the fastest.  Also shows the System-R
style linear-tree optimum for contrast ([SAC79]/[KBZ86] discussion).

Run:  python examples/two_phase_optimizer.py
"""

from repro.core import render
from repro.optimizer import (
    QueryGraph,
    optimal_left_deep_tree,
    two_phase_optimize,
)
from repro.xra import XRAPlan, format_plan


def main() -> None:
    graph = QueryGraph.chain(
        ["orders", "lines", "parts", "supp", "nation", "region", "cust"],
        [120_000, 480_000, 20_000, 1_000, 25, 5, 15_000],
        [4e-6, 5e-5, 1e-3, 0.04, 0.2, 1e-4],
    )

    print("=== phase 1: cheapest bushy tree (DP, no cartesian products) ===")
    plan = two_phase_optimize(graph, processors=32)
    print(render(plan.tree))
    print(f"total cost: {plan.total_cost:,.0f} tuple-action units")
    linear = optimal_left_deep_tree(graph)
    print(
        f"(best left-deep linear tree costs {linear.total_cost:,.0f} — "
        f"{linear.total_cost / plan.total_cost:.2f}x the bushy optimum)"
    )

    print("\n=== phase 2a: guideline choice (Section 5) ===")
    guided = two_phase_optimize(graph, processors=32, mode="guidelines")
    print(guided.advice)

    print("\n=== phase 2b: simulated choice (all four strategies) ===")
    print(plan.summary())

    print("\n=== the chosen plan, in XRA ===")
    print(format_plan(XRAPlan.from_schedule(plan.schedule)))


if __name__ == "__main__":
    main()
