"""A "real-life" snowflake query through the whole stack.

The paper's closing remark: "It would be quite interesting to use the
strategies presented here for real-life applications."  This example
does exactly that on a small retail snowflake schema:

    sales(order_id, customer_id, product_id, amount)
    customers(customer_id, nation_id, segment)
    nations(nation_id, region_id, nation_name)
    regions(region_id, region_name)
    products(product_id, category_id, price)
    categories(category_id, category_name)

1. phase one picks the cheapest cartesian-free bushy tree from the
   foreign-key query graph (real cardinalities, real selectivities);
2. phase two picks a strategy by simulation;
3. the chosen schedule is executed on *real data* with the generalized
   natural-join engine and checked against the sequential oracle;
4. the simulated machine reports the expected response time.

Run:  python examples/snowflake_query.py
"""

import random

from repro.core import get_strategy, render
from repro.engine.natural import execute_natural_schedule, natural_reference
from repro.optimizer import QueryGraph, catalog_for, optimal_bushy_tree, two_phase_optimize
from repro.relational import Relation, Schema

CARDS = {
    "sales": 4000,
    "customers": 400,
    "nations": 25,
    "regions": 5,
    "products": 120,
    "categories": 12,
}


def build_database(seed: int = 7):
    rng = random.Random(seed)
    regions = Relation(
        Schema.ints("region_id", "region_pop"),
        [(i, rng.randint(1, 9)) for i in range(CARDS["regions"])],
    )
    nations = Relation(
        Schema.ints("nation_id", "region_id", "nation_gdp"),
        [
            (i, rng.randrange(CARDS["regions"]), rng.randint(1, 99))
            for i in range(CARDS["nations"])
        ],
    )
    customers = Relation(
        Schema.ints("customer_id", "nation_id", "segment"),
        [
            (i, rng.randrange(CARDS["nations"]), rng.randrange(5))
            for i in range(CARDS["customers"])
        ],
    )
    categories = Relation(
        Schema.ints("category_id", "margin"),
        [(i, rng.randint(1, 60)) for i in range(CARDS["categories"])],
    )
    products = Relation(
        Schema.ints("product_id", "category_id", "price"),
        [
            (i, rng.randrange(CARDS["categories"]), rng.randint(1, 500))
            for i in range(CARDS["products"])
        ],
    )
    sales = Relation(
        Schema.ints("order_id", "customer_id", "product_id", "amount"),
        [
            (
                i,
                rng.randrange(CARDS["customers"]),
                rng.randrange(CARDS["products"]),
                rng.randint(1, 20),
            )
            for i in range(CARDS["sales"])
        ],
    )
    return {
        "sales": sales,
        "customers": customers,
        "nations": nations,
        "regions": regions,
        "products": products,
        "categories": categories,
    }


def foreign_key_graph() -> QueryGraph:
    """Selectivity of an FK join A.fk = B.pk is 1/|B|."""
    edges = {
        frozenset(("sales", "customers")): 1.0 / CARDS["customers"],
        frozenset(("customers", "nations")): 1.0 / CARDS["nations"],
        frozenset(("nations", "regions")): 1.0 / CARDS["regions"],
        frozenset(("sales", "products")): 1.0 / CARDS["products"],
        frozenset(("products", "categories")): 1.0 / CARDS["categories"],
    }
    return QueryGraph(dict(CARDS), edges)


def main() -> None:
    graph = foreign_key_graph()
    print("=== two-phase optimization of the snowflake query ===")
    plan = two_phase_optimize(graph, processors=24)
    print(render(plan.tree))
    print(plan.summary())

    print("\n=== executing the chosen plan on real data ===")
    database = build_database()
    reference = natural_reference(plan.tree, database)
    execution = execute_natural_schedule(plan.schedule, database)
    print(f"result: {execution.relation.cardinality()} rows, "
          f"schema {execution.relation.schema.names()}")
    assert execution.relation.same_bag(reference), "parallel result differs!"
    print("matches the sequential natural-join oracle: True")

    print("\n=== every strategy computes the same snowflake result ===")
    catalog = catalog_for(graph)
    for name in ("SP", "SE", "RD", "FP"):
        schedule = get_strategy(name).schedule(plan.tree, catalog, 8)
        execution = execute_natural_schedule(schedule, database)
        ok = execution.relation.same_bag(reference)
        print(f"  {name}: {execution.relation.cardinality()} rows, matches: {ok}")
        assert ok


if __name__ == "__main__":
    main()
